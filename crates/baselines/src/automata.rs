//! Analytical Micron Automata Processor model (paper Section VI-C,
//! Table VI).
//!
//! The AP evaluates non-deterministic finite automata against a streamed
//! symbol sequence. For kNN (per the paper's earlier AP study, Lee et al.
//! IPDPS'17), each dataset vector becomes one Hamming-distance NFA; the
//! query streams through all resident NFAs in parallel. Large datasets do
//! not fit in one board configuration, so the board must be *reconfigured*
//! per partition — "the AP is bottlenecked by the high reconfiguration
//! overheads compared to SSAM" — and high-dimensional vectors consume so
//! many state-transition elements that "each automata processor
//! configuration can only fit a handful of vectors at a time".

use crate::ScanWorkload;

/// AP hardware generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApGeneration {
    /// First-generation board.
    Gen1,
    /// Hypothetical second generation with the 100× faster
    /// reconfiguration proposed in the paper's citation \[53\].
    Gen2,
}

/// The Automata Processor comparison platform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutomataPlatform {
    /// Symbol rate, symbols/s (133 MHz input stream).
    pub symbol_rate: f64,
    /// State-transition elements per board rank.
    pub board_stes: f64,
    /// STEs consumed per binary code bit (match + counter structure).
    pub stes_per_bit: f64,
    /// Full-board reconfiguration time, seconds.
    pub reconfig_s: f64,
    /// Dynamic power, W.
    pub dynamic_power_w: f64,
}

impl AutomataPlatform {
    /// A platform of the given generation.
    pub fn new(generation: ApGeneration) -> Self {
        let base_reconfig = 0.050; // 50 ms full-board load, gen 1
        Self {
            symbol_rate: 133.0e6,
            board_stes: 1.57e6, // 48 K STEs/chip × 32 chips
            stes_per_bit: 2.0,
            reconfig_s: match generation {
                ApGeneration::Gen1 => base_reconfig,
                ApGeneration::Gen2 => base_reconfig / 100.0,
            },
            dynamic_power_w: 4.0,
        }
    }

    /// Vectors of `bits`-bit codes resident per board configuration.
    pub fn vectors_per_config(&self, bits: usize) -> usize {
        ((self.board_stes / (self.stes_per_bit * bits as f64)) as usize).max(1)
    }

    /// Board configurations needed to cover the dataset.
    pub fn passes(&self, w: &ScanWorkload) -> usize {
        w.vectors.div_ceil(self.vectors_per_config(w.dims))
    }

    /// Seconds per query for linear Hamming kNN, amortizing each
    /// reconfiguration over a query batch of `batch` (queries resident
    /// during one configuration are streamed back to back).
    pub fn hamming_seconds_per_query(&self, w: &ScanWorkload, batch: usize) -> f64 {
        let passes = self.passes(w) as f64;
        // Per pass: one (amortized) reconfiguration + the query's symbol
        // stream (one 8-bit symbol per code bit).
        let stream = w.dims as f64 / self.symbol_rate;
        passes * (self.reconfig_s / batch.max(1) as f64 + stream)
    }

    /// Queries/second for linear Hamming kNN at the given batch size.
    pub fn hamming_throughput(&self, w: &ScanWorkload, batch: usize) -> f64 {
        1.0 / self.hamming_seconds_per_query(w, batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn glove() -> ScanWorkload {
        ScanWorkload::binary(1_200_000, 128)
    }
    fn alexnet() -> ScanWorkload {
        ScanWorkload::binary(1_000_000, 4096)
    }

    #[test]
    fn gen2_is_faster_than_gen1() {
        let g1 = AutomataPlatform::new(ApGeneration::Gen1);
        let g2 = AutomataPlatform::new(ApGeneration::Gen2);
        let w = glove();
        assert!(g2.hamming_throughput(&w, 100) > g1.hamming_throughput(&w, 100));
    }

    #[test]
    fn high_dimensions_collapse_capacity() {
        // Table VI's key shape: AlexNet-sized codes fit only a handful of
        // vectors per configuration.
        let ap = AutomataPlatform::new(ApGeneration::Gen1);
        assert!(ap.vectors_per_config(4096) < 200);
        assert!(ap.vectors_per_config(128) > 5000);
    }

    #[test]
    fn throughput_decreases_with_dimensionality() {
        let ap = AutomataPlatform::new(ApGeneration::Gen1);
        assert!(
            ap.hamming_throughput(&glove(), 100) > 20.0 * ap.hamming_throughput(&alexnet(), 100)
        );
    }

    #[test]
    fn reconfiguration_dominates_gen1() {
        let ap = AutomataPlatform::new(ApGeneration::Gen1);
        let w = glove();
        let t_batched = ap.hamming_seconds_per_query(&w, 1000);
        let t_single = ap.hamming_seconds_per_query(&w, 1);
        assert!(t_single > 10.0 * t_batched);
    }

    #[test]
    fn passes_cover_dataset() {
        let ap = AutomataPlatform::new(ApGeneration::Gen1);
        let w = glove();
        assert!(ap.passes(&w) * ap.vectors_per_config(w.dims) >= w.vectors);
    }
}
