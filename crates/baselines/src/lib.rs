//! # ssam-baselines — the paper's comparison platforms
//!
//! Section IV compares SSAM against a Xeon E5-2620 CPU (FLANN/FALCONN), an
//! NVIDIA Titan X GPU (Garcia et al. brute force), a Xilinx Kintex-7 FPGA
//! (a soft SSAM vector core), and — in Section VI-C — the Micron Automata
//! Processor. The paper treats these as measured black boxes and reports
//! *area-normalized* throughput and energy efficiency at a common 28 nm
//! node.
//!
//! This crate provides both layers of that comparison:
//!
//! * [`parallel`] — a *measured* multicore CPU baseline: rayon-parallel
//!   implementations of the four search algorithms with wall-clock
//!   batch timing (the FLANN/FALCONN role).
//! * [`cpu`], [`gpu`], [`fpga`], [`automata`] — *analytical* platform
//!   models (roofline throughput from published bandwidth/compute/die
//!   constants) so cross-platform figures are host-independent and
//!   comparable with the simulated SSAM numbers. DESIGN.md §2 documents
//!   why analytical models are the right substitution for the paper's
//!   silicon measurements.
//! * [`normalize`] — area normalization (qps/mm²) and energy efficiency
//!   (queries/J) helpers plus technology scaling.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod automata;
pub mod cpu;
pub mod fpga;
pub mod gpu;
pub mod normalize;
pub mod parallel;

pub use cpu::CpuPlatform;
pub use fpga::FpgaPlatform;
pub use gpu::GpuPlatform;
pub use normalize::{area_normalized_throughput, energy_efficiency};

/// Shape of a linear-scan workload: everything a roofline model needs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScanWorkload {
    /// Database cardinality.
    pub vectors: usize,
    /// Feature dimensionality (for binary codes: bits).
    pub dims: usize,
    /// Bytes per element (4 for f32/fixed, 1/8 for binary bits).
    pub elem_bytes: f64,
}

impl ScanWorkload {
    /// A float/fixed-point workload.
    pub fn dense(vectors: usize, dims: usize) -> Self {
        Self {
            vectors,
            dims,
            elem_bytes: 4.0,
        }
    }

    /// A binarized Hamming workload (`dims` = code bits).
    pub fn binary(vectors: usize, bits: usize) -> Self {
        Self {
            vectors,
            dims: bits,
            elem_bytes: 1.0 / 8.0,
        }
    }

    /// Bytes streamed per query (the whole database, once).
    pub fn bytes_per_query(&self) -> f64 {
        self.vectors as f64 * self.dims as f64 * self.elem_bytes
    }

    /// Arithmetic operations per query (sub+mul+add per dimension for
    /// dense scans; xor+popcount+add per 32-bit word for binary).
    pub fn ops_per_query(&self) -> f64 {
        if self.elem_bytes < 1.0 {
            // binary: ~3 ops per 32-dimension word
            3.0 * self.vectors as f64 * (self.dims as f64 / 32.0)
        } else {
            3.0 * self.vectors as f64 * self.dims as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_workload_bytes() {
        let w = ScanWorkload::dense(1000, 100);
        assert_eq!(w.bytes_per_query(), 400_000.0);
        assert_eq!(w.ops_per_query(), 300_000.0);
    }

    #[test]
    fn binary_workload_is_32x_smaller() {
        let dense = ScanWorkload::dense(1000, 128);
        let bin = ScanWorkload::binary(1000, 128);
        assert!((dense.bytes_per_query() / bin.bytes_per_query() - 32.0).abs() < 1e-9);
    }
}
