//! Area normalization and energy-efficiency helpers.
//!
//! "To provide fair energy efficiency and performance measurements, we
//! normalize each platform to a 28 nm technology process." (Section IV.)
//! Throughput comparisons divide by normalized die area (queries/s/mm²);
//! energy efficiency is queries per joule of dynamic energy.

/// Scales a die area from `node_nm` to 28 nm (area goes with the square
/// of feature size under the paper's linear scaling factors).
pub fn scale_area_to_28nm(area_mm2: f64, node_nm: f64) -> f64 {
    area_mm2 * (28.0 / node_nm).powi(2)
}

/// Scales a clock frequency from `node_nm` to 28 nm (frequency improves
/// linearly with feature-size shrink under classic scaling).
pub fn scale_freq_to_28nm(freq_hz: f64, node_nm: f64) -> f64 {
    freq_hz * (node_nm / 28.0)
}

/// Area-normalized throughput in queries/s/mm².
pub fn area_normalized_throughput(queries_per_second: f64, area_mm2: f64) -> f64 {
    assert!(area_mm2 > 0.0, "area must be positive");
    queries_per_second / area_mm2
}

/// Energy efficiency in queries per joule.
pub fn energy_efficiency(queries_per_second: f64, dynamic_power_w: f64) -> f64 {
    assert!(dynamic_power_w > 0.0, "power must be positive");
    queries_per_second / dynamic_power_w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_scaling_is_quadratic() {
        assert!((scale_area_to_28nm(100.0, 56.0) - 25.0).abs() < 1e-12);
        // Same node is identity.
        assert_eq!(scale_area_to_28nm(601.0, 28.0), 601.0);
    }

    #[test]
    fn freq_scaling_is_linear() {
        assert!((scale_freq_to_28nm(1.0e9, 56.0) - 2.0e9).abs() < 1.0);
    }

    #[test]
    fn normalized_throughput_divides_by_area() {
        assert_eq!(area_normalized_throughput(100.0, 50.0), 2.0);
    }

    #[test]
    fn energy_efficiency_divides_by_power() {
        assert_eq!(energy_efficiency(100.0, 25.0), 4.0);
    }

    #[test]
    #[should_panic(expected = "area must be positive")]
    fn zero_area_rejected() {
        let _ = area_normalized_throughput(1.0, 0.0);
    }
}
