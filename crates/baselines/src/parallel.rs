//! Measured multicore CPU baseline.
//!
//! The paper's CPU numbers come from FLANN/FALCONN wall-clock runs on all
//! six Xeon cores; queries are embarrassingly parallel, so the rayon
//! version here distributes the query batch across the host's cores. A
//! single-threaded entry point is provided as well because the paper's
//! Fig. 2 characterization is "for single threaded implementations".

use std::time::Instant;

use rayon::prelude::*;
use ssam_knn::index::{SearchBudget, SearchIndex, SearchStats};
use ssam_knn::topk::Neighbor;
use ssam_knn::VectorStore;

/// Result of timing a query batch.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// Per-query neighbor lists, aligned with the query store.
    pub results: Vec<Vec<Neighbor>>,
    /// Wall-clock seconds for the whole batch.
    pub seconds: f64,
    /// Throughput in queries/second.
    pub qps: f64,
    /// Work statistics summed over the batch.
    pub stats: SearchStats,
}

/// Runs every query through `index` on all cores, timing the batch.
pub fn batch_search<I: SearchIndex + Sync + ?Sized>(
    index: &I,
    store: &VectorStore,
    queries: &VectorStore,
    k: usize,
    budget: SearchBudget,
) -> BatchOutcome {
    let start = Instant::now();
    let per_query: Vec<(Vec<Neighbor>, SearchStats)> = (0..queries.len() as u32)
        .into_par_iter()
        .map(|q| index.search_with_stats(store, queries.get(q), k, budget))
        .collect();
    let seconds = start.elapsed().as_secs_f64().max(1e-12);
    finish(per_query, seconds)
}

/// Single-threaded variant (the paper's Fig. 2 methodology).
pub fn batch_search_single_thread<I: SearchIndex + ?Sized>(
    index: &I,
    store: &VectorStore,
    queries: &VectorStore,
    k: usize,
    budget: SearchBudget,
) -> BatchOutcome {
    let start = Instant::now();
    let per_query: Vec<(Vec<Neighbor>, SearchStats)> = (0..queries.len() as u32)
        .map(|q| index.search_with_stats(store, queries.get(q), k, budget))
        .collect();
    let seconds = start.elapsed().as_secs_f64().max(1e-12);
    finish(per_query, seconds)
}

fn finish(per_query: Vec<(Vec<Neighbor>, SearchStats)>, seconds: f64) -> BatchOutcome {
    let mut stats = SearchStats::default();
    let mut results = Vec::with_capacity(per_query.len());
    for (r, s) in per_query {
        stats.merge(&s);
        results.push(r);
    }
    let qps = results.len() as f64 / seconds;
    BatchOutcome {
        results,
        seconds,
        qps,
        stats,
    }
}

/// Mean recall of a batch outcome against exact ground-truth id sets.
pub fn batch_recall(outcome: &BatchOutcome, ground_truth: &[Vec<u32>]) -> f64 {
    assert_eq!(
        outcome.results.len(),
        ground_truth.len(),
        "batch size mismatch"
    );
    if ground_truth.is_empty() {
        return 1.0;
    }
    let total: f64 = outcome
        .results
        .iter()
        .zip(ground_truth)
        .map(|(r, gt)| {
            let ids: Vec<u32> = r.iter().map(|n| n.id).collect();
            ssam_knn::recall::recall_ids(gt, &ids)
        })
        .sum();
    total / ground_truth.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssam_knn::linear::LinearSearch;
    use ssam_knn::Metric;

    fn stores() -> (VectorStore, VectorStore) {
        let train = VectorStore::from_flat(1, (0..200).map(|i| i as f32).collect());
        let queries = VectorStore::from_flat(1, vec![5.2, 100.1, 150.9]);
        (train, queries)
    }

    #[test]
    fn parallel_matches_single_thread() {
        let (train, queries) = stores();
        let idx = LinearSearch::new(Metric::Euclidean);
        let par = batch_search(&idx, &train, &queries, 3, SearchBudget::unlimited());
        let seq = batch_search_single_thread(&idx, &train, &queries, 3, SearchBudget::unlimited());
        assert_eq!(par.results, seq.results);
        assert_eq!(par.stats, seq.stats);
    }

    #[test]
    fn batch_outcome_shapes() {
        let (train, queries) = stores();
        let idx = LinearSearch::new(Metric::Euclidean);
        let out = batch_search(&idx, &train, &queries, 4, SearchBudget::unlimited());
        assert_eq!(out.results.len(), 3);
        assert!(out.results.iter().all(|r| r.len() == 4));
        assert!(out.qps > 0.0);
        assert_eq!(out.stats.distance_evals, 600);
    }

    #[test]
    fn perfect_recall_for_exact_search() {
        let (train, queries) = stores();
        let idx = LinearSearch::new(Metric::Euclidean);
        let out = batch_search(&idx, &train, &queries, 2, SearchBudget::unlimited());
        let gt: Vec<Vec<u32>> = out
            .results
            .iter()
            .map(|r| r.iter().map(|n| n.id).collect())
            .collect();
        assert_eq!(batch_recall(&out, &gt), 1.0);
    }

    #[test]
    #[should_panic(expected = "batch size mismatch")]
    fn recall_rejects_mismatched_truth() {
        let (train, queries) = stores();
        let idx = LinearSearch::new(Metric::Euclidean);
        let out = batch_search(&idx, &train, &queries, 2, SearchBudget::unlimited());
        let _ = batch_recall(&out, &[]);
    }
}
