//! Analytical Titan X platform model.
//!
//! The paper benchmarks Garcia et al.'s brute-force GPU kNN on a GeForce
//! Titan X (Maxwell GM200: 601 mm² at 28 nm per the cited TechPowerUp
//! entry, 336 GB/s GDDR5, ~6.1 TFLOPS FP32, 250 W board / ~165 W dynamic).
//! Brute-force kNN streams the whole database per (batch of) queries, so
//! the roofline is again `max(memory, compute)`.

use crate::ScanWorkload;

/// The GPU comparison platform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuPlatform {
    /// Device memory bandwidth, bytes/s.
    pub mem_bandwidth: f64,
    /// Peak FP32 rate, ops/s.
    pub peak_ops: f64,
    /// Die area in mm² (already 28 nm for GM200).
    pub die_area_mm2: f64,
    /// Dynamic power in W.
    pub dynamic_power_w: f64,
    /// Queries sharing one database stream (device-side batching — Garcia
    /// et al. tile queries, amortizing each database load; kept modest
    /// because "time-sensitive applications have stringent latency
    /// budgets", Section I).
    pub batch: usize,
}

impl GpuPlatform {
    /// The paper's Titan X configuration.
    pub fn titan_x() -> Self {
        Self {
            mem_bandwidth: 336.0e9,
            peak_ops: 6.1e12,
            die_area_mm2: 601.0,
            dynamic_power_w: 165.0,
            batch: 8,
        }
    }

    /// Die area at 28 nm (GM200 is native 28 nm).
    pub fn area_mm2_28nm(&self) -> f64 {
        self.die_area_mm2
    }

    /// Roofline seconds per query for exact linear search.
    pub fn linear_seconds_per_query(&self, w: &ScanWorkload) -> f64 {
        // One database stream serves `batch` queries; compute scales with
        // every query.
        let mem = w.bytes_per_query() / self.mem_bandwidth / self.batch as f64;
        let cmp = w.ops_per_query() / self.peak_ops;
        mem.max(cmp)
    }

    /// Queries/second for exact linear search.
    pub fn linear_throughput(&self, w: &ScanWorkload) -> f64 {
        1.0 / self.linear_seconds_per_query(w)
    }

    /// Queries per joule of dynamic energy.
    pub fn linear_queries_per_joule(&self, w: &ScanWorkload) -> f64 {
        self.linear_throughput(w) / self.dynamic_power_w
    }
}

impl Default for GpuPlatform {
    fn default() -> Self {
        Self::titan_x()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::CpuPlatform;

    #[test]
    fn gpu_outruns_cpu_in_raw_throughput() {
        let g = GpuPlatform::titan_x();
        let c = CpuPlatform::xeon_e5_2620();
        let w = ScanWorkload::dense(1_000_000, 960);
        assert!(g.linear_throughput(&w) > 10.0 * c.linear_throughput(&w));
    }

    #[test]
    fn batching_amortizes_memory() {
        let mut g = GpuPlatform::titan_x();
        let w = ScanWorkload::dense(1_000_000, 100);
        let t1 = {
            g.batch = 1;
            g.linear_throughput(&w)
        };
        let t8 = {
            g.batch = 8;
            g.linear_throughput(&w)
        };
        assert!(t8 > 2.0 * t1);
    }

    #[test]
    fn compute_caps_large_batches() {
        let mut g = GpuPlatform::titan_x();
        g.batch = 1_000_000; // absurd batch: compute bound now
        let w = ScanWorkload::dense(1_000_000, 100);
        let cmp = w.ops_per_query() / g.peak_ops;
        assert!((g.linear_seconds_per_query(&w) - cmp).abs() < 1e-15);
    }
}
