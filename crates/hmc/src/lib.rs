//! # ssam-hmc — Hybrid Memory Cube 2.0 memory model
//!
//! The SSAM accelerator (Lee et al., IPDPS 2018, Section III-B) is built on
//! the logic layer of a Micron Hybrid Memory Cube: a die-stacked module
//! whose DRAM layers are vertically partitioned into **vaults**, each
//! accessed through a **vault controller** on the logic layer. In HMC 2.0
//! the module has up to 32 vaults at 10 GB/s each (320 GB/s aggregate
//! internal bandwidth) and four external data links totalling 240 GB/s.
//!
//! This crate models the parts of the HMC that determine SSAM performance:
//!
//! * [`config`] — module geometry and bandwidth/latency constants for HMC
//!   2.0 and, for the bandwidth ablation, a standard DDR module
//!   (the paper's "optimistically 25 GB/s").
//! * [`address`] — physical address → vault interleaving.
//! * [`packet`] — the FLIT-based link packet format used to size
//!   host↔module traffic.
//! * [`vault`] — transaction-level vault controller with busy-time
//!   bandwidth accounting.
//! * [`module`] — the assembled module: switch, vaults, external links,
//!   and streaming-time estimation used by the SSAM device model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod address;
pub mod config;
pub mod dram;
pub mod module;
pub mod packet;
pub mod vault;

pub use config::{DdrConfig, HmcConfig, MemoryTechnology};
pub use module::HmcModule;
