//! DRAM bank timing refinement.
//!
//! The vault controller model in [`crate::vault`] charges a flat access
//! latency plus line-rate transfer — accurate for SSAM's long sequential
//! scans. This module provides the next level of detail for studies that
//! need it: a row-buffer (open-page) model with classic JEDEC-style
//! timing parameters, exposing the efficiency gap between sequential,
//! strided, and random access patterns. It quantifies *why* the paper's
//! contiguous-bucket layout matters: scans at stride ≤ row size keep the
//! row buffer open, while random gathers pay precharge+activate on nearly
//! every access.

/// Bank timing parameters (seconds) and geometry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramTimings {
    /// Row activate → column access (tRCD).
    pub t_rcd: f64,
    /// Column access latency (tCAS/CL).
    pub t_cas: f64,
    /// Precharge time (tRP).
    pub t_rp: f64,
    /// Row-buffer (page) size in bytes.
    pub row_bytes: u64,
    /// Burst transfer time per column access (seconds per `burst_bytes`).
    pub t_burst: f64,
    /// Bytes delivered per burst.
    pub burst_bytes: u64,
    /// Banks available for pipelined row activation (sequential streams
    /// overlap the next row's activate with the current row's bursts).
    pub banks: u64,
}

impl DramTimings {
    /// Representative die-stacked DRAM layer timings (HMC-class TSV DRAM:
    /// small pages, fast core).
    pub fn hmc_layer() -> Self {
        Self {
            t_rcd: 13.0e-9,
            t_cas: 13.0e-9,
            t_rp: 13.0e-9,
            row_bytes: 256,
            t_burst: 3.2e-9,
            burst_bytes: 32,
            banks: 8,
        }
    }

    /// Representative DDR4 timings (larger pages, slower bursts relative
    /// to internal HMC banks).
    pub fn ddr4() -> Self {
        Self {
            t_rcd: 14.0e-9,
            t_cas: 14.0e-9,
            t_rp: 14.0e-9,
            row_bytes: 8192,
            t_burst: 5.0e-9,
            burst_bytes: 64,
            banks: 16,
        }
    }

    /// Seconds to read `bytes` sequentially starting at a row boundary:
    /// the first access pays the full activate; thereafter row activations
    /// pipeline across banks underneath the data bursts.
    pub fn sequential_read_time(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        let rows = bytes.div_ceil(self.row_bytes);
        let bursts = bytes.div_ceil(self.burst_bytes);
        let overhead = self.t_rp + self.t_rcd + self.t_cas;
        let burst_time = bursts as f64 * self.t_burst;
        let activation_time = rows as f64 * overhead / self.banks as f64;
        overhead + burst_time.max(activation_time)
    }

    /// Seconds to read `count` elements of `elem_bytes` at a fixed byte
    /// `stride`: rows are re-opened whenever the stride crosses a row.
    /// Gather streams issued by one in-order PU have dependent address
    /// generation, so row activations do **not** pipeline across banks
    /// (unlike the hardware-prefetched sequential path).
    pub fn strided_read_time(&self, count: u64, elem_bytes: u64, stride: u64) -> f64 {
        if count == 0 {
            return 0.0;
        }
        let elems_per_row = if stride == 0 {
            count
        } else {
            (self.row_bytes / stride.max(1)).max(1)
        };
        let rows = count.div_ceil(elems_per_row);
        let bursts = count * elem_bytes.div_ceil(self.burst_bytes).max(1);
        rows as f64 * (self.t_rp + self.t_rcd + self.t_cas) + bursts as f64 * self.t_burst
    }

    /// Seconds for `count` independent random reads of `elem_bytes` each:
    /// every access pays the full precharge/activate/CAS sequence.
    pub fn random_read_time(&self, count: u64, elem_bytes: u64) -> f64 {
        let per = self.t_rp
            + self.t_rcd
            + self.t_cas
            + elem_bytes.div_ceil(self.burst_bytes).max(1) as f64 * self.t_burst;
        count as f64 * per
    }

    /// Sustained sequential bandwidth in bytes/second.
    pub fn sequential_bandwidth(&self) -> f64 {
        let probe = 64 * self.row_bytes;
        probe as f64 / self.sequential_read_time(probe)
    }

    /// Efficiency of random element reads relative to sequential
    /// streaming (the fraction of peak bandwidth a gather achieves).
    pub fn random_access_efficiency(&self, elem_bytes: u64) -> f64 {
        let random_bw = elem_bytes as f64 / self.random_read_time(1, elem_bytes);
        random_bw / self.sequential_bandwidth()
    }
}

/// Bits in a [`Secded32`] codeword: 32 data + 6 Hamming parity + 1 overall.
pub const SECDED_CODE_BITS: u32 = 39;

/// Outcome of decoding a SECDED codeword.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SecdedOutcome {
    /// No error; the stored word.
    Clean(u32),
    /// A single-bit error was corrected in place.
    Corrected {
        /// The recovered word.
        data: u32,
        /// Codeword bit position (0..39) that was flipped.
        bit: u32,
    },
    /// A double-bit error was detected; the word is unrecoverable.
    DoubleError,
}

/// SECDED (single-error-correct, double-error-detect) extended Hamming code
/// over 32-bit words, as used by in-DRAM ECC on HMC-class stacked memory.
///
/// Layout follows the classic extended Hamming construction: codeword bit 0
/// holds overall parity, bits at power-of-two positions 1,2,4,8,16,32 hold
/// the six Hamming parity bits, and the 32 data bits fill the remaining
/// positions up to 38. Any single flipped bit is located by the syndrome and
/// corrected; any two flipped bits yield a non-zero syndrome with even
/// overall parity and are reported as [`SecdedOutcome::DoubleError`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Secded32;

impl Secded32 {
    fn is_data_position(pos: u32) -> bool {
        pos != 0 && !pos.is_power_of_two()
    }

    /// Encodes `data` into a 39-bit codeword (in the low bits of the u64).
    pub fn encode(data: u32) -> u64 {
        let mut code: u64 = 0;
        let mut bit = 0u32;
        for pos in 1..SECDED_CODE_BITS {
            if Self::is_data_position(pos) {
                code |= u64::from((data >> bit) & 1) << pos;
                bit += 1;
            }
        }
        debug_assert_eq!(bit, 32);
        // Hamming parity p (at position 2^p) covers every position whose
        // index has that bit set.
        for p in 0..6u32 {
            let mask = 1u32 << p;
            let mut parity = 0u64;
            for pos in 1..SECDED_CODE_BITS {
                if pos & mask != 0 {
                    parity ^= (code >> pos) & 1;
                }
            }
            code |= parity << mask;
        }
        // Overall parity over the whole codeword makes it SECDED.
        let overall = (1..SECDED_CODE_BITS).fold(0u64, |acc, pos| acc ^ ((code >> pos) & 1));
        code | overall
    }

    fn extract(code: u64) -> u32 {
        let mut data = 0u32;
        let mut bit = 0u32;
        for pos in 1..SECDED_CODE_BITS {
            if Self::is_data_position(pos) {
                data |= (((code >> pos) & 1) as u32) << bit;
                bit += 1;
            }
        }
        data
    }

    /// Decodes a codeword, correcting a single flipped bit if present.
    pub fn decode(code: u64) -> SecdedOutcome {
        let mut syndrome = 0u32;
        for p in 0..6u32 {
            let mask = 1u32 << p;
            let mut parity = 0u64;
            for pos in 1..SECDED_CODE_BITS {
                if pos & mask != 0 {
                    parity ^= (code >> pos) & 1;
                }
            }
            if parity != 0 {
                syndrome |= mask;
            }
        }
        let overall = (0..SECDED_CODE_BITS).fold(0u64, |acc, pos| acc ^ ((code >> pos) & 1));
        match (syndrome, overall) {
            (0, 0) => SecdedOutcome::Clean(Self::extract(code)),
            // Odd overall parity: exactly one bit flipped, located by the
            // syndrome (0 means the overall-parity bit itself).
            (s, 1) => {
                let fixed = code ^ (1u64 << s);
                SecdedOutcome::Corrected {
                    data: Self::extract(fixed),
                    bit: s,
                }
            }
            // Even overall parity with a non-zero syndrome: two flips.
            (_, _) => SecdedOutcome::DoubleError,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_reads_amortize_row_activations() {
        let t = DramTimings::hmc_layer();
        // Twice the bytes should take well under twice the per-row
        // overhead-dominated time of tiny reads.
        let one = t.sequential_read_time(t.row_bytes);
        let many = t.sequential_read_time(64 * t.row_bytes);
        assert!(
            many < 64.0 * one,
            "row overhead must amortize: {one} vs {many}"
        );
    }

    #[test]
    fn random_reads_are_much_slower_than_sequential() {
        let t = DramTimings::hmc_layer();
        let eff = t.random_access_efficiency(4);
        assert!(
            eff < 0.2,
            "random 4-byte gathers should be <20% efficient, got {eff}"
        );
    }

    #[test]
    fn stride_within_row_beats_stride_across_rows() {
        let t = DramTimings::ddr4();
        let dense = t.strided_read_time(1000, 4, 64); // many elems per row
        let sparse = t.strided_read_time(1000, 4, 16384); // new row each elem
        assert!(sparse > 5.0 * dense);
    }

    #[test]
    fn zero_length_reads_are_free() {
        let t = DramTimings::hmc_layer();
        assert_eq!(t.sequential_read_time(0), 0.0);
        assert_eq!(t.strided_read_time(0, 4, 64), 0.0);
    }

    #[test]
    fn sequential_bandwidth_is_plausible() {
        // One HMC vault layer sustains on the order of 10 GB/s.
        let bw = DramTimings::hmc_layer().sequential_bandwidth();
        assert!((5.0e9..20.0e9).contains(&bw), "bw = {bw:.3e}");
    }

    #[test]
    fn ddr4_rows_are_bigger_but_streaming_is_comparable() {
        let hmc = DramTimings::hmc_layer();
        let ddr = DramTimings::ddr4();
        assert!(ddr.row_bytes > hmc.row_bytes);
        let ratio = hmc.sequential_bandwidth() / ddr.sequential_bandwidth();
        assert!((0.2..5.0).contains(&ratio));
    }

    #[test]
    fn secded_clean_round_trip() {
        for w in [0u32, 1, 0xffff_ffff, 0xdead_beef, 0x8000_0001] {
            assert_eq!(
                Secded32::decode(Secded32::encode(w)),
                SecdedOutcome::Clean(w)
            );
        }
    }

    #[test]
    fn secded_corrects_every_single_bit_flip() {
        for w in [0u32, 0xa5a5_5a5a, 0xffff_ffff, 0x1234_5678] {
            let code = Secded32::encode(w);
            for bit in 0..SECDED_CODE_BITS {
                match Secded32::decode(code ^ (1u64 << bit)) {
                    SecdedOutcome::Corrected { data, bit: located } => {
                        assert_eq!(data, w, "flip at {bit} not corrected");
                        assert_eq!(located, bit);
                    }
                    other => panic!("flip at {bit}: expected correction, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn secded_detects_every_double_bit_flip() {
        let w = 0xcafe_f00du32;
        let code = Secded32::encode(w);
        for b0 in 0..SECDED_CODE_BITS {
            for b1 in (b0 + 1)..SECDED_CODE_BITS {
                let corrupted = code ^ (1u64 << b0) ^ (1u64 << b1);
                assert_eq!(
                    Secded32::decode(corrupted),
                    SecdedOutcome::DoubleError,
                    "double flip at ({b0}, {b1}) not detected"
                );
            }
        }
    }
}
