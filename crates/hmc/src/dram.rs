//! DRAM bank timing refinement.
//!
//! The vault controller model in [`crate::vault`] charges a flat access
//! latency plus line-rate transfer — accurate for SSAM's long sequential
//! scans. This module provides the next level of detail for studies that
//! need it: a row-buffer (open-page) model with classic JEDEC-style
//! timing parameters, exposing the efficiency gap between sequential,
//! strided, and random access patterns. It quantifies *why* the paper's
//! contiguous-bucket layout matters: scans at stride ≤ row size keep the
//! row buffer open, while random gathers pay precharge+activate on nearly
//! every access.

/// Bank timing parameters (seconds) and geometry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramTimings {
    /// Row activate → column access (tRCD).
    pub t_rcd: f64,
    /// Column access latency (tCAS/CL).
    pub t_cas: f64,
    /// Precharge time (tRP).
    pub t_rp: f64,
    /// Row-buffer (page) size in bytes.
    pub row_bytes: u64,
    /// Burst transfer time per column access (seconds per `burst_bytes`).
    pub t_burst: f64,
    /// Bytes delivered per burst.
    pub burst_bytes: u64,
    /// Banks available for pipelined row activation (sequential streams
    /// overlap the next row's activate with the current row's bursts).
    pub banks: u64,
}

impl DramTimings {
    /// Representative die-stacked DRAM layer timings (HMC-class TSV DRAM:
    /// small pages, fast core).
    pub fn hmc_layer() -> Self {
        Self {
            t_rcd: 13.0e-9,
            t_cas: 13.0e-9,
            t_rp: 13.0e-9,
            row_bytes: 256,
            t_burst: 3.2e-9,
            burst_bytes: 32,
            banks: 8,
        }
    }

    /// Representative DDR4 timings (larger pages, slower bursts relative
    /// to internal HMC banks).
    pub fn ddr4() -> Self {
        Self {
            t_rcd: 14.0e-9,
            t_cas: 14.0e-9,
            t_rp: 14.0e-9,
            row_bytes: 8192,
            t_burst: 5.0e-9,
            burst_bytes: 64,
            banks: 16,
        }
    }

    /// Seconds to read `bytes` sequentially starting at a row boundary:
    /// the first access pays the full activate; thereafter row activations
    /// pipeline across banks underneath the data bursts.
    pub fn sequential_read_time(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        let rows = bytes.div_ceil(self.row_bytes);
        let bursts = bytes.div_ceil(self.burst_bytes);
        let overhead = self.t_rp + self.t_rcd + self.t_cas;
        let burst_time = bursts as f64 * self.t_burst;
        let activation_time = rows as f64 * overhead / self.banks as f64;
        overhead + burst_time.max(activation_time)
    }

    /// Seconds to read `count` elements of `elem_bytes` at a fixed byte
    /// `stride`: rows are re-opened whenever the stride crosses a row.
    /// Gather streams issued by one in-order PU have dependent address
    /// generation, so row activations do **not** pipeline across banks
    /// (unlike the hardware-prefetched sequential path).
    pub fn strided_read_time(&self, count: u64, elem_bytes: u64, stride: u64) -> f64 {
        if count == 0 {
            return 0.0;
        }
        let elems_per_row = if stride == 0 {
            count
        } else {
            (self.row_bytes / stride.max(1)).max(1)
        };
        let rows = count.div_ceil(elems_per_row);
        let bursts = count * elem_bytes.div_ceil(self.burst_bytes).max(1);
        rows as f64 * (self.t_rp + self.t_rcd + self.t_cas) + bursts as f64 * self.t_burst
    }

    /// Seconds for `count` independent random reads of `elem_bytes` each:
    /// every access pays the full precharge/activate/CAS sequence.
    pub fn random_read_time(&self, count: u64, elem_bytes: u64) -> f64 {
        let per = self.t_rp
            + self.t_rcd
            + self.t_cas
            + elem_bytes.div_ceil(self.burst_bytes).max(1) as f64 * self.t_burst;
        count as f64 * per
    }

    /// Sustained sequential bandwidth in bytes/second.
    pub fn sequential_bandwidth(&self) -> f64 {
        let probe = 64 * self.row_bytes;
        probe as f64 / self.sequential_read_time(probe)
    }

    /// Efficiency of random element reads relative to sequential
    /// streaming (the fraction of peak bandwidth a gather achieves).
    pub fn random_access_efficiency(&self, elem_bytes: u64) -> f64 {
        let random_bw = elem_bytes as f64 / self.random_read_time(1, elem_bytes);
        random_bw / self.sequential_bandwidth()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_reads_amortize_row_activations() {
        let t = DramTimings::hmc_layer();
        // Twice the bytes should take well under twice the per-row
        // overhead-dominated time of tiny reads.
        let one = t.sequential_read_time(t.row_bytes);
        let many = t.sequential_read_time(64 * t.row_bytes);
        assert!(
            many < 64.0 * one,
            "row overhead must amortize: {one} vs {many}"
        );
    }

    #[test]
    fn random_reads_are_much_slower_than_sequential() {
        let t = DramTimings::hmc_layer();
        let eff = t.random_access_efficiency(4);
        assert!(
            eff < 0.2,
            "random 4-byte gathers should be <20% efficient, got {eff}"
        );
    }

    #[test]
    fn stride_within_row_beats_stride_across_rows() {
        let t = DramTimings::ddr4();
        let dense = t.strided_read_time(1000, 4, 64); // many elems per row
        let sparse = t.strided_read_time(1000, 4, 16384); // new row each elem
        assert!(sparse > 5.0 * dense);
    }

    #[test]
    fn zero_length_reads_are_free() {
        let t = DramTimings::hmc_layer();
        assert_eq!(t.sequential_read_time(0), 0.0);
        assert_eq!(t.strided_read_time(0, 4, 64), 0.0);
    }

    #[test]
    fn sequential_bandwidth_is_plausible() {
        // One HMC vault layer sustains on the order of 10 GB/s.
        let bw = DramTimings::hmc_layer().sequential_bandwidth();
        assert!((5.0e9..20.0e9).contains(&bw), "bw = {bw:.3e}");
    }

    #[test]
    fn ddr4_rows_are_bigger_but_streaming_is_comparable() {
        let hmc = DramTimings::hmc_layer();
        let ddr = DramTimings::ddr4();
        assert!(ddr.row_bytes > hmc.row_bytes);
        let ratio = hmc.sequential_bandwidth() / ddr.sequential_bandwidth();
        assert!((0.2..5.0).contains(&ratio));
    }
}
