//! HMC link packet model.
//!
//! HMC links move *FLITs* of 16 bytes; every request and response packet
//! carries one header FLIT and one tail FLIT of overhead around its data
//! payload. This model sizes host↔module traffic so the device model can
//! confirm the paper's claim that external links are never the bottleneck
//! ("we only expect the communication network … to consist of kNN results
//! which are a fraction of the original dataset size").

use bytes::{BufMut, Bytes, BytesMut};

/// Bytes per FLIT on an HMC link.
pub const FLIT_BYTES: usize = 16;
/// Bytes of CRC carried in each packet's tail FLIT.
pub const CRC_BYTES: usize = 4;
/// Header + tail overhead per packet, in FLITs.
pub const OVERHEAD_FLITS: usize = 2;
/// Maximum data payload per packet (HMC spec: 128 bytes).
pub const MAX_PAYLOAD_BYTES: usize = 128;

/// Request commands a host can issue to a module.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Read `len` bytes at `addr`.
    Read,
    /// Write payload at `addr`.
    Write,
    /// SSAM extension: write a query vector into a PU scratchpad region.
    WriteQuery,
    /// SSAM extension: launch kernel execution (the `nexec` call of Fig. 4).
    Exec,
    /// SSAM extension: read back a result buffer of (id, distance) tuples.
    ReadResult,
}

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), as carried in the
/// tail FLIT of every HMC packet for link-level error detection.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xffff_ffffu32;
    for &byte in data {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let lsb = crc & 1;
            crc >>= 1;
            if lsb != 0 {
                crc ^= 0xedb8_8320;
            }
        }
    }
    !crc
}

/// One link packet (request or response).
#[derive(Debug, Clone, PartialEq)]
pub struct Packet {
    /// Command.
    pub command: Command,
    /// Target byte address within the module.
    pub addr: u64,
    /// Data payload (may be empty for pure requests).
    pub payload: Bytes,
}

impl Packet {
    /// Builds a request packet.
    pub fn request(command: Command, addr: u64, payload: &[u8]) -> Self {
        Self {
            command,
            addr,
            payload: Bytes::copy_from_slice(payload),
        }
    }

    /// Total FLITs on the wire for this packet, including overhead.
    pub fn flits(&self) -> usize {
        OVERHEAD_FLITS + self.payload.len().div_ceil(FLIT_BYTES)
    }

    /// Total wire bytes for this packet.
    pub fn wire_bytes(&self) -> usize {
        self.flits() * FLIT_BYTES
    }

    /// Serializes to a raw frame (debug/trace tooling). The frame carries a
    /// trailing CRC-32 over header and payload, mirroring the CRC in the
    /// tail FLIT of real HMC packets.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(13 + self.payload.len() + CRC_BYTES);
        buf.put_u8(match self.command {
            Command::Read => 0,
            Command::Write => 1,
            Command::WriteQuery => 2,
            Command::Exec => 3,
            Command::ReadResult => 4,
        });
        buf.put_u64(self.addr);
        buf.put_u32(self.payload.len() as u32);
        buf.put_slice(&self.payload);
        let crc = crc32(&buf);
        buf.put_u32(crc);
        buf.freeze()
    }

    /// Decodes a frame produced by [`Packet::encode`], verifying the CRC.
    ///
    /// Returns `None` on truncated, malformed, or corrupted input.
    pub fn decode(mut frame: Bytes) -> Option<Self> {
        use bytes::Buf;
        if frame.len() < 13 + CRC_BYTES {
            return None;
        }
        let body_len = frame.len() - CRC_BYTES;
        let expected = crc32(&frame[..body_len]);
        let stored = u32::from_be_bytes(frame[body_len..].try_into().ok()?);
        if expected != stored {
            return None;
        }
        let command = match frame.get_u8() {
            0 => Command::Read,
            1 => Command::Write,
            2 => Command::WriteQuery,
            3 => Command::Exec,
            4 => Command::ReadResult,
            _ => return None,
        };
        let addr = frame.get_u64();
        let len = frame.get_u32() as usize;
        if frame.len() != len + CRC_BYTES {
            return None;
        }
        Some(Self {
            command,
            addr,
            payload: Bytes::copy_from_slice(&frame[..len]),
        })
    }
}

/// Wire bytes needed to move `payload_bytes` of bulk data, accounting for
/// per-packet overhead at the maximum payload size.
pub fn bulk_wire_bytes(payload_bytes: u64) -> u64 {
    let full = payload_bytes / MAX_PAYLOAD_BYTES as u64;
    let rem = payload_bytes % MAX_PAYLOAD_BYTES as u64;
    let full_packet_wire = ((OVERHEAD_FLITS + MAX_PAYLOAD_BYTES / FLIT_BYTES) * FLIT_BYTES) as u64;
    let mut wire = full * full_packet_wire;
    if rem > 0 {
        wire += (OVERHEAD_FLITS as u64 + rem.div_ceil(FLIT_BYTES as u64)) * FLIT_BYTES as u64;
    }
    wire
}

/// Link efficiency for bulk transfers: payload / wire bytes.
pub fn bulk_efficiency() -> f64 {
    MAX_PAYLOAD_BYTES as f64
        / ((OVERHEAD_FLITS + MAX_PAYLOAD_BYTES / FLIT_BYTES) * FLIT_BYTES) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_packet_is_pure_overhead() {
        let p = Packet::request(Command::Read, 0, &[]);
        assert_eq!(p.flits(), OVERHEAD_FLITS);
        assert_eq!(p.wire_bytes(), 32);
    }

    #[test]
    fn payload_rounds_up_to_flits() {
        let p = Packet::request(Command::Write, 0, &[0u8; 17]);
        assert_eq!(p.flits(), OVERHEAD_FLITS + 2);
    }

    #[test]
    fn encode_decode_round_trip() {
        let p = Packet::request(Command::Exec, 0xDEAD_BEEF, &[1, 2, 3, 4, 5]);
        let decoded = Packet::decode(p.encode()).expect("decodes");
        assert_eq!(decoded, p);
    }

    #[test]
    fn decode_rejects_truncation() {
        let p = Packet::request(Command::Write, 7, &[9; 40]);
        let mut enc = p.encode().to_vec();
        enc.truncate(20);
        assert!(Packet::decode(Bytes::from(enc)).is_none());
    }

    #[test]
    fn decode_rejects_bad_command() {
        let mut enc = Packet::request(Command::Read, 0, &[]).encode().to_vec();
        enc[0] = 99;
        assert!(Packet::decode(Bytes::from(enc)).is_none());
    }

    #[test]
    fn bulk_wire_bytes_accounts_overhead() {
        // One full packet: 128B payload → 8 data + 2 overhead FLITs = 160B.
        assert_eq!(bulk_wire_bytes(128), 160);
        // Two packets.
        assert_eq!(bulk_wire_bytes(256), 320);
        // Partial trailing packet: 1 byte → 1 data + 2 overhead FLITs.
        assert_eq!(bulk_wire_bytes(129), 160 + 48);
        assert_eq!(bulk_wire_bytes(0), 0);
    }

    #[test]
    fn bulk_efficiency_is_eighty_percent() {
        assert!((bulk_efficiency() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn crc32_known_answer() {
        // The standard IEEE 802.3 check value.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn decode_rejects_payload_bit_flip() {
        // Same length, one flipped payload bit: only the CRC can catch it.
        let p = Packet::request(Command::ReadResult, 3, &[0u8; 32]);
        let mut enc = p.encode().to_vec();
        let idx = 13 + 5;
        enc[idx] ^= 0x10;
        assert!(Packet::decode(Bytes::from(enc)).is_none());
    }

    #[test]
    fn decode_rejects_corrupted_crc_field() {
        let p = Packet::request(Command::Exec, 1, &[1, 2, 3]);
        let mut enc = p.encode().to_vec();
        let last = enc.len() - 1;
        enc[last] ^= 0xff;
        assert!(Packet::decode(Bytes::from(enc)).is_none());
    }

    #[test]
    fn all_commands_round_trip() {
        for c in [
            Command::Read,
            Command::Write,
            Command::WriteQuery,
            Command::Exec,
            Command::ReadResult,
        ] {
            let p = Packet::request(c, 42, &[7]);
            assert_eq!(Packet::decode(p.encode()).expect("decodes").command, c);
        }
    }
}
