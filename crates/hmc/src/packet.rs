//! HMC link packet model.
//!
//! HMC links move *FLITs* of 16 bytes; every request and response packet
//! carries one header FLIT and one tail FLIT of overhead around its data
//! payload. This model sizes host↔module traffic so the device model can
//! confirm the paper's claim that external links are never the bottleneck
//! ("we only expect the communication network … to consist of kNN results
//! which are a fraction of the original dataset size").

use bytes::{BufMut, Bytes, BytesMut};

/// Bytes per FLIT on an HMC link.
pub const FLIT_BYTES: usize = 16;
/// Header + tail overhead per packet, in FLITs.
pub const OVERHEAD_FLITS: usize = 2;
/// Maximum data payload per packet (HMC spec: 128 bytes).
pub const MAX_PAYLOAD_BYTES: usize = 128;

/// Request commands a host can issue to a module.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Read `len` bytes at `addr`.
    Read,
    /// Write payload at `addr`.
    Write,
    /// SSAM extension: write a query vector into a PU scratchpad region.
    WriteQuery,
    /// SSAM extension: launch kernel execution (the `nexec` call of Fig. 4).
    Exec,
    /// SSAM extension: read back a result buffer of (id, distance) tuples.
    ReadResult,
}

/// One link packet (request or response).
#[derive(Debug, Clone, PartialEq)]
pub struct Packet {
    /// Command.
    pub command: Command,
    /// Target byte address within the module.
    pub addr: u64,
    /// Data payload (may be empty for pure requests).
    pub payload: Bytes,
}

impl Packet {
    /// Builds a request packet.
    pub fn request(command: Command, addr: u64, payload: &[u8]) -> Self {
        Self {
            command,
            addr,
            payload: Bytes::copy_from_slice(payload),
        }
    }

    /// Total FLITs on the wire for this packet, including overhead.
    pub fn flits(&self) -> usize {
        OVERHEAD_FLITS + self.payload.len().div_ceil(FLIT_BYTES)
    }

    /// Total wire bytes for this packet.
    pub fn wire_bytes(&self) -> usize {
        self.flits() * FLIT_BYTES
    }

    /// Serializes to a raw frame (debug/trace tooling).
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(13 + self.payload.len());
        buf.put_u8(match self.command {
            Command::Read => 0,
            Command::Write => 1,
            Command::WriteQuery => 2,
            Command::Exec => 3,
            Command::ReadResult => 4,
        });
        buf.put_u64(self.addr);
        buf.put_u32(self.payload.len() as u32);
        buf.put_slice(&self.payload);
        buf.freeze()
    }

    /// Decodes a frame produced by [`Packet::encode`].
    ///
    /// Returns `None` on truncated or malformed input.
    pub fn decode(mut frame: Bytes) -> Option<Self> {
        use bytes::Buf;
        if frame.len() < 13 {
            return None;
        }
        let command = match frame.get_u8() {
            0 => Command::Read,
            1 => Command::Write,
            2 => Command::WriteQuery,
            3 => Command::Exec,
            4 => Command::ReadResult,
            _ => return None,
        };
        let addr = frame.get_u64();
        let len = frame.get_u32() as usize;
        if frame.len() != len {
            return None;
        }
        Some(Self {
            command,
            addr,
            payload: frame,
        })
    }
}

/// Wire bytes needed to move `payload_bytes` of bulk data, accounting for
/// per-packet overhead at the maximum payload size.
pub fn bulk_wire_bytes(payload_bytes: u64) -> u64 {
    let full = payload_bytes / MAX_PAYLOAD_BYTES as u64;
    let rem = payload_bytes % MAX_PAYLOAD_BYTES as u64;
    let full_packet_wire = ((OVERHEAD_FLITS + MAX_PAYLOAD_BYTES / FLIT_BYTES) * FLIT_BYTES) as u64;
    let mut wire = full * full_packet_wire;
    if rem > 0 {
        wire += (OVERHEAD_FLITS as u64 + rem.div_ceil(FLIT_BYTES as u64)) * FLIT_BYTES as u64;
    }
    wire
}

/// Link efficiency for bulk transfers: payload / wire bytes.
pub fn bulk_efficiency() -> f64 {
    MAX_PAYLOAD_BYTES as f64
        / ((OVERHEAD_FLITS + MAX_PAYLOAD_BYTES / FLIT_BYTES) * FLIT_BYTES) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_packet_is_pure_overhead() {
        let p = Packet::request(Command::Read, 0, &[]);
        assert_eq!(p.flits(), OVERHEAD_FLITS);
        assert_eq!(p.wire_bytes(), 32);
    }

    #[test]
    fn payload_rounds_up_to_flits() {
        let p = Packet::request(Command::Write, 0, &[0u8; 17]);
        assert_eq!(p.flits(), OVERHEAD_FLITS + 2);
    }

    #[test]
    fn encode_decode_round_trip() {
        let p = Packet::request(Command::Exec, 0xDEAD_BEEF, &[1, 2, 3, 4, 5]);
        let decoded = Packet::decode(p.encode()).expect("decodes");
        assert_eq!(decoded, p);
    }

    #[test]
    fn decode_rejects_truncation() {
        let p = Packet::request(Command::Write, 7, &[9; 40]);
        let mut enc = p.encode().to_vec();
        enc.truncate(20);
        assert!(Packet::decode(Bytes::from(enc)).is_none());
    }

    #[test]
    fn decode_rejects_bad_command() {
        let mut enc = Packet::request(Command::Read, 0, &[]).encode().to_vec();
        enc[0] = 99;
        assert!(Packet::decode(Bytes::from(enc)).is_none());
    }

    #[test]
    fn bulk_wire_bytes_accounts_overhead() {
        // One full packet: 128B payload → 8 data + 2 overhead FLITs = 160B.
        assert_eq!(bulk_wire_bytes(128), 160);
        // Two packets.
        assert_eq!(bulk_wire_bytes(256), 320);
        // Partial trailing packet: 1 byte → 1 data + 2 overhead FLITs.
        assert_eq!(bulk_wire_bytes(129), 160 + 48);
        assert_eq!(bulk_wire_bytes(0), 0);
    }

    #[test]
    fn bulk_efficiency_is_eighty_percent() {
        assert!((bulk_efficiency() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn all_commands_round_trip() {
        for c in [
            Command::Read,
            Command::Write,
            Command::WriteQuery,
            Command::Exec,
            Command::ReadResult,
        ] {
            let p = Packet::request(c, 42, &[7]);
            assert_eq!(Packet::decode(p.encode()).expect("decodes").command, c);
        }
    }
}
