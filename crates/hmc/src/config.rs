//! Memory-technology configurations.
//!
//! Constants follow the HMC 2.0 specification values quoted in the paper:
//! 32 vaults, 10 GB/s per vault controller (320 GB/s aggregate internal
//! bandwidth), four external links totalling 240 GB/s. The DDR
//! configuration captures the paper's CPU-side comparison point
//! ("optimistically, standard DRAM modules provide up to 25 GB/s").

/// Geometry and bandwidth of one HMC module.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HmcConfig {
    /// Number of vaults (HMC 2.0: up to 32).
    pub vaults: usize,
    /// Sustained bandwidth per vault controller, bytes/second.
    pub vault_bandwidth: f64,
    /// Number of external data links.
    pub external_links: usize,
    /// Aggregate external link bandwidth, bytes/second (HMC 2.0: 240 GB/s).
    pub external_bandwidth: f64,
    /// Module capacity in bytes (HMC 2.0: 8 GiB).
    pub capacity: u64,
    /// DRAM access latency for a closed-page random access, seconds.
    pub access_latency: f64,
    /// Interleaving block size in bytes (consecutive blocks map to
    /// consecutive vaults).
    pub block_bytes: u64,
}

impl HmcConfig {
    /// HMC 2.0 as described in the paper: 32 vaults × 10 GB/s = 320 GB/s
    /// internal, 240 GB/s external, 8 GiB.
    pub fn hmc2() -> Self {
        Self {
            vaults: 32,
            vault_bandwidth: 10.0e9,
            external_links: 4,
            external_bandwidth: 240.0e9,
            capacity: 8 << 30,
            access_latency: 50e-9,
            block_bytes: 256,
        }
    }

    /// HMC 1.0 (16 vaults), used for sensitivity studies.
    pub fn hmc1() -> Self {
        Self {
            vaults: 16,
            vault_bandwidth: 10.0e9,
            external_links: 4,
            external_bandwidth: 160.0e9,
            capacity: 4 << 30,
            access_latency: 50e-9,
            block_bytes: 256,
        }
    }

    /// Aggregate internal bandwidth (all vaults), bytes/second.
    pub fn internal_bandwidth(&self) -> f64 {
        self.vaults as f64 * self.vault_bandwidth
    }

    /// Capacity per vault in bytes.
    pub fn vault_capacity(&self) -> u64 {
        self.capacity / self.vaults as u64
    }
}

impl Default for HmcConfig {
    fn default() -> Self {
        Self::hmc2()
    }
}

/// A conventional DDR memory channel set, the CPU-side comparison point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DdrConfig {
    /// Sustained bandwidth in bytes/second.
    pub bandwidth: f64,
    /// Access latency in seconds.
    pub access_latency: f64,
    /// Capacity in bytes.
    pub capacity: u64,
}

impl DdrConfig {
    /// The paper's optimistic standard-DRAM figure: 25 GB/s.
    pub fn ddr4_quad_channel() -> Self {
        Self {
            bandwidth: 25.0e9,
            access_latency: 70e-9,
            capacity: 64 << 30,
        }
    }
}

impl Default for DdrConfig {
    fn default() -> Self {
        Self::ddr4_quad_channel()
    }
}

/// Either memory technology, unified for the bandwidth ablation
/// (`ablation_bandwidth` experiment).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MemoryTechnology {
    /// Die-stacked HMC.
    Hmc(HmcConfig),
    /// Conventional DDR.
    Ddr(DdrConfig),
}

impl MemoryTechnology {
    /// Peak bandwidth the compute substrate can draw, bytes/second.
    pub fn compute_visible_bandwidth(&self) -> f64 {
        match self {
            // Near-data PUs see the aggregate internal vault bandwidth.
            MemoryTechnology::Hmc(h) => h.internal_bandwidth(),
            MemoryTechnology::Ddr(d) => d.bandwidth,
        }
    }

    /// Random-access latency, seconds.
    pub fn access_latency(&self) -> f64 {
        match self {
            MemoryTechnology::Hmc(h) => h.access_latency,
            MemoryTechnology::Ddr(d) => d.access_latency,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hmc2_matches_paper_numbers() {
        let c = HmcConfig::hmc2();
        assert_eq!(c.vaults, 32);
        assert_eq!(c.internal_bandwidth(), 320.0e9);
        assert_eq!(c.external_bandwidth, 240.0e9);
    }

    #[test]
    fn vault_capacity_divides_module() {
        let c = HmcConfig::hmc2();
        assert_eq!(c.vault_capacity() * c.vaults as u64, c.capacity);
    }

    #[test]
    fn ddr_is_slower_than_hmc_internal() {
        let hmc = MemoryTechnology::Hmc(HmcConfig::hmc2());
        let ddr = MemoryTechnology::Ddr(DdrConfig::ddr4_quad_channel());
        // The paper attributes ~an order of magnitude to this ratio.
        let ratio = hmc.compute_visible_bandwidth() / ddr.compute_visible_bandwidth();
        assert!((12.0..13.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn hmc1_is_half_of_hmc2() {
        assert_eq!(
            HmcConfig::hmc1().internal_bandwidth() * 2.0,
            HmcConfig::hmc2().internal_bandwidth()
        );
    }
}
