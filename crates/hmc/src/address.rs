//! Physical-address to vault interleaving.
//!
//! HMC interleaves consecutive address blocks across vaults so sequential
//! streams engage every vault controller. SSAM instead *shards* the dataset:
//! each vault holds a contiguous slice of the database so its processing
//! units can scan locally without crossing the switch (Section III-B: "most
//! data accesses to memory are large contiguously allocated blocks").
//! Both mappings are provided; the device model uses sharding, the
//! standard-memory path uses interleaving.

use crate::config::HmcConfig;

/// Maps physical addresses to (vault, offset) pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AddressMap {
    /// Consecutive `block_bytes` blocks rotate across vaults (standard HMC).
    BlockInterleave {
        /// Interleaving granularity in bytes.
        block_bytes: u64,
        /// Number of vaults.
        vaults: u32,
    },
    /// Address space is divided into one contiguous extent per vault
    /// (SSAM's dataset sharding).
    Sharded {
        /// Bytes per vault extent.
        vault_capacity: u64,
        /// Number of vaults.
        vaults: u32,
    },
}

impl AddressMap {
    /// Standard interleaving for a module configuration.
    pub fn interleaved(cfg: &HmcConfig) -> Self {
        AddressMap::BlockInterleave {
            block_bytes: cfg.block_bytes,
            vaults: cfg.vaults as u32,
        }
    }

    /// SSAM sharding for a module configuration.
    pub fn sharded(cfg: &HmcConfig) -> Self {
        AddressMap::Sharded {
            vault_capacity: cfg.vault_capacity(),
            vaults: cfg.vaults as u32,
        }
    }

    /// Vault owning byte address `addr`.
    pub fn vault_of(&self, addr: u64) -> u32 {
        match *self {
            AddressMap::BlockInterleave {
                block_bytes,
                vaults,
            } => ((addr / block_bytes) % vaults as u64) as u32,
            AddressMap::Sharded {
                vault_capacity,
                vaults,
            } => ((addr / vault_capacity).min(vaults as u64 - 1)) as u32,
        }
    }

    /// Offset of `addr` within its vault's local address space.
    pub fn offset_in_vault(&self, addr: u64) -> u64 {
        match *self {
            AddressMap::BlockInterleave {
                block_bytes,
                vaults,
            } => {
                let block = addr / block_bytes;
                (block / vaults as u64) * block_bytes + addr % block_bytes
            }
            AddressMap::Sharded { vault_capacity, .. } => addr % vault_capacity,
        }
    }

    /// Splits the byte range `[addr, addr+len)` into per-vault extents,
    /// returned as `(vault, bytes)` pairs in access order.
    pub fn split_range(&self, addr: u64, len: u64) -> Vec<(u32, u64)> {
        let mut out: Vec<(u32, u64)> = Vec::new();
        let mut cur = addr;
        let end = addr + len;
        while cur < end {
            let vault = self.vault_of(cur);
            // Bytes until this vault's extent ends at the current address.
            let contiguous = match *self {
                AddressMap::BlockInterleave { block_bytes, .. } => {
                    block_bytes - (cur % block_bytes)
                }
                AddressMap::Sharded { vault_capacity, .. } => {
                    vault_capacity - (cur % vault_capacity)
                }
            };
            let take = contiguous.min(end - cur);
            match out.last_mut() {
                Some((v, bytes)) if *v == vault => *bytes += take,
                _ => out.push((vault, take)),
            }
            cur += take;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> HmcConfig {
        HmcConfig::hmc2()
    }

    #[test]
    fn interleave_rotates_blocks_across_vaults() {
        let m = AddressMap::interleaved(&cfg());
        assert_eq!(m.vault_of(0), 0);
        assert_eq!(m.vault_of(256), 1);
        assert_eq!(m.vault_of(256 * 31), 31);
        assert_eq!(m.vault_of(256 * 32), 0);
    }

    #[test]
    fn interleave_offsets_are_compact_per_vault() {
        let m = AddressMap::interleaved(&cfg());
        // Second block owned by vault 0 starts at local offset 256.
        assert_eq!(m.offset_in_vault(256 * 32), 256);
        assert_eq!(m.offset_in_vault(10), 10);
    }

    #[test]
    fn sharded_assigns_contiguous_extents() {
        let m = AddressMap::sharded(&cfg());
        let vc = cfg().vault_capacity();
        assert_eq!(m.vault_of(0), 0);
        assert_eq!(m.vault_of(vc - 1), 0);
        assert_eq!(m.vault_of(vc), 1);
        assert_eq!(m.offset_in_vault(vc + 5), 5);
    }

    #[test]
    fn sharded_clamps_overflow_to_last_vault() {
        let m = AddressMap::sharded(&cfg());
        assert_eq!(m.vault_of(u64::MAX / 2), 31);
    }

    #[test]
    fn split_range_covers_exactly_len_bytes() {
        let m = AddressMap::interleaved(&cfg());
        let parts = m.split_range(100, 10_000);
        let total: u64 = parts.iter().map(|(_, b)| b).sum();
        assert_eq!(total, 10_000);
    }

    #[test]
    fn split_range_interleaved_spreads_across_vaults() {
        let m = AddressMap::interleaved(&cfg());
        let parts = m.split_range(0, 256 * 64); // 64 blocks over 32 vaults
        let mut per_vault = [0u64; 32];
        for (v, b) in parts {
            per_vault[v as usize] += b;
        }
        assert!(per_vault.iter().all(|&b| b == 512));
    }

    #[test]
    fn split_range_sharded_stays_in_one_vault() {
        let m = AddressMap::sharded(&cfg());
        let parts = m.split_range(0, 1 << 20);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0], (0, 1 << 20));
    }

    #[test]
    fn split_range_merges_adjacent_same_vault_extents() {
        let m = AddressMap::sharded(&cfg());
        let vc = cfg().vault_capacity();
        let parts = m.split_range(vc - 100, 200);
        assert_eq!(parts, vec![(0, 100), (1, 100)]);
    }

    #[test]
    fn empty_range_is_empty() {
        let m = AddressMap::interleaved(&cfg());
        assert!(m.split_range(123, 0).is_empty());
    }
}
