//! Transaction-level vault controller.
//!
//! Each vault controller serves its vertical DRAM partition at a fixed
//! sustained bandwidth (10 GB/s in HMC 2.0). The model is a busy-time
//! queue: a transaction issued at time `t` starts at `max(t, busy_until)`,
//! pays the DRAM access latency once, then occupies the controller for
//! `bytes / bandwidth` seconds. Streaming scans — SSAM's dominant access
//! pattern — therefore approach the full controller bandwidth, matching the
//! paper's "near optimal memory bandwidth" expectation for bucket scans.

/// Accumulated traffic counters for one vault.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct VaultStats {
    /// Bytes read from DRAM.
    pub bytes_read: u64,
    /// Bytes written to DRAM.
    pub bytes_written: u64,
    /// Transactions served.
    pub transactions: u64,
    /// Total seconds the controller was busy transferring data.
    pub busy_time: f64,
}

/// One vault controller with busy-until timing.
#[derive(Debug, Clone)]
pub struct VaultController {
    bandwidth: f64,
    access_latency: f64,
    busy_until: f64,
    stats: VaultStats,
    /// Multiplicative service-time slowdown (1.0 = nominal). Models a
    /// straggling vault: thermal throttling, refresh storms, weak cells.
    slowdown: f64,
    /// A failed vault serves nothing until revived.
    failed: bool,
}

impl VaultController {
    /// Controller with sustained `bandwidth` (bytes/s) and per-transaction
    /// `access_latency` (s).
    ///
    /// # Panics
    /// Panics if `bandwidth` is not positive.
    pub fn new(bandwidth: f64, access_latency: f64) -> Self {
        assert!(bandwidth > 0.0, "bandwidth must be positive");
        Self {
            bandwidth,
            access_latency,
            busy_until: 0.0,
            stats: VaultStats::default(),
            slowdown: 1.0,
            failed: false,
        }
    }

    /// Sets a multiplicative service-time slowdown (straggler injection).
    ///
    /// # Panics
    /// Panics if `slowdown < 1.0`.
    pub fn set_slowdown(&mut self, slowdown: f64) {
        assert!(slowdown >= 1.0, "slowdown must be >= 1.0");
        self.slowdown = slowdown;
    }

    /// Current service-time slowdown.
    pub fn slowdown(&self) -> f64 {
        self.slowdown
    }

    /// Marks the vault failed: transactions never complete until revived.
    pub fn fail(&mut self) {
        self.failed = true;
    }

    /// Brings a failed vault back at nominal speed.
    pub fn revive(&mut self) {
        self.failed = false;
        self.slowdown = 1.0;
    }

    /// Whether the vault is currently failed.
    pub fn is_failed(&self) -> bool {
        self.failed
    }

    /// Issues a read of `bytes` at time `now`; returns completion time.
    pub fn read(&mut self, now: f64, bytes: u64) -> f64 {
        let done = self.serve(now, bytes);
        self.stats.bytes_read += bytes;
        done
    }

    /// Issues a write of `bytes` at time `now`; returns completion time.
    pub fn write(&mut self, now: f64, bytes: u64) -> f64 {
        let done = self.serve(now, bytes);
        self.stats.bytes_written += bytes;
        done
    }

    fn serve(&mut self, now: f64, bytes: u64) -> f64 {
        if self.failed {
            return f64::INFINITY;
        }
        let start = now.max(self.busy_until);
        let mut cost = self.access_latency + bytes as f64 / self.bandwidth;
        // Gated so the nominal path stays bit-identical to the
        // pre-fault-injection model.
        if self.slowdown != 1.0 {
            cost *= self.slowdown;
        }
        let done = start + cost;
        self.busy_until = done;
        self.stats.transactions += 1;
        self.stats.busy_time += cost;
        done
    }

    /// Time at which the controller becomes free.
    pub fn busy_until(&self) -> f64 {
        self.busy_until
    }

    /// Traffic counters.
    pub fn stats(&self) -> VaultStats {
        self.stats
    }

    /// Sustained bandwidth in bytes/second.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Seconds needed to stream `bytes` sequentially through this
    /// controller (one access latency, then line-rate transfer). A failed
    /// vault never finishes; a straggler is proportionally slower.
    pub fn stream_time(&self, bytes: u64) -> f64 {
        if self.failed {
            return f64::INFINITY;
        }
        let t = self.access_latency + bytes as f64 / self.bandwidth;
        if self.slowdown != 1.0 {
            t * self.slowdown
        } else {
            t
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctrl() -> VaultController {
        VaultController::new(10.0e9, 50e-9)
    }

    #[test]
    fn single_read_timing() {
        let mut c = ctrl();
        let done = c.read(0.0, 10_000_000_000); // 10 GB at 10 GB/s = 1 s
        assert!((done - (1.0 + 50e-9)).abs() < 1e-12);
    }

    #[test]
    fn back_to_back_requests_queue() {
        let mut c = ctrl();
        let d1 = c.read(0.0, 1000);
        let d2 = c.read(0.0, 1000);
        assert!(d2 > d1);
        assert!((d2 - 2.0 * d1).abs() < 1e-15);
    }

    #[test]
    fn idle_gap_is_not_charged() {
        let mut c = ctrl();
        let d1 = c.read(0.0, 1000);
        let d2 = c.read(d1 + 1.0, 1000);
        // Second request starts fresh after the idle second.
        assert!((d2 - (d1 + 1.0 + d1)).abs() < 1e-12);
    }

    #[test]
    fn stats_accumulate() {
        let mut c = ctrl();
        c.read(0.0, 100);
        c.write(0.0, 50);
        let s = c.stats();
        assert_eq!(s.bytes_read, 100);
        assert_eq!(s.bytes_written, 50);
        assert_eq!(s.transactions, 2);
        assert!(s.busy_time > 0.0);
    }

    #[test]
    fn stream_time_is_latency_plus_linerate() {
        let c = ctrl();
        let t = c.stream_time(1_000_000);
        assert!((t - (50e-9 + 1e-4)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = VaultController::new(0.0, 0.0);
    }

    #[test]
    fn straggler_scales_service_time() {
        let mut c = ctrl();
        let nominal = c.stream_time(1_000_000);
        c.set_slowdown(4.0);
        assert!((c.stream_time(1_000_000) - 4.0 * nominal).abs() < 1e-15);
        let done = c.read(0.0, 1_000_000);
        assert!((done - 4.0 * nominal).abs() < 1e-15);
    }

    #[test]
    fn failed_vault_never_completes_and_revives_clean() {
        let mut c = ctrl();
        c.set_slowdown(2.0);
        c.fail();
        assert!(c.is_failed());
        assert!(c.stream_time(100).is_infinite());
        assert!(c.read(0.0, 100).is_infinite());
        let before = c.stats();
        c.revive();
        assert!(!c.is_failed());
        assert_eq!(c.slowdown(), 1.0);
        // The failed read left no trace in the counters.
        assert_eq!(c.stats(), before);
        assert!(c.stream_time(100).is_finite());
    }

    #[test]
    #[should_panic(expected = "slowdown must be >= 1.0")]
    fn sub_unity_slowdown_rejected() {
        ctrl().set_slowdown(0.5);
    }
}
