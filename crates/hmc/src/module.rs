//! The assembled HMC module: vaults behind a switch plus external links.
//!
//! Provides the two timing queries the SSAM device model needs:
//!
//! 1. **Internal streaming** — how long vault-local processing units take to
//!    scan a sharded dataset (each vault streams its own shard in
//!    parallel; the module finishes when the largest shard does).
//! 2. **External transfer** — how long host↔module traffic takes over the
//!    links, including FLIT packetization overhead.
//!
//! It also supports interleaved transaction traffic for the
//! standard-memory ("SSAM logic bypassed") operating mode.

use crate::address::AddressMap;
use crate::config::HmcConfig;
use crate::packet::bulk_wire_bytes;
use crate::vault::{VaultController, VaultStats};

/// One HMC module with live vault controllers.
#[derive(Debug, Clone)]
pub struct HmcModule {
    config: HmcConfig,
    vaults: Vec<VaultController>,
    map: AddressMap,
}

impl HmcModule {
    /// Builds a module in SSAM sharded mode.
    pub fn new_sharded(config: HmcConfig) -> Self {
        let map = AddressMap::sharded(&config);
        Self::with_map(config, map)
    }

    /// Builds a module in standard interleaved mode.
    pub fn new_interleaved(config: HmcConfig) -> Self {
        let map = AddressMap::interleaved(&config);
        Self::with_map(config, map)
    }

    fn with_map(config: HmcConfig, map: AddressMap) -> Self {
        let vaults = (0..config.vaults)
            .map(|_| VaultController::new(config.vault_bandwidth, config.access_latency))
            .collect();
        Self {
            config,
            vaults,
            map,
        }
    }

    /// Module configuration.
    pub fn config(&self) -> &HmcConfig {
        &self.config
    }

    /// The active address map.
    pub fn address_map(&self) -> AddressMap {
        self.map
    }

    /// Issues a read of `[addr, addr+len)` at time `now`, splitting across
    /// vaults per the address map. Returns completion time (all extents
    /// done).
    pub fn read(&mut self, now: f64, addr: u64, len: u64) -> f64 {
        let mut done = now;
        for (vault, bytes) in self.map.split_range(addr, len) {
            let d = self.vaults[vault as usize].read(now, bytes);
            done = done.max(d);
        }
        done
    }

    /// Issues a write of `[addr, addr+len)` at time `now`. Returns
    /// completion time.
    pub fn write(&mut self, now: f64, addr: u64, len: u64) -> f64 {
        let mut done = now;
        for (vault, bytes) in self.map.split_range(addr, len) {
            let d = self.vaults[vault as usize].write(now, bytes);
            done = done.max(d);
        }
        done
    }

    /// Seconds for every vault to stream its shard of a dataset whose
    /// shards are `shard_bytes[v]` — the SSAM scan pattern. The module
    /// finishes when the slowest (largest) shard does.
    ///
    /// # Panics
    /// Panics if more shards than vaults are given.
    pub fn parallel_stream_time(&self, shard_bytes: &[u64]) -> f64 {
        assert!(
            shard_bytes.len() <= self.vaults.len(),
            "more shards ({}) than vaults ({})",
            shard_bytes.len(),
            self.vaults.len()
        );
        shard_bytes
            .iter()
            .zip(&self.vaults)
            .map(|(&b, v)| v.stream_time(b))
            .fold(0.0, f64::max)
    }

    /// Seconds for vault-local compute to stream `total_bytes` divided
    /// evenly across all vaults (the balanced-shard fast path).
    pub fn balanced_stream_time(&self, total_bytes: u64) -> f64 {
        let per = total_bytes.div_ceil(self.config.vaults as u64);
        self.config.access_latency + per as f64 / self.config.vault_bandwidth
    }

    /// Seconds to move `payload_bytes` across the external links,
    /// including FLIT packetization overhead.
    pub fn external_transfer_time(&self, payload_bytes: u64) -> f64 {
        bulk_wire_bytes(payload_bytes) as f64 / self.config.external_bandwidth
    }

    /// Extra link time charged when CRC forces `retries` retransmissions of
    /// a `payload_bytes` transfer: each retry re-sends the wire bytes and
    /// pays a fixed `penalty` (timeout + reissue overhead).
    pub fn external_retry_time(&self, payload_bytes: u64, retries: u32, penalty: f64) -> f64 {
        f64::from(retries) * (self.external_transfer_time(payload_bytes) + penalty)
    }

    /// Mutable access to one vault controller (fault injection hooks).
    pub fn vault_mut(&mut self, vault: usize) -> &mut VaultController {
        &mut self.vaults[vault]
    }

    /// Marks a vault failed; its shard becomes unreachable.
    pub fn fail_vault(&mut self, vault: usize) {
        self.vaults[vault].fail();
    }

    /// Revives a failed vault at nominal speed.
    pub fn revive_vault(&mut self, vault: usize) {
        self.vaults[vault].revive();
    }

    /// Number of vaults currently serving requests.
    pub fn healthy_vaults(&self) -> usize {
        self.vaults.iter().filter(|v| !v.is_failed()).count()
    }

    /// Like [`parallel_stream_time`](Self::parallel_stream_time) but skips
    /// failed vaults instead of returning infinity. Returns the completion
    /// time over healthy vaults and the bytes actually covered — the
    /// degraded-mode scan the fault-tolerant device model uses.
    pub fn degraded_stream_time(&self, shard_bytes: &[u64]) -> (f64, u64) {
        assert!(
            shard_bytes.len() <= self.vaults.len(),
            "more shards ({}) than vaults ({})",
            shard_bytes.len(),
            self.vaults.len()
        );
        let mut t = 0.0f64;
        let mut covered = 0u64;
        for (&b, v) in shard_bytes.iter().zip(&self.vaults) {
            if v.is_failed() {
                continue;
            }
            t = t.max(v.stream_time(b));
            covered += b;
        }
        (t, covered)
    }

    /// Aggregated statistics over all vaults.
    pub fn total_stats(&self) -> VaultStats {
        let mut agg = VaultStats::default();
        for v in &self.vaults {
            let s = v.stats();
            agg.bytes_read += s.bytes_read;
            agg.bytes_written += s.bytes_written;
            agg.transactions += s.transactions;
            agg.busy_time += s.busy_time;
        }
        agg
    }

    /// Per-vault statistics.
    pub fn vault_stats(&self) -> Vec<VaultStats> {
        self.vaults.iter().map(|v| v.stats()).collect()
    }

    /// Achieved internal bandwidth over a window of `elapsed` seconds.
    pub fn achieved_bandwidth(&self, elapsed: f64) -> f64 {
        if elapsed <= 0.0 {
            return 0.0;
        }
        let s = self.total_stats();
        (s.bytes_read + s.bytes_written) as f64 / elapsed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_stream_hits_aggregate_bandwidth() {
        let m = HmcModule::new_sharded(HmcConfig::hmc2());
        // 320 GB over 32 vaults at 10 GB/s each: 1 second (+latency).
        let t = m.balanced_stream_time(320_000_000_000);
        assert!((t - 1.0).abs() < 1e-6, "t = {t}");
    }

    #[test]
    fn ddr_equivalent_is_an_order_of_magnitude_slower() {
        // The paper's headline bandwidth claim: 320 GB/s vs 25 GB/s.
        let m = HmcModule::new_sharded(HmcConfig::hmc2());
        let hmc_t = m.balanced_stream_time(25_000_000_000);
        let ddr_t = 1.0; // 25 GB at 25 GB/s
        assert!(ddr_t / hmc_t > 10.0);
    }

    #[test]
    fn parallel_stream_bound_by_largest_shard() {
        let m = HmcModule::new_sharded(HmcConfig::hmc2());
        let mut shards = vec![1_000u64; 32];
        shards[7] = 10_000_000_000; // 1 s at 10 GB/s
        let t = m.parallel_stream_time(&shards);
        assert!((t - 1.0).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "more shards")]
    fn too_many_shards_rejected() {
        let m = HmcModule::new_sharded(HmcConfig::hmc2());
        let shards = vec![1u64; 33];
        let _ = m.parallel_stream_time(&shards);
    }

    #[test]
    fn interleaved_read_uses_many_vaults() {
        let mut m = HmcModule::new_interleaved(HmcConfig::hmc2());
        m.read(0.0, 0, 256 * 32);
        let active = m.vault_stats().iter().filter(|s| s.bytes_read > 0).count();
        assert_eq!(active, 32);
    }

    #[test]
    fn sharded_read_stays_local() {
        let mut m = HmcModule::new_sharded(HmcConfig::hmc2());
        m.read(0.0, 0, 1 << 20);
        let active = m.vault_stats().iter().filter(|s| s.bytes_read > 0).count();
        assert_eq!(active, 1);
    }

    #[test]
    fn interleaved_read_is_faster_than_sharded_for_one_stream() {
        let cfg = HmcConfig::hmc2();
        let mut inter = HmcModule::new_interleaved(cfg);
        let mut shard = HmcModule::new_sharded(cfg);
        let len = 64 << 20;
        let t_inter = inter.read(0.0, 0, len);
        let t_shard = shard.read(0.0, 0, len);
        assert!(
            t_inter < t_shard,
            "interleaving should parallelize one stream"
        );
    }

    #[test]
    fn external_transfer_includes_packet_overhead() {
        let m = HmcModule::new_sharded(HmcConfig::hmc2());
        // 128 B payload costs 160 B wire.
        let t = m.external_transfer_time(128);
        assert!((t - 160.0 / 240.0e9).abs() < 1e-18);
    }

    #[test]
    fn failed_vault_blocks_parallel_stream_but_degraded_mode_skips_it() {
        let mut m = HmcModule::new_sharded(HmcConfig::hmc2());
        let shards = vec![1_000_000u64; 32];
        let nominal = m.parallel_stream_time(&shards);
        m.fail_vault(5);
        assert_eq!(m.healthy_vaults(), 31);
        assert!(m.parallel_stream_time(&shards).is_infinite());
        let (t, covered) = m.degraded_stream_time(&shards);
        assert!((t - nominal).abs() < 1e-15);
        assert_eq!(covered, 31_000_000);
        m.revive_vault(5);
        let (_, covered) = m.degraded_stream_time(&shards);
        assert_eq!(covered, 32_000_000);
    }

    #[test]
    fn straggler_vault_stretches_the_scan() {
        let mut m = HmcModule::new_sharded(HmcConfig::hmc2());
        let shards = vec![1_000_000u64; 32];
        let nominal = m.parallel_stream_time(&shards);
        m.vault_mut(3).set_slowdown(4.0);
        let slowed = m.parallel_stream_time(&shards);
        assert!(
            (slowed - 4.0 * nominal).abs() < 1e-12,
            "{slowed} vs {nominal}"
        );
    }

    #[test]
    fn retry_time_scales_with_retries() {
        let m = HmcModule::new_sharded(HmcConfig::hmc2());
        let one = m.external_retry_time(1024, 1, 1e-6);
        let three = m.external_retry_time(1024, 3, 1e-6);
        assert_eq!(m.external_retry_time(1024, 0, 1e-6), 0.0);
        assert!(one > 1e-6);
        assert!((three - 3.0 * one).abs() < 1e-18);
    }

    #[test]
    fn stats_aggregate_reads_and_writes() {
        let mut m = HmcModule::new_sharded(HmcConfig::hmc2());
        m.read(0.0, 0, 1000);
        m.write(0.0, 0, 500);
        let s = m.total_stats();
        assert_eq!(s.bytes_read, 1000);
        assert_eq!(s.bytes_written, 500);
        assert!(m.achieved_bandwidth(1.0) > 0.0);
        assert_eq!(m.achieved_bandwidth(0.0), 0.0);
    }
}
