//! # ssam-store — mutable dataset subsystem for the SSAM device
//!
//! The paper's accelerator serves an *immutable* dataset: vectors are
//! staged into vault DRAM once and queried forever. Every production
//! similarity-search deployment instead takes online writes — new
//! embeddings arrive, old ones are deleted — while continuing to serve.
//! This crate layers an LSM-lite storage lifecycle onto the existing
//! device to close that gap:
//!
//! * **Write path** — every mutation appends a CRC-framed record to a
//!   write-ahead log ([`wal`]) before it is applied, then lands in an
//!   in-memory *memtable*. Memtable candidates are scanned host-side
//!   through [`ssam_core::device::raw_distance`] — the exact Q16.16
//!   arithmetic the vault kernels execute — so host-resident vectors
//!   rank bit-identically to staged ones.
//! * **Seal** — when the memtable reaches capacity (or on demand) it is
//!   drained, in id order, into an immutable *segment*: a fresh
//!   [`SsamDevice`] staged across vault shards through the existing
//!   interleaving. The seal *decision* is itself WAL-logged, so replay
//!   reproduces segment boundaries without re-running policy.
//! * **Deletes / updates** — tombstones and newer versions supersede
//!   older resident copies. Superseded segment entries are counted as
//!   `stale`; queries over-fetch `k + stale` from each segment so the
//!   post-suppression top-k is still exact.
//! * **Compaction** — when a level holds more than `fanout` segments,
//!   [`Store::compact_step`] merges it into the next level, dropping
//!   dead entries and purging fully-superseded tombstones. Compaction
//!   decisions are WAL-logged too ([`wal::WalRecord::Compact`]).
//! * **Recovery** — [`Store::open`] replays a WAL byte image through
//!   the *same* apply functions live writes use, truncating any torn
//!   tail at the first bad CRC. Recovery is bit-identical: the
//!   `store_recovery` proptests assert [`Store::snapshot`] equality
//!   against a fresh store fed the surviving prefix of operations, with
//!   torn-tail cut points drawn from [`ssam_faults::CrashSpec`].
//!
//! ## Consistency model
//!
//! The store is a single-writer sequentially-consistent map from `uid`
//! to the latest-sequence vector. A global index records, per uid, the
//! winning sequence number and its location (memtable, a segment, or a
//! tombstone); a resident copy is *visible* iff its `(uid, seq)` pair
//! matches the index. Queries merge memtable and per-segment candidates
//! through the shared deterministic `(distance, id)` order
//! ([`ssam_knn::topk::TopK`]), suppressing invisible candidates — so a
//! reader mid-compaction sees exactly the live set, never a duplicate
//! and never a deleted vector. The `store_equivalence` proptests pin
//! this down: at every point of a random insert/delete/seal/compact
//! interleaving, [`Store::query`] is bit-identical to a fresh immutable
//! device built from [`Store::live_set`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod shard;
pub mod wal;

pub use shard::{ShardRecovery, ShardWriteAck, ShardedStore, ShardedStoreConfig, WriteFaultLedger};
pub use wal::{decode_stream, Wal, WalRecord, WalSync};

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::Instant;

use ssam_core::device::{raw_distance, DeviceMetric, DeviceQuery, SsamConfig, SsamDevice};
use ssam_core::sim::pu::SimError;
use ssam_core::telemetry::{SegmentAccount, StoreAccount, Telemetry};
use ssam_faults::{FaultPlan, FaultRecord};
use ssam_knn::fixed::Fix32;
use ssam_knn::topk::TopK;
use ssam_knn::{Neighbor, VectorStore};

/// Configuration for a [`Store`].
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Device configuration every sealed segment is instantiated with.
    pub device: SsamConfig,
    /// Dimensionality of stored vectors.
    pub dims: usize,
    /// Memtable entries that trigger an automatic seal on insert.
    pub memtable_capacity: usize,
    /// Segments a level may hold before it owes a compaction.
    pub fanout: usize,
    /// WAL durability policy: when appended records are flushed to
    /// stable storage. Default [`WalSync::EveryRecord`] — acknowledged
    /// writes survive any crash minus at most one torn record.
    pub sync: WalSync,
}

impl StoreConfig {
    /// A store for `dims`-dimensional vectors with default policy
    /// (device defaults, 256-entry memtable, fanout 4).
    pub fn new(dims: usize) -> Self {
        StoreConfig {
            device: SsamConfig::default(),
            dims,
            memtable_capacity: 256,
            fanout: 4,
            sync: WalSync::EveryRecord,
        }
    }
}

/// Errors the store surfaces to callers.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// An inserted or queried vector does not match the store's dims.
    DimsMismatch {
        /// Configured dimensionality.
        expected: usize,
        /// Offending vector's length.
        got: usize,
    },
    /// Queries support the linear float kernels only (Euclidean /
    /// Manhattan); cosine and binary Hamming payloads are not mutable.
    UnsupportedMetric,
    /// `k == 0` is a degenerate request.
    ZeroK,
    /// A segment device failed to execute the query.
    Device(SimError),
    /// Every replica module of the target shard is down; the write has
    /// no WAL to land on (sharded store only).
    ShardUnavailable {
        /// The shard whose replica set is exhausted.
        shard: usize,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::DimsMismatch { expected, got } => {
                write!(f, "vector has {got} dims, store holds {expected}")
            }
            StoreError::UnsupportedMetric => {
                write!(f, "mutable store serves Euclidean/Manhattan queries only")
            }
            StoreError::ZeroK => write!(f, "k must be positive"),
            StoreError::Device(e) => write!(f, "segment device error: {e}"),
            StoreError::ShardUnavailable { shard } => {
                write!(f, "shard {shard}: every replica is down, write refused")
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<SimError> for StoreError {
    fn from(e: SimError) -> Self {
        StoreError::Device(e)
    }
}

/// Acknowledgment for one accepted write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteAck {
    /// Sequence number the write was assigned.
    pub seq: u64,
    /// True when the write tripped an automatic memtable seal.
    pub sealed: bool,
    /// WAL length after the write (what a durable deployment would have
    /// fsynced).
    pub wal_len: u64,
}

/// What [`Store::open`] recovered from a WAL image — the typed report
/// callers (and `ServerStats` / the `serve_load` JSON) surface instead
/// of a silent truncation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Recovery {
    /// Records replayed from the valid prefix.
    pub replayed: usize,
    /// Torn-tail bytes truncated away.
    pub truncated: u64,
    /// Segments rebuilt while replaying logged seal/compact decisions.
    pub segments_rebuilt: usize,
}

impl Recovery {
    /// Folds another module's recovery into this aggregate.
    pub fn accumulate(&mut self, other: &Recovery) {
        self.replayed += other.replayed;
        self.truncated += other.truncated;
        self.segments_rebuilt += other.segments_rebuilt;
    }
}

/// Result of one store query.
#[derive(Debug, Clone)]
pub struct StoreQueryResult {
    /// Exact top-k over the visible (live) set, best first.
    pub neighbors: Vec<Neighbor>,
    /// Slowest segment's simulated device seconds (segments scan in
    /// parallel across the device, like vaults within one).
    pub device_seconds: f64,
    /// Total device energy across all segments, millijoules.
    pub energy_mj: f64,
    /// Segments that executed a device query.
    pub segments_scanned: usize,
    /// Memtable candidates scanned host-side.
    pub memtable_scanned: usize,
    /// Candidates returned by segments but suppressed as superseded or
    /// tombstoned (the over-fetch margin doing its job).
    pub suppressed: usize,
    /// Aggregate fault accounting across all segment queries, with the
    /// memtable scan counted as covered host work.
    pub faults: FaultRecord,
}

impl StoreQueryResult {
    /// Fraction of the visible candidate set actually scanned.
    pub fn coverage(&self) -> f64 {
        self.faults.coverage()
    }
}

/// Cumulative lifecycle counters, exposed for benches and smokes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoreStats {
    /// WAL records appended.
    pub wal_records: u64,
    /// WAL bytes appended.
    pub wal_bytes: u64,
    /// WAL bytes flushed to stable storage per the [`WalSync`] policy
    /// (equals `wal_bytes` under [`WalSync::EveryRecord`]).
    pub wal_durable_bytes: u64,
    /// Caller payload bytes accepted.
    pub payload_bytes: u64,
    /// Bytes staged into segment devices across seals + compactions.
    pub staged_bytes: u64,
    /// Memtable seals performed.
    pub seals: u64,
    /// Compactions performed.
    pub compactions: u64,
    /// Host wall-clock seconds spent sealing (stall while the write
    /// path is blocked).
    pub seal_seconds: f64,
    /// Host wall-clock seconds spent compacting.
    pub compact_seconds: f64,
    /// Longest single compaction, seconds.
    pub max_compact_seconds: f64,
    /// Segments currently resident.
    pub segments: usize,
    /// Levels currently holding at least one segment.
    pub levels: usize,
}

/// One stored vector: the caller's floats plus the padded Q16.16 words
/// the memtable scan (and, post-seal, the vault shards) rank by.
#[derive(Debug, Clone, PartialEq)]
struct StoredVec {
    floats: Vec<f32>,
    words: Vec<i32>,
}

/// Where a uid's winning version lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loc {
    Memtable,
    Segment(u64),
    Dead,
}

/// Index entry: the latest sequence number for a uid and its location.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct IndexEntry {
    seq: u64,
    loc: Loc,
}

/// One resident row of a segment.
#[derive(Debug, Clone)]
struct SegEntry {
    uid: u32,
    seq: u64,
    data: Arc<StoredVec>,
}

/// An immutable sealed segment: entries in uid order (so device-local
/// ids are uid-ordered, preserving tie-break order), staged onto a
/// dedicated device instance.
#[derive(Debug, Clone)]
struct Segment {
    id: u64,
    entries: Vec<SegEntry>,
    device: SsamDevice,
    /// Resident entries since superseded by a newer version or
    /// tombstone — the query over-fetch margin.
    stale: usize,
}

/// The mutable vector store. Single-writer: all mutation and query
/// methods take `&mut self` (queries advance segment devices' fault
/// sequence counters); share across threads behind a `Mutex`.
#[derive(Debug, Clone)]
pub struct Store {
    config: StoreConfig,
    vec_words: usize,
    wal: Wal,
    next_seq: u64,
    memtable: BTreeMap<u32, Arc<StoredVec>>,
    index: BTreeMap<u32, IndexEntry>,
    levels: Vec<Vec<Segment>>,
    next_segment_id: u64,
    telemetry: Option<Telemetry>,
    faults: Option<Arc<FaultPlan>>,
    /// Offset added to every segment's fault scope; a sharded store
    /// gives each replica module a disjoint base so their segments draw
    /// decorrelated fault streams from a shared plan.
    fault_scope_base: u64,
    /// The report from [`Store::open`], `None` for a created store.
    recovery: Option<Recovery>,
    payload_bytes: u64,
    staged_bytes: u64,
    seals: u64,
    compactions: u64,
    seal_seconds: f64,
    compact_seconds: f64,
    max_compact_seconds: f64,
}

impl Store {
    /// Creates an empty store.
    ///
    /// # Panics
    /// Panics if `dims`, `memtable_capacity`, or `fanout` is zero.
    pub fn create(config: StoreConfig) -> Self {
        assert!(config.dims > 0, "dims must be positive");
        assert!(
            config.memtable_capacity > 0,
            "memtable capacity must be positive"
        );
        assert!(config.fanout > 0, "fanout must be positive");
        let vl = config.device.vector_length;
        let vec_words = config.dims.div_ceil(vl) * vl;
        Store {
            config,
            vec_words,
            wal: Wal::new(),
            next_seq: 1,
            memtable: BTreeMap::new(),
            index: BTreeMap::new(),
            levels: Vec::new(),
            next_segment_id: 0,
            telemetry: None,
            faults: None,
            fault_scope_base: 0,
            recovery: None,
            payload_bytes: 0,
            staged_bytes: 0,
            seals: 0,
            compactions: 0,
            seal_seconds: 0.0,
            compact_seconds: 0.0,
            max_compact_seconds: 0.0,
        }
    }

    /// Recovers a store from a WAL byte image: truncates any torn tail
    /// at the first bad frame, then replays the valid prefix through
    /// the same apply path live writes use. The result is bit-identical
    /// to the store state at the moment the last surviving record was
    /// appended.
    ///
    /// # Errors
    /// [`StoreError::DimsMismatch`] if a replayed insert does not match
    /// `config.dims` (the image belongs to a different store).
    pub fn open(config: StoreConfig, wal_bytes: &[u8]) -> Result<(Self, Recovery), StoreError> {
        let mut store = Store::create(config);
        let (wal, records) = Wal::from_bytes(wal_bytes);
        let truncated = wal_bytes.len() as u64 - wal.len();
        let replayed = records.len();
        let mut segments_rebuilt = 0usize;
        store.wal = wal;
        for r in records {
            let seq = r.seq();
            match r {
                WalRecord::Insert { uid, seq, vector } => {
                    if vector.len() != store.config.dims {
                        return Err(StoreError::DimsMismatch {
                            expected: store.config.dims,
                            got: vector.len(),
                        });
                    }
                    store.payload_bytes += (vector.len() * 4) as u64;
                    store.apply_insert(uid, seq, vector);
                }
                WalRecord::Delete { uid, seq } => store.apply_delete(uid, seq),
                WalRecord::Seal { .. } => {
                    if store.apply_seal() {
                        segments_rebuilt += 1;
                    }
                }
                WalRecord::Compact { level, .. } => {
                    if store.apply_compact(level as usize) {
                        segments_rebuilt += 1;
                    }
                }
            }
            store.next_seq = store.next_seq.max(seq + 1);
        }
        let recovery = Recovery {
            replayed,
            truncated,
            segments_rebuilt,
        };
        store.recovery = Some(recovery);
        Ok((store, recovery))
    }

    /// The recovery report from [`Store::open`]; `None` for a store
    /// built by [`Store::create`].
    pub fn recovery(&self) -> Option<Recovery> {
        self.recovery
    }

    /// The store's configuration.
    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    /// Padded Q16.16 words per stored vector (shard row width).
    pub fn vec_words(&self) -> usize {
        self.vec_words
    }

    /// The next sequence number this store would assign.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// The full WAL image — what a durable deployment would have on
    /// disk. Hand it to [`Store::open`] to recover.
    pub fn wal_bytes(&self) -> &[u8] {
        self.wal.bytes()
    }

    /// The durable prefix of the WAL: bytes flushed per the configured
    /// [`WalSync`] policy. Under [`WalSync::EveryRecord`] this equals
    /// [`Store::wal_bytes`]; under [`WalSync::OnSeal`] data records past
    /// the last lifecycle flush are still in the volatile tail.
    pub fn durable_wal_bytes(&self) -> &[u8] {
        self.wal.durable_bytes()
    }

    /// The WAL image a crash at torn-tail point `cut` leaves behind:
    /// the synced watermark always survives, unsynced bytes only up to
    /// `cut`. Feed the result to [`Store::open`].
    pub fn crash_wal_image(&self, cut: u64) -> &[u8] {
        self.wal.crash_image(cut)
    }

    /// Visible (live) vectors across memtable and segments.
    pub fn live_len(&self) -> usize {
        self.index
            .values()
            .filter(|e| !matches!(e.loc, Loc::Dead))
            .count()
    }

    /// True when no vector is visible.
    pub fn is_empty(&self) -> bool {
        self.live_len() == 0
    }

    /// Attaches a telemetry sink: future segment devices report their
    /// query records to it, and [`Store::record_account`] posts store
    /// accounts. Existing segments are re-attached.
    pub fn attach_telemetry(&mut self, sink: &Telemetry) {
        self.telemetry = Some(sink.clone());
        for level in &mut self.levels {
            for seg in level {
                seg.device.attach_telemetry(sink);
            }
        }
    }

    /// Installs (or clears) a fault plan on every segment device,
    /// present and future. Each segment keys its fault stream by its
    /// store-wide segment id, so outcomes are stable across compaction
    /// of *other* segments.
    pub fn set_fault_plan(&mut self, plan: Option<Arc<FaultPlan>>) {
        self.faults = plan.clone();
        for level in &mut self.levels {
            for seg in level {
                seg.device.set_fault_plan(plan.clone());
                seg.device.set_fault_scope(self.fault_scope_base + seg.id);
            }
        }
    }

    /// Offsets every segment's fault scope by `base` (present segments
    /// are re-scoped; future ones inherit it). A sharded store assigns
    /// each replica module a disjoint base so replicas of the same data
    /// draw independent fault streams — a fault on one replica must not
    /// imply a fault on its twin.
    pub fn set_fault_scope_base(&mut self, base: u64) {
        self.fault_scope_base = base;
        for level in &mut self.levels {
            for seg in level {
                seg.device.set_fault_scope(base + seg.id);
            }
        }
    }

    /// Quantizes and zero-pads a vector exactly as
    /// [`SsamDevice::load_vectors`] stages it.
    fn quantize(&self, v: &[f32]) -> Vec<i32> {
        let mut words = Vec::with_capacity(self.vec_words);
        for &x in v {
            words.push(Fix32::from_f32(x).0);
        }
        words.resize(self.vec_words, 0);
        words
    }

    /// Finds a segment by store-wide id.
    fn segment(&self, sid: u64) -> &Segment {
        self.levels
            .iter()
            .flatten()
            .find(|s| s.id == sid)
            .expect("index points at a resident segment")
    }

    /// Counts one more superseded resident entry against segment `sid`.
    fn bump_stale(&mut self, sid: u64) {
        let seg = self
            .levels
            .iter_mut()
            .flatten()
            .find(|s| s.id == sid)
            .expect("index points at a resident segment");
        seg.stale += 1;
        debug_assert!(seg.stale <= seg.entries.len());
    }

    fn apply_insert(&mut self, uid: u32, seq: u64, vector: Vec<f32>) {
        // Latest sequence wins regardless of WAL position: a live write
        // stream is monotonic so this never triggers, but sharded
        // anti-entropy appends missed records *behind* newer ones — a
        // stale version must not clobber the winner.
        if self.index.get(&uid).is_some_and(|cur| cur.seq > seq) {
            return;
        }
        let words = self.quantize(&vector);
        let sv = Arc::new(StoredVec {
            floats: vector,
            words,
        });
        let old = self.index.insert(
            uid,
            IndexEntry {
                seq,
                loc: Loc::Memtable,
            },
        );
        if let Some(IndexEntry {
            loc: Loc::Segment(sid),
            ..
        }) = old
        {
            self.bump_stale(sid);
        }
        self.memtable.insert(uid, sv);
    }

    fn apply_delete(&mut self, uid: u32, seq: u64) {
        if self.index.get(&uid).is_some_and(|cur| cur.seq > seq) {
            return;
        }
        let old = self.index.insert(
            uid,
            IndexEntry {
                seq,
                loc: Loc::Dead,
            },
        );
        match old {
            Some(IndexEntry {
                loc: Loc::Memtable, ..
            }) => {
                self.memtable.remove(&uid);
            }
            Some(IndexEntry {
                loc: Loc::Segment(sid),
                ..
            }) => self.bump_stale(sid),
            _ => {}
        }
    }

    /// Drains the memtable into a new level-0 segment. Returns `false`
    /// (and does nothing) when the memtable is empty.
    fn apply_seal(&mut self) -> bool {
        if self.memtable.is_empty() {
            return false;
        }
        let started = Instant::now();
        let mut entries = Vec::with_capacity(self.memtable.len());
        let mut floats = VectorStore::new(self.config.dims);
        let memtable = std::mem::take(&mut self.memtable);
        for (uid, data) in memtable {
            let seq = self.index[&uid].seq;
            floats.push(&data.floats);
            entries.push(SegEntry { uid, seq, data });
        }
        let id = self.next_segment_id;
        self.next_segment_id += 1;
        let mut device = SsamDevice::new(self.config.device);
        device.load_vectors(&floats);
        if let Some(sink) = &self.telemetry {
            device.attach_telemetry(sink);
        }
        device.set_fault_plan(self.faults.clone());
        device.set_fault_scope(self.fault_scope_base + id);
        for e in &entries {
            self.index.insert(
                e.uid,
                IndexEntry {
                    seq: e.seq,
                    loc: Loc::Segment(id),
                },
            );
        }
        self.staged_bytes += (entries.len() * self.vec_words * 4) as u64;
        if self.levels.is_empty() {
            self.levels.push(Vec::new());
        }
        self.levels[0].push(Segment {
            id,
            entries,
            device,
            stale: 0,
        });
        self.seals += 1;
        self.seal_seconds += started.elapsed().as_secs_f64();
        true
    }

    /// Merges `level` and `level + 1` into one segment on `level + 1`,
    /// keeping only visible entries and purging tombstones that no
    /// longer shadow any resident copy. Returns true when the merge
    /// produced a segment (false when every drained entry was dead).
    fn apply_compact(&mut self, level: usize) -> bool {
        let started = Instant::now();
        while self.levels.len() <= level + 1 {
            self.levels.push(Vec::new());
        }
        let mut drained: Vec<Segment> = self.levels[level].drain(..).collect();
        drained.append(&mut self.levels[level + 1]);
        // Keep exactly the visible entries: (uid, seq) matches the
        // index and the index points at the segment holding the copy.
        // Visibility is unique per uid, so the merge has no conflicts;
        // BTreeMap keeps the merged segment in uid order.
        let mut merged: BTreeMap<u32, SegEntry> = BTreeMap::new();
        for seg in &drained {
            for e in &seg.entries {
                if self.index.get(&e.uid)
                    == Some(&IndexEntry {
                        seq: e.seq,
                        loc: Loc::Segment(seg.id),
                    })
                {
                    merged.insert(e.uid, e.clone());
                }
            }
        }
        drop(drained);
        let built = !merged.is_empty();
        if !merged.is_empty() {
            let mut entries = Vec::with_capacity(merged.len());
            let mut floats = VectorStore::new(self.config.dims);
            for (_, e) in merged {
                floats.push(&e.data.floats);
                entries.push(e);
            }
            let id = self.next_segment_id;
            self.next_segment_id += 1;
            let mut device = SsamDevice::new(self.config.device);
            device.load_vectors(&floats);
            if let Some(sink) = &self.telemetry {
                device.attach_telemetry(sink);
            }
            device.set_fault_plan(self.faults.clone());
            device.set_fault_scope(self.fault_scope_base + id);
            for e in &entries {
                self.index.insert(
                    e.uid,
                    IndexEntry {
                        seq: e.seq,
                        loc: Loc::Segment(id),
                    },
                );
            }
            self.staged_bytes += (entries.len() * self.vec_words * 4) as u64;
            self.levels[level + 1].push(Segment {
                id,
                entries,
                device,
                stale: 0,
            });
        }
        // Tombstones whose uid is resident in no segment no longer
        // shadow anything — purge them so the index does not grow
        // without bound under churn. (A memtable uid is never Dead.)
        let resident: BTreeSet<u32> = self
            .levels
            .iter()
            .flatten()
            .flat_map(|s| s.entries.iter().map(|e| e.uid))
            .collect();
        self.index
            .retain(|uid, e| !matches!(e.loc, Loc::Dead) || resident.contains(uid));
        while self.levels.last().is_some_and(Vec::is_empty) {
            self.levels.pop();
        }
        self.compactions += 1;
        let took = started.elapsed().as_secs_f64();
        self.compact_seconds += took;
        self.max_compact_seconds = self.max_compact_seconds.max(took);
        built
    }

    /// Inserts (or updates) `uid` with `vector`. The write is WAL-first:
    /// the record is appended before any state changes. Trips an
    /// automatic seal when the memtable reaches capacity.
    ///
    /// # Errors
    /// [`StoreError::DimsMismatch`] when the vector length is wrong.
    pub fn insert(&mut self, uid: u32, vector: &[f32]) -> Result<WriteAck, StoreError> {
        let seq = self.next_seq;
        self.insert_at_seq(uid, seq, vector)
    }

    /// Inserts `uid` at a caller-assigned sequence number — the replica
    /// write path: a sharded store hands every replica of a shard the
    /// *same* globally-assigned seq so their WALs stay mergeable by
    /// sequence. `next_seq` advances to `max(next_seq, seq + 1)`; a seq
    /// older than the uid's current winner is logged (durable) but does
    /// not regress visibility.
    ///
    /// # Errors
    /// [`StoreError::DimsMismatch`] when the vector length is wrong.
    pub fn insert_at_seq(
        &mut self,
        uid: u32,
        seq: u64,
        vector: &[f32],
    ) -> Result<WriteAck, StoreError> {
        if vector.len() != self.config.dims {
            return Err(StoreError::DimsMismatch {
                expected: self.config.dims,
                got: vector.len(),
            });
        }
        self.next_seq = self.next_seq.max(seq + 1);
        self.wal.append(&WalRecord::Insert {
            uid,
            seq,
            vector: vector.to_vec(),
        });
        if self.config.sync == WalSync::EveryRecord {
            self.wal.sync();
        }
        self.payload_bytes += (vector.len() * 4) as u64;
        self.apply_insert(uid, seq, vector.to_vec());
        let sealed = if self.memtable.len() >= self.config.memtable_capacity {
            self.seal()
        } else {
            false
        };
        Ok(WriteAck {
            seq,
            sealed,
            wal_len: self.wal.len(),
        })
    }

    /// Deletes `uid`. Blind deletes are accepted: a tombstone for a
    /// never-seen uid is recorded and purged at the next compaction.
    pub fn delete(&mut self, uid: u32) -> Result<WriteAck, StoreError> {
        let seq = self.next_seq;
        self.delete_at_seq(uid, seq)
    }

    /// Deletes `uid` at a caller-assigned sequence number (see
    /// [`Store::insert_at_seq`]).
    pub fn delete_at_seq(&mut self, uid: u32, seq: u64) -> Result<WriteAck, StoreError> {
        self.next_seq = self.next_seq.max(seq + 1);
        self.wal.append(&WalRecord::Delete { uid, seq });
        if self.config.sync == WalSync::EveryRecord {
            self.wal.sync();
        }
        self.apply_delete(uid, seq);
        Ok(WriteAck {
            seq,
            sealed: false,
            wal_len: self.wal.len(),
        })
    }

    /// Seals the memtable into a new level-0 segment. Returns `false`
    /// — and appends no WAL record — when the memtable is empty, so
    /// the op↔record correspondence stays exact for replay.
    pub fn seal(&mut self) -> bool {
        if self.memtable.is_empty() {
            return false;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.wal.append(&WalRecord::Seal { seq });
        // A lifecycle record flushes under both sync policies: sealing
        // is the durability barrier `WalSync::OnSeal` promises.
        self.wal.sync();
        self.apply_seal()
    }

    /// True when some level holds more than `fanout` segments.
    pub fn compaction_needed(&self) -> bool {
        self.levels.iter().any(|l| l.len() > self.config.fanout)
    }

    /// Runs one compaction: merges the lowest over-fanout level into
    /// the next. Returns `false` — appending no WAL record — when no
    /// level owes work.
    pub fn compact_step(&mut self) -> bool {
        let Some(level) = self
            .levels
            .iter()
            .position(|l| l.len() > self.config.fanout)
        else {
            return false;
        };
        let seq = self.next_seq;
        self.next_seq += 1;
        self.wal.append(&WalRecord::Compact {
            level: level as u32,
            seq,
        });
        self.wal.sync();
        self.apply_compact(level);
        true
    }

    /// Exact top-k over the visible set: the memtable is scanned
    /// host-side through the device's own distance arithmetic, each
    /// segment executes a device query over-fetched by its stale count,
    /// and candidates merge through the shared `(distance, id)` order
    /// with invisible (superseded / tombstoned) candidates suppressed.
    ///
    /// # Errors
    /// [`StoreError::ZeroK`], [`StoreError::DimsMismatch`],
    /// [`StoreError::UnsupportedMetric`] (only Euclidean and Manhattan
    /// run against a mutable store), or a segment [`StoreError::Device`]
    /// failure.
    pub fn query(
        &mut self,
        q: &[f32],
        metric: DeviceMetric,
        k: usize,
    ) -> Result<StoreQueryResult, StoreError> {
        if k == 0 {
            return Err(StoreError::ZeroK);
        }
        if q.len() != self.config.dims {
            return Err(StoreError::DimsMismatch {
                expected: self.config.dims,
                got: q.len(),
            });
        }
        if !matches!(metric, DeviceMetric::Euclidean | DeviceMetric::Manhattan) {
            return Err(StoreError::UnsupportedMetric);
        }
        let qwords = self.quantize(q);
        let mut top = TopK::new(k);
        let mut faults = FaultRecord::default();
        let memtable_scanned = self.memtable.len();
        for (&uid, sv) in &self.memtable {
            let raw = raw_distance(metric, &qwords, &sv.words);
            top.offer(uid, Fix32(raw).to_f32());
        }
        faults.covered_vectors += memtable_scanned as u64;
        faults.total_vectors += memtable_scanned as u64;
        let mut device_seconds = 0.0f64;
        let mut energy_mj = 0.0f64;
        let mut segments_scanned = 0usize;
        let mut suppressed = 0usize;
        let dq = match metric {
            DeviceMetric::Euclidean => DeviceQuery::Euclidean(q),
            DeviceMetric::Manhattan => DeviceQuery::Manhattan(q),
            _ => unreachable!("metric validated above"),
        };
        let index = std::mem::take(&mut self.index);
        let mut device_err = None;
        'levels: for level in &mut self.levels {
            for seg in level {
                // Over-fetch by the segment's stale count so the k best
                // *visible* entries are guaranteed to be in the window.
                let k_eff = k + seg.stale;
                let result = match seg.device.query(&dq, k_eff) {
                    Ok(r) => r,
                    Err(e) => {
                        device_err = Some(e);
                        break 'levels;
                    }
                };
                segments_scanned += 1;
                device_seconds = device_seconds.max(result.timing.seconds);
                energy_mj += result.timing.energy_mj;
                faults.accumulate(&result.faults);
                for n in &result.neighbors {
                    let entry = &seg.entries[n.id as usize];
                    let visible = index.get(&entry.uid)
                        == Some(&IndexEntry {
                            seq: entry.seq,
                            loc: Loc::Segment(seg.id),
                        });
                    if visible {
                        top.offer(entry.uid, n.dist);
                    } else {
                        suppressed += 1;
                    }
                }
            }
        }
        self.index = index;
        if let Some(e) = device_err {
            return Err(StoreError::Device(e));
        }
        Ok(StoreQueryResult {
            neighbors: top.into_sorted(),
            device_seconds,
            energy_mj,
            segments_scanned,
            memtable_scanned,
            suppressed,
            faults,
        })
    }

    /// The visible set, uid-ascending: `(uid, vector)` for every live
    /// entry. Building a fresh immutable device from these vectors (in
    /// this order) and mapping its result ids through position is the
    /// reference the equivalence proptests compare [`Store::query`]
    /// against bit-for-bit.
    pub fn live_set(&self) -> Vec<(u32, Vec<f32>)> {
        let mut out = Vec::with_capacity(self.index.len());
        for (&uid, e) in &self.index {
            match e.loc {
                Loc::Memtable => out.push((uid, self.memtable[&uid].floats.clone())),
                Loc::Segment(sid) => {
                    let seg = self.segment(sid);
                    let at = seg
                        .entries
                        .binary_search_by_key(&uid, |se| se.uid)
                        .expect("index points at a resident entry");
                    out.push((uid, seg.entries[at].data.floats.clone()));
                }
                Loc::Dead => {}
            }
        }
        out
    }

    /// A deep, comparable image of the store's logical state: sequence
    /// counter, WAL length, memtable, index, and per-segment residency
    /// with vector bits. Two stores with equal snapshots answer every
    /// query identically — the recovery proptests assert snapshot
    /// equality after WAL replay.
    pub fn snapshot(&self) -> Snapshot {
        let memtable = self
            .memtable
            .iter()
            .map(|(&uid, sv)| {
                (
                    uid,
                    self.index[&uid].seq,
                    sv.floats.iter().map(|x| x.to_bits()).collect(),
                )
            })
            .collect();
        let index = self
            .index
            .iter()
            .map(|(&uid, e)| {
                (
                    uid,
                    e.seq,
                    match e.loc {
                        Loc::Memtable => SnapLoc::Memtable,
                        Loc::Segment(sid) => SnapLoc::Segment(sid),
                        Loc::Dead => SnapLoc::Dead,
                    },
                )
            })
            .collect();
        let levels = self
            .levels
            .iter()
            .map(|level| {
                level
                    .iter()
                    .map(|seg| SnapSegment {
                        id: seg.id,
                        stale: seg.stale,
                        entries: seg
                            .entries
                            .iter()
                            .map(|e| {
                                (
                                    e.uid,
                                    e.seq,
                                    e.data.floats.iter().map(|x| x.to_bits()).collect(),
                                )
                            })
                            .collect(),
                    })
                    .collect()
            })
            .collect();
        Snapshot {
            next_seq: self.next_seq,
            wal_len: self.wal.len(),
            memtable,
            index,
            levels,
        }
    }

    /// Builds the store's lifecycle account (see
    /// [`ssam_core::telemetry::StoreAccount`]); `seq` is left 0 for the
    /// sink to assign.
    pub fn account(&self, label: &str) -> StoreAccount {
        let mut segments = Vec::new();
        for (level, segs) in self.levels.iter().enumerate() {
            for seg in segs {
                segments.push(SegmentAccount {
                    id: seg.id,
                    level,
                    entries: seg.entries.len(),
                    stale: seg.stale,
                    bytes: (seg.entries.len() * self.vec_words * 4) as u64,
                });
            }
        }
        let index_live = self
            .index
            .values()
            .filter(|e| !matches!(e.loc, Loc::Dead))
            .count();
        let index_dead = self.index.len() - index_live;
        StoreAccount {
            seq: 0,
            label: label.to_string(),
            vec_bytes: (self.vec_words * 4) as u64,
            memtable_entries: self.memtable.len(),
            index_live,
            index_dead,
            wal_records: self.wal.records(),
            wal_bytes: self.wal.len(),
            payload_bytes: self.payload_bytes,
            staged_bytes: self.staged_bytes,
            seals: self.seals,
            compactions: self.compactions,
            fanout: self.config.fanout,
            segments,
        }
    }

    /// Posts the current account to the attached telemetry sink (no-op
    /// without one), where it is verified like a query record.
    pub fn record_account(&self, label: &str) {
        if let Some(sink) = &self.telemetry {
            sink.record_store(self.account(label));
        }
    }

    /// Cumulative lifecycle counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            wal_records: self.wal.records(),
            wal_bytes: self.wal.len(),
            wal_durable_bytes: self.wal.durable_len(),
            payload_bytes: self.payload_bytes,
            staged_bytes: self.staged_bytes,
            seals: self.seals,
            compactions: self.compactions,
            seal_seconds: self.seal_seconds,
            compact_seconds: self.compact_seconds,
            max_compact_seconds: self.max_compact_seconds,
            segments: self.levels.iter().map(Vec::len).sum(),
            levels: self.levels.iter().filter(|l| !l.is_empty()).count(),
        }
    }
}

/// Where a snapshotted uid lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapLoc {
    /// In the memtable.
    Memtable,
    /// In the segment with this store-wide id.
    Segment(u64),
    /// Tombstoned.
    Dead,
}

/// One segment's snapshot: id, stale count, and resident entries as
/// `(uid, seq, f32 bits)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapSegment {
    /// Store-wide segment id.
    pub id: u64,
    /// Superseded resident entries.
    pub stale: usize,
    /// Resident rows, uid-ascending.
    pub entries: Vec<(u32, u64, Vec<u32>)>,
}

/// A deep comparable image of a store's logical state (see
/// [`Store::snapshot`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Next sequence number to be assigned.
    pub next_seq: u64,
    /// WAL bytes.
    pub wal_len: u64,
    /// Memtable rows as `(uid, seq, f32 bits)`, uid-ascending.
    pub memtable: Vec<(u32, u64, Vec<u32>)>,
    /// Index rows as `(uid, seq, loc)`, uid-ascending.
    pub index: Vec<(u32, u64, SnapLoc)>,
    /// Segment levels, level 0 first.
    pub levels: Vec<Vec<SnapSegment>>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_config(dims: usize, capacity: usize, fanout: usize) -> StoreConfig {
        let mut c = StoreConfig::new(dims);
        c.memtable_capacity = capacity;
        c.fanout = fanout;
        c.device.fast_path = true;
        c
    }

    fn vecs(n: usize, dims: usize, salt: u64) -> Vec<Vec<f32>> {
        let mut x = salt | 1;
        (0..n)
            .map(|_| {
                (0..dims)
                    .map(|_| {
                        x = x
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        ((x >> 40) as i32 % 1000) as f32 / 1000.0
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn insert_query_roundtrip_memtable_only() {
        let mut store = Store::create(fast_config(4, 100, 4));
        for (i, v) in vecs(10, 4, 7).iter().enumerate() {
            store.insert(i as u32, v).unwrap();
        }
        let q = vec![0.1, 0.2, 0.3, 0.4];
        let r = store.query(&q, DeviceMetric::Euclidean, 3).unwrap();
        assert_eq!(r.neighbors.len(), 3);
        assert_eq!(r.memtable_scanned, 10);
        assert_eq!(r.segments_scanned, 0);
        assert_eq!(r.coverage(), 1.0);
    }

    #[test]
    fn seal_moves_memtable_to_segment_and_preserves_results() {
        let mut store = Store::create(fast_config(4, 100, 4));
        for (i, v) in vecs(12, 4, 11).iter().enumerate() {
            store.insert(i as u32, v).unwrap();
        }
        let q = vec![0.5, -0.5, 0.25, 0.0];
        let before = store.query(&q, DeviceMetric::Euclidean, 5).unwrap();
        assert!(store.seal());
        let after = store.query(&q, DeviceMetric::Euclidean, 5).unwrap();
        assert_eq!(after.memtable_scanned, 0);
        assert_eq!(after.segments_scanned, 1);
        assert_eq!(before.neighbors.len(), after.neighbors.len());
        for (b, a) in before.neighbors.iter().zip(&after.neighbors) {
            assert_eq!(b.id, a.id);
            assert_eq!(b.dist.to_bits(), a.dist.to_bits());
        }
    }

    #[test]
    fn delete_suppresses_across_memtable_and_segments() {
        let mut store = Store::create(fast_config(4, 100, 4));
        let vs = vecs(8, 4, 3);
        for (i, v) in vs.iter().enumerate() {
            store.insert(i as u32, v).unwrap();
        }
        store.seal();
        // Delete the exact-match vector, then query for it: it must not
        // be returned, and the segment's over-fetch covers the gap.
        store.delete(2).unwrap();
        let r = store.query(&vs[2], DeviceMetric::Euclidean, 3).unwrap();
        assert!(r.neighbors.iter().all(|n| n.id != 2));
        assert_eq!(r.neighbors.len(), 3);
        assert!(r.suppressed >= 1);
        assert_eq!(store.live_len(), 7);
    }

    #[test]
    fn update_dedups_to_latest_version() {
        let mut store = Store::create(fast_config(2, 100, 4));
        store.insert(5, &[0.9, 0.9]).unwrap();
        store.seal();
        store.insert(5, &[0.0, 0.0]).unwrap();
        let r = store
            .query(&[0.0, 0.0], DeviceMetric::Euclidean, 2)
            .unwrap();
        // Only one version of uid 5 is visible — the latest.
        assert_eq!(r.neighbors.iter().filter(|n| n.id == 5).count(), 1);
        assert_eq!(r.neighbors[0].id, 5);
        assert_eq!(r.neighbors[0].dist, 0.0);
    }

    #[test]
    fn auto_seal_trips_at_capacity_and_compaction_reduces_segments() {
        let mut store = Store::create(fast_config(2, 4, 2));
        let vs = vecs(40, 2, 17);
        let mut sealed = 0;
        for (i, v) in vs.iter().enumerate() {
            if store.insert(i as u32, v).unwrap().sealed {
                sealed += 1;
            }
        }
        assert_eq!(sealed, 10);
        assert!(store.compaction_needed());
        while store.compact_step() {}
        assert!(!store.compaction_needed());
        let stats = store.stats();
        assert!(stats.segments <= 2 * store.config().fanout);
        assert!(stats.compactions > 0);
        // Everything is still visible.
        assert_eq!(store.live_len(), 40);
        let r = store.query(&vs[13], DeviceMetric::Euclidean, 1).unwrap();
        assert_eq!(r.neighbors[0].id, 13);
        assert_eq!(r.neighbors[0].dist, 0.0);
    }

    #[test]
    fn blind_delete_tombstone_purged_by_compaction() {
        let mut store = Store::create(fast_config(2, 2, 1));
        store.delete(999).unwrap();
        let vs = vecs(8, 2, 5);
        for (i, v) in vs.iter().enumerate() {
            store.insert(i as u32, v).unwrap();
        }
        while store.compact_step() {}
        let snap = store.snapshot();
        assert!(snap.index.iter().all(|&(uid, _, _)| uid != 999));
    }

    #[test]
    fn wal_replay_recovers_full_state_bit_identically() {
        let mut store = Store::create(fast_config(3, 3, 2));
        let vs = vecs(20, 3, 23);
        for (i, v) in vs.iter().enumerate() {
            store.insert((i % 12) as u32, v).unwrap();
            if i % 5 == 4 {
                store.delete((i % 7) as u32).unwrap();
            }
        }
        store.seal();
        while store.compact_step() {}
        let (recovered, rec) = Store::open(fast_config(3, 3, 2), store.wal_bytes()).unwrap();
        assert_eq!(rec.truncated, 0);
        assert_eq!(rec.replayed as u64, store.stats().wal_records);
        assert_eq!(recovered.snapshot(), store.snapshot());
        let q = [0.1, -0.3, 0.7];
        let mut a = store.query(&q, DeviceMetric::Manhattan, 4).unwrap();
        let mut b = recovered
            .clone()
            .query(&q, DeviceMetric::Manhattan, 4)
            .unwrap();
        assert_eq!(a.neighbors.len(), b.neighbors.len());
        for (x, y) in a.neighbors.drain(..).zip(b.neighbors.drain(..)) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.dist.to_bits(), y.dist.to_bits());
        }
    }

    #[test]
    fn torn_tail_recovers_prefix() {
        let mut store = Store::create(fast_config(2, 100, 4));
        store.insert(1, &[0.5, 0.5]).unwrap();
        let good = store.wal_bytes().len();
        store.insert(2, &[0.25, 0.25]).unwrap();
        let mut bytes = store.wal_bytes().to_vec();
        bytes.truncate(good + 3); // tear the second frame
        let (recovered, rec) = Store::open(fast_config(2, 100, 4), &bytes).unwrap();
        assert_eq!(rec.replayed, 1);
        assert_eq!(rec.truncated, 3);
        assert_eq!(recovered.live_len(), 1);
    }

    #[test]
    fn wal_sync_knob_governs_crash_durability() {
        // Default: every record is durable the moment its ack returns —
        // a crash at the most hostile cut keeps everything.
        let mut per_record = Store::create(fast_config(2, 100, 4));
        assert_eq!(per_record.config().sync, WalSync::EveryRecord);
        per_record.insert(1, &[0.1, 0.1]).unwrap();
        per_record.insert(2, &[0.2, 0.2]).unwrap();
        let s = per_record.stats();
        assert_eq!(s.wal_durable_bytes, s.wal_bytes);
        let (rec, r) = Store::open(fast_config(2, 100, 4), per_record.crash_wal_image(0)).unwrap();
        assert_eq!(r.replayed, 2);
        assert_eq!(rec.live_len(), 2);

        // OnSeal: acknowledged data records ride in the volatile tail
        // and can vanish wholesale until a seal flushes them.
        let mut cfg = fast_config(2, 100, 4);
        cfg.sync = WalSync::OnSeal;
        let mut lazy = Store::create(cfg.clone());
        lazy.insert(1, &[0.1, 0.1]).unwrap();
        lazy.insert(2, &[0.2, 0.2]).unwrap();
        assert_eq!(lazy.stats().wal_durable_bytes, 0);
        let (lost, r) = Store::open(cfg.clone(), lazy.crash_wal_image(0)).unwrap();
        assert_eq!(r.replayed, 0);
        assert!(lost.is_empty());
        // Sealing is the durability barrier OnSeal promises.
        assert!(lazy.seal());
        let s = lazy.stats();
        assert_eq!(s.wal_durable_bytes, s.wal_bytes);
        let (kept, r2) = Store::open(cfg, lazy.crash_wal_image(0)).unwrap();
        assert_eq!(r2.replayed, 3);
        assert_eq!(r2.segments_rebuilt, 1);
        assert_eq!(kept.live_len(), 2);
    }

    #[test]
    fn account_passes_verification_through_lifecycle() {
        let sink = Telemetry::new();
        let mut store = Store::create(fast_config(2, 3, 1));
        store.attach_telemetry(&sink);
        let vs = vecs(14, 2, 9);
        for (i, v) in vs.iter().enumerate() {
            store.insert((i % 10) as u32, v).unwrap();
            if i % 4 == 3 {
                store.delete((i % 5) as u32).unwrap();
            }
            store.record_account("lifecycle");
        }
        while store.compact_step() {
            store.record_account("compaction");
        }
        assert!(sink.violations().is_empty(), "{:?}", sink.violations());
        let accounts = sink.store_accounts();
        assert!(!accounts.is_empty());
        let last = accounts.last().unwrap();
        assert_eq!(last.live(), store.live_len());
    }

    #[test]
    fn dims_and_metric_validation() {
        let mut store = Store::create(fast_config(3, 100, 4));
        assert!(matches!(
            store.insert(0, &[1.0]),
            Err(StoreError::DimsMismatch {
                expected: 3,
                got: 1
            })
        ));
        store.insert(0, &[0.1, 0.2, 0.3]).unwrap();
        assert!(matches!(
            store.query(&[0.0; 3], DeviceMetric::Cosine, 1),
            Err(StoreError::UnsupportedMetric)
        ));
        assert!(matches!(
            store.query(&[0.0; 3], DeviceMetric::Euclidean, 0),
            Err(StoreError::ZeroK)
        ));
        assert!(matches!(
            store.query(&[0.0; 2], DeviceMetric::Euclidean, 1),
            Err(StoreError::DimsMismatch {
                expected: 3,
                got: 2
            })
        ));
    }

    #[test]
    fn live_set_matches_visible_contents() {
        let mut store = Store::create(fast_config(2, 3, 2));
        store.insert(4, &[0.1, 0.1]).unwrap();
        store.insert(2, &[0.2, 0.2]).unwrap();
        store.insert(9, &[0.3, 0.3]).unwrap(); // trips a seal
        store.insert(2, &[0.4, 0.4]).unwrap(); // update over segment copy
        store.delete(4).unwrap();
        let live = store.live_set();
        let uids: Vec<u32> = live.iter().map(|(u, _)| *u).collect();
        assert_eq!(uids, vec![2, 9]);
        assert_eq!(live[0].1, vec![0.4, 0.4]);
    }
}
