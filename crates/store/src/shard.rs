//! Sharded, replicated mutable store: N store shards × R replica
//! modules with failover ingest and exact scatter-gather reads.
//!
//! The single-module [`Store`] (PR 9) has no survival story when its
//! module dies mid-ingest: one WAL, one segment set. This module scales
//! it out the way the paper scales the immutable path across a daisy
//! chain of SSAM modules, and makes module outages a first-class
//! recovery drill:
//!
//! * **Placement** — uids hash onto shards through the *existing* HMC
//!   interleaving math: [`AddressMap::BlockInterleave`] with a block of
//!   one "byte" per uid, so `shard_of(uid) = uid % shards` is computed
//!   by the same code path that spreads physical addresses over vaults.
//! * **Replication** — each shard is `replicas` full [`Store`] modules
//!   (WAL-per-module). A write is assigned one global sequence number
//!   and applied to every reachable replica; replicas a seeded
//!   [`FaultPlan`] outage makes unreachable miss the write, which is
//!   queued and replayed (in order) the moment the module is reachable
//!   again — writes *fail over to the replica WAL* rather than failing.
//! * **Reads** — scatter-gather: one healthy, caught-up replica per
//!   shard executes the query; per-shard exact top-k merge through the
//!   shared `(distance, id)` order is bit-identical to a single-module
//!   store over the union live set. Downed replicas degrade-and-reprobe
//!   with capped backoff, mirroring `SsamCluster`'s `degrade_after` /
//!   `probe_interval` health machine. A shard with *no* reachable
//!   replica is reported as lost coverage — honest per-query coverage,
//!   like the immutable cluster path.
//! * **Recovery** — [`ShardedStore::open`] recovers each module from
//!   its own WAL prefix (any vector of prefixes: crashes tear each
//!   module independently via [`CrashSpec::torn_tail_for`]), then runs
//!   anti-entropy per shard: the union of surviving data records across
//!   a shard's replicas, keyed by sequence number, is replayed onto
//!   every replica that missed it. Recovery is deterministic (a pure
//!   function of the images), bit-identical across twin runs, and
//!   idempotent — re-opening a recovered store's WALs is a fixed point.
//!
//! The write-path fault accounting lives in a [`WriteFaultLedger`]
//! (outages, failovers, refusals, catch-up) kept separate from the
//! per-query [`FaultRecord`]s so the telemetry sink's closure invariants
//! stay exact.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

use ssam_core::device::DeviceMetric;
use ssam_core::telemetry::{ModuleShardAccount, ShardAccount, Telemetry};
use ssam_faults::{CrashSpec, FaultPlan, FaultRecord, RecoveryPolicy};
use ssam_hmc::address::AddressMap;
use ssam_knn::topk::TopK;

use crate::{
    decode_stream, Recovery, Snapshot, Store, StoreConfig, StoreError, StoreQueryResult,
    StoreStats, WalRecord, WriteAck,
};

/// Outage-sampling scope for the sharded write path (distinct from the
/// cluster's scope 0 and the read scope below, so the channels are
/// decorrelated under one plan).
const WRITE_OUTAGE_SCOPE: u64 = 0x5353_5457; // "SSTW"
/// Outage-sampling scope for the sharded read path.
const READ_OUTAGE_SCOPE: u64 = 0x5353_5452; // "SSTR"

/// Configuration for a [`ShardedStore`].
#[derive(Debug, Clone)]
pub struct ShardedStoreConfig {
    /// Number of shards the uid space is interleaved over.
    pub shards: usize,
    /// Replica modules per shard (1 = no redundancy).
    pub replicas: usize,
    /// Per-module store configuration (every module is a full
    /// [`Store`]: own WAL, memtable, segment tree).
    pub store: StoreConfig,
}

impl ShardedStoreConfig {
    /// `shards × replicas` modules over `store`-configured modules.
    pub fn new(shards: usize, replicas: usize, store: StoreConfig) -> Self {
        ShardedStoreConfig {
            shards,
            replicas,
            store,
        }
    }
}

/// Acknowledgment for one accepted sharded write: which shard took it,
/// how many replicas applied it, and whether the primary was routed
/// around.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardWriteAck {
    /// Shard the uid hashed onto.
    pub shard: usize,
    /// Globally-assigned sequence number (shared by every replica WAL).
    pub seq: u64,
    /// True when the serving replica tripped an automatic memtable seal.
    pub sealed: bool,
    /// Serving replica's WAL length after the write.
    pub wal_len: u64,
    /// Replicas that applied the write synchronously (the rest catch up
    /// from their pending queue when reachable).
    pub replicas_acked: usize,
    /// True when the primary replica was down and the write landed on a
    /// standby's WAL instead.
    pub failed_over: bool,
}

impl ShardWriteAck {
    /// The single-module view of this ack (seq / sealed / wal_len of
    /// the serving replica).
    pub fn ack(&self) -> WriteAck {
        WriteAck {
            seq: self.seq,
            sealed: self.sealed,
            wal_len: self.wal_len,
        }
    }
}

/// What [`ShardedStore::open`] recovered across all modules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRecovery {
    /// Per-module recovery reports, module order.
    pub modules: Vec<Recovery>,
    /// Aggregate over `modules`.
    pub total: Recovery,
    /// Anti-entropy records replayed onto replicas that missed them
    /// (writes that survived only on a sibling's WAL).
    pub catch_up_records: u64,
}

/// Write-path fault accounting. Kept apart from the per-query
/// [`FaultRecord`] ledger: these counters describe ingest-side events
/// (missed replicas, refusals, catch-up) whose closure rule is "every
/// missed write is eventually replayed", checked by
/// [`WriteFaultLedger::check_closure`] against the live pending depth.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WriteFaultLedger {
    /// Replica write attempts that found the module unreachable
    /// (including retries, mirroring the cluster's outage tally).
    pub write_outages: u64,
    /// Writes whose primary replica was down but that landed on a
    /// standby replica's WAL.
    pub failed_over_writes: u64,
    /// Writes refused outright: every replica of the target shard was
    /// down, so no WAL could make the write durable.
    pub refused_writes: u64,
    /// Missed records replayed onto revived replicas so far.
    pub catch_up_records: u64,
    /// Deepest pending (missed-write) queue observed on any module.
    pub pending_peak: usize,
    /// Modeled capped-exponential backoff spent between write retries.
    pub backoff_seconds: f64,
}

impl WriteFaultLedger {
    /// The ledger closes when no missed write is still outstanding
    /// (`pending_now == 0` — every failover was caught up) and the
    /// counters are mutually consistent.
    pub fn check_closure(&self, pending_now: usize) -> Result<(), String> {
        let mut errs = Vec::new();
        if pending_now != 0 {
            errs.push(format!(
                "{pending_now} missed writes still pending catch-up"
            ));
        }
        if self.failed_over_writes + self.refused_writes > self.write_outages {
            errs.push(format!(
                "outage leak: {} failovers + {} refusals > {} outage events",
                self.failed_over_writes, self.refused_writes, self.write_outages
            ));
        }
        if !self.backoff_seconds.is_finite() || self.backoff_seconds < 0.0 {
            errs.push(format!("bad backoff_seconds: {}", self.backoff_seconds));
        }
        if errs.is_empty() {
            Ok(())
        } else {
            Err(errs.join("; "))
        }
    }
}

/// Health machine per module, mirroring the cluster's.
#[derive(Debug, Clone, Default)]
struct ModuleHealth {
    /// Consecutive touches (read or write) that found the module down.
    consecutive_faults: u32,
    /// A degraded module is routed around on reads except for probes.
    degraded: bool,
    /// Read batches skipped since the last probe of a degraded module.
    batches_since_probe: u64,
}

/// One replica module: a full store plus failover state.
#[derive(Debug, Clone)]
struct ModuleState {
    store: Store,
    health: ModuleHealth,
    /// Test/drill hook: a forced-down module fails every availability
    /// check until revived.
    forced_down: bool,
    /// Writes this module missed while unreachable, in sequence order;
    /// drained through the normal apply path when it is next reachable.
    pending: VecDeque<WalRecord>,
}

/// N shards × R replicas of mutable [`Store`] modules with failover
/// ingest, exact scatter-gather reads, and deterministic multi-WAL
/// recovery. Single-writer like [`Store`]; share behind a `Mutex`.
#[derive(Debug, Clone)]
pub struct ShardedStore {
    config: ShardedStoreConfig,
    /// The uid→shard interleaving (the HMC block-interleave math with a
    /// one-unit block).
    placement: AddressMap,
    modules: Vec<ModuleState>,
    /// Globally monotonic sequence assigner shared by all shards.
    next_seq: u64,
    /// Authoritative per-shard live uid sets (acknowledged writes only);
    /// the honest-coverage denominator for lost shards.
    shard_live: Vec<BTreeSet<u32>>,
    faults: Option<Arc<FaultPlan>>,
    telemetry: Option<Telemetry>,
    /// Read batch counter keying outage samples, like the cluster's.
    read_batches: u64,
    write_ledger: WriteFaultLedger,
    recovery: Option<ShardRecovery>,
}

impl ShardedStore {
    /// Creates an empty sharded store.
    ///
    /// # Panics
    /// Panics if `shards` or `replicas` is zero (or the per-module
    /// store config is invalid, per [`Store::create`]).
    pub fn create(config: ShardedStoreConfig) -> Self {
        assert!(config.shards > 0, "shards must be positive");
        assert!(config.replicas > 0, "replicas must be positive");
        let placement = AddressMap::BlockInterleave {
            block_bytes: 1,
            vaults: config.shards as u32,
        };
        let modules = (0..config.shards * config.replicas)
            .map(|m| {
                let mut store = Store::create(config.store.clone());
                // Disjoint fault-scope bases: replicas of the same data
                // must draw independent segment fault streams.
                store.set_fault_scope_base((m as u64) << 32);
                ModuleState {
                    store,
                    health: ModuleHealth::default(),
                    forced_down: false,
                    pending: VecDeque::new(),
                }
            })
            .collect();
        let shard_live = vec![BTreeSet::new(); config.shards];
        ShardedStore {
            config,
            placement,
            modules,
            next_seq: 1,
            shard_live,
            faults: None,
            telemetry: None,
            read_batches: 0,
            write_ledger: WriteFaultLedger::default(),
            recovery: None,
        }
    }

    /// Recovers a sharded store from one WAL image per module (module
    /// order: `shard * replicas + replica`). Each module recovers its
    /// own prefix exactly as [`Store::open`] does; then, per shard, the
    /// union of surviving data records across the shard's replicas
    /// (keyed by the globally-unique sequence number) is replayed onto
    /// every replica that missed it — anti-entropy, WAL-appending, so a
    /// re-open finds nothing left to merge. Deterministic and
    /// idempotent: twin opens of the same images are bit-identical, and
    /// opening the recovered WALs is a fixed point.
    ///
    /// # Panics
    /// Panics if `images.len() != shards * replicas`.
    ///
    /// # Errors
    /// [`StoreError::DimsMismatch`] when an image belongs to a store of
    /// different dimensionality.
    pub fn open(
        config: ShardedStoreConfig,
        images: &[Vec<u8>],
    ) -> Result<(Self, ShardRecovery), StoreError> {
        let mut sharded = ShardedStore::create(config);
        let (shards, replicas) = (sharded.config.shards, sharded.config.replicas);
        assert_eq!(
            images.len(),
            shards * replicas,
            "need one WAL image per module"
        );
        let mut recoveries = Vec::with_capacity(images.len());
        let mut total = Recovery::default();
        for (m, image) in images.iter().enumerate() {
            let (mut store, rec) = Store::open(sharded.config.store.clone(), image)?;
            store.set_fault_scope_base((m as u64) << 32);
            sharded.modules[m].store = store;
            recoveries.push(rec);
            total.accumulate(&rec);
        }
        let mut catch_up = 0u64;
        for shard in 0..shards {
            // Union of surviving data records across the shard's
            // replicas. Sequence numbers are globally unique, so two
            // replicas holding the same seq hold the same record.
            let mut union: BTreeMap<u64, WalRecord> = BTreeMap::new();
            let mut have: Vec<BTreeSet<u64>> = vec![BTreeSet::new(); replicas];
            for (r, have_r) in have.iter_mut().enumerate() {
                let m = shard * replicas + r;
                let (records, _) = decode_stream(sharded.modules[m].store.wal_bytes());
                for rec in records {
                    if matches!(rec, WalRecord::Insert { .. } | WalRecord::Delete { .. }) {
                        have_r.insert(rec.seq());
                        union.entry(rec.seq()).or_insert(rec);
                    }
                }
            }
            // Replay missed records in ascending sequence order through
            // the live apply path (WAL-appending; stale versions cannot
            // regress newer ones — the apply path is seq-aware).
            for (seq, rec) in &union {
                for (r, have_r) in have.iter().enumerate() {
                    if have_r.contains(seq) {
                        continue;
                    }
                    let m = shard * replicas + r;
                    match rec {
                        WalRecord::Insert { uid, seq, vector } => {
                            sharded.modules[m].store.insert_at_seq(*uid, *seq, vector)?;
                        }
                        WalRecord::Delete { uid, seq } => {
                            sharded.modules[m].store.delete_at_seq(*uid, *seq)?;
                        }
                        _ => unreachable!("union holds data records only"),
                    }
                    catch_up += 1;
                }
            }
            // Authoritative live set: ascending-seq replay of the union.
            for rec in union.values() {
                match rec {
                    WalRecord::Insert { uid, .. } => {
                        sharded.shard_live[shard].insert(*uid);
                    }
                    WalRecord::Delete { uid, .. } => {
                        sharded.shard_live[shard].remove(uid);
                    }
                    _ => {}
                }
            }
        }
        sharded.next_seq = sharded
            .modules
            .iter()
            .map(|m| m.store.next_seq())
            .max()
            .unwrap_or(1);
        let report = ShardRecovery {
            modules: recoveries,
            total,
            catch_up_records: catch_up,
        };
        sharded.recovery = Some(report.clone());
        Ok((sharded, report))
    }

    /// The configuration.
    pub fn config(&self) -> &ShardedStoreConfig {
        &self.config
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.config.shards
    }

    /// Replicas per shard.
    pub fn replicas(&self) -> usize {
        self.config.replicas
    }

    /// The recovery report from [`ShardedStore::open`]; `None` for a
    /// created store.
    pub fn recovery(&self) -> Option<&ShardRecovery> {
        self.recovery.as_ref()
    }

    /// Shard owning `uid` — the HMC block-interleave with one uid per
    /// block, i.e. `uid % shards` computed by the address-map path.
    pub fn shard_of(&self, uid: u32) -> usize {
        self.placement.vault_of(u64::from(uid)) as usize
    }

    /// Visible (acknowledged-live) vectors across all shards.
    pub fn live_len(&self) -> usize {
        self.shard_live.iter().map(BTreeSet::len).sum()
    }

    /// True when no vector is visible.
    pub fn is_empty(&self) -> bool {
        self.live_len() == 0
    }

    /// The effective recovery policy (the plan's, or the default when
    /// running fault-free — forced kills still degrade and reprobe).
    fn policy(&self) -> RecoveryPolicy {
        self.faults.as_ref().map(|p| p.policy).unwrap_or_default()
    }

    /// Installs (or clears) a fault plan on every module. Module
    /// outages on the sharded read/write paths sample decorrelated
    /// scopes; segment-level faults inherit each module's disjoint
    /// scope base.
    pub fn set_fault_plan(&mut self, plan: Option<Arc<FaultPlan>>) {
        self.faults = plan.clone();
        for module in &mut self.modules {
            module.store.set_fault_plan(plan.clone());
            module.health = ModuleHealth::default();
        }
    }

    /// Attaches a telemetry sink to every module (segment devices
    /// report query records) and to [`ShardedStore::record_account`].
    pub fn attach_telemetry(&mut self, sink: &Telemetry) {
        self.telemetry = Some(sink.clone());
        for module in &mut self.modules {
            module.store.attach_telemetry(sink);
        }
    }

    /// Drill hook: forces module `m` down — every availability check
    /// fails until [`ShardedStore::revive_module`]. Deterministic, so
    /// failover tests and the serve_load outage drill replay exactly.
    pub fn kill_module(&mut self, m: usize) {
        self.modules[m].forced_down = true;
    }

    /// Drill hook: lifts a forced outage; the module catches up on its
    /// missed writes at the next touch.
    pub fn revive_module(&mut self, m: usize) {
        self.modules[m].forced_down = false;
    }

    /// True when module `m` is forced down.
    pub fn module_down(&self, m: usize) -> bool {
        self.modules[m].forced_down
    }

    /// Per-module degraded flags (reads route around `true` modules
    /// except for periodic probes).
    pub fn degraded_modules(&self) -> Vec<bool> {
        self.modules.iter().map(|m| m.health.degraded).collect()
    }

    /// Per-module missed-write queue depths.
    pub fn pending_depths(&self) -> Vec<usize> {
        self.modules.iter().map(|m| m.pending.len()).collect()
    }

    /// Total missed writes not yet replayed onto their module.
    pub fn pending_total(&self) -> usize {
        self.modules.iter().map(|m| m.pending.len()).sum()
    }

    /// The write-path fault ledger.
    pub fn write_ledger(&self) -> &WriteFaultLedger {
        &self.write_ledger
    }

    /// Checks the write ledger against the live pending depth: closed
    /// means every missed write was caught up and counters balance.
    pub fn check_write_ledger(&self) -> Result<(), String> {
        self.write_ledger.check_closure(self.pending_total())
    }

    /// Availability of module `m` for one touch: forced outages fail
    /// immediately; otherwise the fault plan's module-outage channel is
    /// sampled with up to `max_module_retries` retries under capped
    /// exponential backoff (accumulated into `backoff`), mirroring the
    /// cluster's failover loop.
    fn module_available(
        &self,
        m: usize,
        scope: u64,
        seq: u64,
        outages: &mut u64,
        backoff: &mut f64,
    ) -> bool {
        if self.modules[m].forced_down {
            *outages += 1;
            return false;
        }
        let Some(plan) = &self.faults else {
            return true;
        };
        let policy = plan.policy;
        let mut attempt = 0u64;
        loop {
            if plan.module_outage(scope, seq, m as u64, attempt) {
                attempt += 1;
                *outages += 1;
                if attempt > u64::from(policy.max_module_retries) {
                    return false;
                }
                *backoff += policy.backoff(attempt as u32);
                continue;
            }
            return true;
        }
    }

    /// One more failed touch on module `m`: degrade after
    /// `degrade_after` consecutive misses.
    fn note_miss(&mut self, m: usize) {
        let degrade_after = self.policy().degrade_after;
        let h = &mut self.modules[m].health;
        h.consecutive_faults += 1;
        if h.consecutive_faults >= degrade_after {
            h.degraded = true;
        }
    }

    /// Replays every write module `m` missed, in sequence order,
    /// through the normal apply path (WAL-appending).
    fn drain_pending(&mut self, m: usize) -> Result<(), StoreError> {
        while let Some(rec) = self.modules[m].pending.pop_front() {
            match rec {
                WalRecord::Insert { uid, seq, vector } => {
                    self.modules[m].store.insert_at_seq(uid, seq, &vector)?;
                }
                WalRecord::Delete { uid, seq } => {
                    self.modules[m].store.delete_at_seq(uid, seq)?;
                }
                _ => unreachable!("only data records are queued"),
            }
            self.write_ledger.catch_up_records += 1;
        }
        Ok(())
    }

    /// Inserts (or updates) `uid`: one global sequence number, applied
    /// to every reachable replica of the owning shard. Unreachable
    /// replicas miss the write and catch up later; if *no* replica is
    /// reachable the write is refused ([`StoreError::ShardUnavailable`])
    /// and no sequence number is consumed.
    ///
    /// # Errors
    /// [`StoreError::DimsMismatch`] on a wrong-length vector,
    /// [`StoreError::ShardUnavailable`] when the whole replica set is
    /// down.
    pub fn insert(&mut self, uid: u32, vector: &[f32]) -> Result<ShardWriteAck, StoreError> {
        if vector.len() != self.config.store.dims {
            return Err(StoreError::DimsMismatch {
                expected: self.config.store.dims,
                got: vector.len(),
            });
        }
        self.write(uid, Some(vector.to_vec()))
    }

    /// Deletes `uid` (blind deletes accepted, as in [`Store::delete`]).
    ///
    /// # Errors
    /// [`StoreError::ShardUnavailable`] when the whole replica set is
    /// down.
    pub fn delete(&mut self, uid: u32) -> Result<ShardWriteAck, StoreError> {
        self.write(uid, None)
    }

    fn write(&mut self, uid: u32, vector: Option<Vec<f32>>) -> Result<ShardWriteAck, StoreError> {
        let shard = self.shard_of(uid);
        let replicas = self.config.replicas;
        let seq = self.next_seq;
        let mut outages = 0u64;
        let mut backoff = 0.0f64;
        let up: Vec<bool> = (0..replicas)
            .map(|r| {
                self.module_available(
                    shard * replicas + r,
                    WRITE_OUTAGE_SCOPE,
                    seq,
                    &mut outages,
                    &mut backoff,
                )
            })
            .collect();
        self.write_ledger.write_outages += outages;
        self.write_ledger.backoff_seconds += backoff;
        if !up.iter().any(|&u| u) {
            // Refused: nothing was made durable, the sequence number is
            // not consumed, and every replica's health takes the miss.
            self.write_ledger.refused_writes += 1;
            for r in 0..replicas {
                self.note_miss(shard * replicas + r);
            }
            return Err(StoreError::ShardUnavailable { shard });
        }
        self.next_seq = seq + 1;
        let record = match &vector {
            Some(v) => WalRecord::Insert {
                uid,
                seq,
                vector: v.clone(),
            },
            None => WalRecord::Delete { uid, seq },
        };
        let mut acked = 0usize;
        let mut lead: Option<WriteAck> = None;
        for (r, &is_up) in up.iter().enumerate() {
            let m = shard * replicas + r;
            if is_up {
                // A reachable replica first replays anything it missed,
                // so its WAL stays in ascending sequence order.
                self.drain_pending(m)?;
                let ack = match &vector {
                    Some(v) => self.modules[m].store.insert_at_seq(uid, seq, v)?,
                    None => self.modules[m].store.delete_at_seq(uid, seq)?,
                };
                acked += 1;
                if lead.is_none() {
                    lead = Some(ack);
                }
                let h = &mut self.modules[m].health;
                h.consecutive_faults = 0;
                h.degraded = false;
            } else {
                self.modules[m].pending.push_back(record.clone());
                let depth = self.modules[m].pending.len();
                self.write_ledger.pending_peak = self.write_ledger.pending_peak.max(depth);
                self.note_miss(m);
            }
        }
        match &vector {
            Some(_) => {
                self.shard_live[shard].insert(uid);
            }
            None => {
                self.shard_live[shard].remove(&uid);
            }
        }
        let failed_over = !up[0];
        if failed_over {
            self.write_ledger.failed_over_writes += 1;
        }
        let lead = lead.expect("at least one replica acked");
        Ok(ShardWriteAck {
            shard,
            seq,
            sealed: lead.sealed,
            wal_len: lead.wal_len,
            replicas_acked: acked,
            failed_over,
        })
    }

    /// Exact scatter-gather top-k: the first healthy, caught-up replica
    /// of each shard executes the query and the per-shard results merge
    /// through the shared `(distance, id)` order — bit-identical to a
    /// single-module store over the union live set. Degraded replicas
    /// are routed around except for periodic probes; a downed primary
    /// fails the read over to the next replica; a shard with no
    /// reachable replica is reported as lost coverage in the returned
    /// [`FaultRecord`] (covered < total, `lost_units` names the shard).
    ///
    /// # Errors
    /// As [`Store::query`].
    pub fn query(
        &mut self,
        q: &[f32],
        metric: DeviceMetric,
        k: usize,
    ) -> Result<StoreQueryResult, StoreError> {
        if k == 0 {
            return Err(StoreError::ZeroK);
        }
        if q.len() != self.config.store.dims {
            return Err(StoreError::DimsMismatch {
                expected: self.config.store.dims,
                got: q.len(),
            });
        }
        if !matches!(metric, DeviceMetric::Euclidean | DeviceMetric::Manhattan) {
            return Err(StoreError::UnsupportedMetric);
        }
        let batch_seq = self.read_batches;
        self.read_batches += 1;
        let policy = self.policy();
        let mut top = TopK::new(k);
        let mut faults = FaultRecord::default();
        let mut device_seconds = 0.0f64;
        let mut energy_mj = 0.0f64;
        let mut segments_scanned = 0usize;
        let mut memtable_scanned = 0usize;
        let mut suppressed = 0usize;
        let mut outages = 0u64;
        let mut backoff = 0.0f64;
        let mut failed_over = 0u64;
        for shard in 0..self.config.shards {
            let mut served = false;
            for r in 0..self.config.replicas {
                let m = shard * self.config.replicas + r;
                // Degrade-and-reprobe: routed around until the probe
                // interval elapses, then given a live attempt.
                if self.modules[m].health.degraded
                    && self.modules[m].health.batches_since_probe + 1 < policy.probe_interval
                {
                    self.modules[m].health.batches_since_probe += 1;
                    continue;
                }
                if !self.module_available(
                    m,
                    READ_OUTAGE_SCOPE,
                    batch_seq,
                    &mut outages,
                    &mut backoff,
                ) {
                    self.modules[m].health.batches_since_probe = 0;
                    self.note_miss(m);
                    continue;
                }
                // Reachable: replay missed writes, then serve the shard.
                self.drain_pending(m)?;
                let result = self.modules[m].store.query(q, metric, k)?;
                for n in &result.neighbors {
                    top.offer(n.id, n.dist);
                }
                device_seconds = device_seconds.max(result.device_seconds);
                energy_mj += result.energy_mj;
                segments_scanned += result.segments_scanned;
                memtable_scanned += result.memtable_scanned;
                suppressed += result.suppressed;
                faults.accumulate(&result.faults);
                let h = &mut self.modules[m].health;
                h.batches_since_probe = 0;
                h.consecutive_faults = 0;
                h.degraded = false;
                if r > 0 {
                    failed_over += 1;
                }
                served = true;
                break;
            }
            if !served {
                // Honest coverage: the shard's acknowledged live count
                // goes uncovered. An empty lost shard loses nothing (and
                // must not claim a phantom lost unit).
                let live = self.shard_live[shard].len() as u64;
                faults.total_vectors += live;
                if live > 0 {
                    faults.lost_module += 1;
                    faults.lost_units.push(shard as u32);
                }
            }
        }
        faults.module_outages += outages;
        faults.failed_over += failed_over;
        faults.recovery_seconds += backoff;
        Ok(StoreQueryResult {
            neighbors: top.into_sorted(),
            device_seconds,
            energy_mj,
            segments_scanned,
            memtable_scanned,
            suppressed,
            faults,
        })
    }

    /// Seals every module's memtable; returns how many sealed.
    pub fn seal_all(&mut self) -> usize {
        self.modules
            .iter_mut()
            .map(|m| m.store.seal())
            .filter(|&sealed| sealed)
            .count()
    }

    /// True when any module owes a compaction.
    pub fn compaction_needed(&self) -> bool {
        self.modules.iter().any(|m| m.store.compaction_needed())
    }

    /// Runs one compaction on the first module owing one; `false` when
    /// no module does. The maintenance loop calls this until it drains.
    pub fn compact_step(&mut self) -> bool {
        self.modules.iter_mut().any(|m| m.store.compact_step())
    }

    /// The visible set, uid-ascending, assembled from one caught-up
    /// replica per shard (shards partition the uid space, so the merge
    /// is a disjoint union).
    pub fn live_set(&self) -> Vec<(u32, Vec<f32>)> {
        let mut out = Vec::with_capacity(self.live_len());
        for shard in 0..self.config.shards {
            let m = self
                .caught_up_replica(shard)
                .expect("every shard has a caught-up replica");
            out.extend(self.modules[m].store.live_set());
        }
        out.sort_by_key(|(uid, _)| *uid);
        out
    }

    /// First replica of `shard` with an empty pending queue — by
    /// construction at least one exists (the replica that acked the
    /// shard's last write drained its queue first).
    fn caught_up_replica(&self, shard: usize) -> Option<usize> {
        (0..self.config.replicas)
            .map(|r| shard * self.config.replicas + r)
            .find(|&m| self.modules[m].pending.is_empty())
    }

    /// Per-module deep snapshots (see [`Store::snapshot`]); two sharded
    /// stores with equal snapshot vectors answer identically.
    pub fn snapshot(&self) -> Vec<Snapshot> {
        self.modules.iter().map(|m| m.store.snapshot()).collect()
    }

    /// Per-module full WAL images, module order.
    pub fn wal_images(&self) -> Vec<Vec<u8>> {
        self.modules
            .iter()
            .map(|m| m.store.wal_bytes().to_vec())
            .collect()
    }

    /// Per-module crash images for crash event `event`: each module's
    /// WAL is torn at an independent [`CrashSpec::torn_tail_for`] cut,
    /// clamped to its synced watermark. Feed to [`ShardedStore::open`].
    pub fn crash_images(&self, crash: &CrashSpec, event: u64) -> Vec<Vec<u8>> {
        self.modules
            .iter()
            .enumerate()
            .map(|(m, ms)| {
                let cut = crash.torn_tail_for(m as u64, event, ms.store.wal_bytes().len() as u64);
                ms.store.crash_wal_image(cut).to_vec()
            })
            .collect()
    }

    /// Aggregate lifecycle counters over all modules (seconds are
    /// summed; `levels` is the deepest module's).
    pub fn stats(&self) -> StoreStats {
        let mut agg: Option<StoreStats> = None;
        for m in &self.modules {
            let s = m.store.stats();
            agg = Some(match agg {
                None => s,
                Some(a) => StoreStats {
                    wal_records: a.wal_records + s.wal_records,
                    wal_bytes: a.wal_bytes + s.wal_bytes,
                    wal_durable_bytes: a.wal_durable_bytes + s.wal_durable_bytes,
                    payload_bytes: a.payload_bytes + s.payload_bytes,
                    staged_bytes: a.staged_bytes + s.staged_bytes,
                    seals: a.seals + s.seals,
                    compactions: a.compactions + s.compactions,
                    seal_seconds: a.seal_seconds + s.seal_seconds,
                    compact_seconds: a.compact_seconds + s.compact_seconds,
                    max_compact_seconds: a.max_compact_seconds.max(s.max_compact_seconds),
                    segments: a.segments + s.segments,
                    levels: a.levels.max(s.levels),
                },
            });
        }
        agg.expect("at least one module")
    }

    /// Per-module lifecycle counters.
    pub fn module_stats(&self, m: usize) -> StoreStats {
        self.modules[m].store.stats()
    }

    /// Builds the sharded account (cross-checked by
    /// [`ssam_core::telemetry::verify_shard_account`]); `seq` is left 0
    /// for the sink to assign.
    pub fn account(&self, label: &str) -> ShardAccount {
        let replicas = self.config.replicas;
        let modules = self
            .modules
            .iter()
            .enumerate()
            .map(|(m, ms)| ModuleShardAccount {
                module: m,
                shard: m / replicas,
                replica: m % replicas,
                behind: ms.pending.len(),
                degraded: ms.health.degraded,
                down: ms.forced_down,
                store: ms.store.account(&format!("{label}/m{m}")),
            })
            .collect();
        ShardAccount {
            seq: 0,
            label: label.to_string(),
            shards: self.config.shards,
            replicas,
            live: self.live_len(),
            shard_live: self.shard_live.iter().map(BTreeSet::len).collect(),
            modules,
        }
    }

    /// Posts the current account to the attached telemetry sink (no-op
    /// without one), where it is verified like a store account.
    pub fn record_account(&self, label: &str) {
        if let Some(sink) = &self.telemetry {
            sink.record_shard(self.account(label));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(shards: usize, replicas: usize) -> ShardedStoreConfig {
        let mut store = StoreConfig::new(3);
        store.memtable_capacity = 4;
        store.fanout = 2;
        store.device.fast_path = true;
        ShardedStoreConfig::new(shards, replicas, store)
    }

    fn vec_for(i: u32) -> Vec<f32> {
        (0..3)
            .map(|d| (((i * 13 + d * 7) % 19) as f32 - 9.0) / 10.0)
            .collect()
    }

    #[test]
    fn placement_reuses_interleaving_math() {
        let s = ShardedStore::create(config(4, 2));
        for uid in 0..64u32 {
            assert_eq!(s.shard_of(uid), (uid % 4) as usize);
        }
    }

    #[test]
    fn writes_spread_and_queries_merge_across_shards() {
        let mut s = ShardedStore::create(config(3, 2));
        for i in 0..30u32 {
            let ack = s.insert(i, &vec_for(i)).unwrap();
            assert_eq!(ack.shard, (i % 3) as usize);
            assert_eq!(ack.replicas_acked, 2);
            assert!(!ack.failed_over);
        }
        assert_eq!(s.live_len(), 30);
        let r = s.query(&vec_for(7), DeviceMetric::Euclidean, 1).unwrap();
        assert_eq!(r.neighbors[0].id, 7);
        assert_eq!(r.neighbors[0].dist, 0.0);
        assert_eq!(r.coverage(), 1.0);
        s.delete(7).unwrap();
        let r = s.query(&vec_for(7), DeviceMetric::Euclidean, 1).unwrap();
        assert_ne!(r.neighbors[0].id, 7);
        assert_eq!(s.live_len(), 29);
    }

    #[test]
    fn killed_primary_fails_writes_over_and_catches_up_on_revive() {
        let mut s = ShardedStore::create(config(2, 2));
        for i in 0..8u32 {
            s.insert(i, &vec_for(i)).unwrap();
        }
        // Kill shard 0's primary (module 0); writes to shard 0 keep
        // landing — on the replica's WAL.
        s.kill_module(0);
        let ack = s.insert(10, &vec_for(10)).unwrap();
        assert_eq!(ack.shard, 0);
        assert!(ack.failed_over);
        assert_eq!(ack.replicas_acked, 1);
        assert_eq!(s.pending_depths()[0], 1);
        assert!(s.write_ledger().failed_over_writes >= 1);
        // Reads still see the write (served by the replica).
        let r = s.query(&vec_for(10), DeviceMetric::Euclidean, 1).unwrap();
        assert_eq!(r.neighbors[0].id, 10);
        assert_eq!(r.coverage(), 1.0);
        // Revive: the next write drains the pending queue first.
        s.revive_module(0);
        s.insert(12, &vec_for(12)).unwrap();
        assert_eq!(s.pending_total(), 0);
        s.check_write_ledger()
            .expect("ledger closes after catch-up");
    }

    #[test]
    fn whole_shard_down_refuses_writes_and_loses_coverage_honestly() {
        let mut s = ShardedStore::create(config(2, 2));
        for i in 0..8u32 {
            s.insert(i, &vec_for(i)).unwrap();
        }
        s.kill_module(0);
        s.kill_module(1);
        let err = s.insert(14, &vec_for(14)).unwrap_err();
        assert_eq!(err, StoreError::ShardUnavailable { shard: 0 });
        assert_eq!(s.write_ledger().refused_writes, 1);
        // Shard 1 writes still work.
        s.insert(15, &vec_for(15)).unwrap();
        // Reads lose shard 0's live set, honestly.
        let r = s.query(&vec_for(0), DeviceMetric::Euclidean, 2).unwrap();
        assert!(r.coverage() < 1.0);
        assert_eq!(r.faults.lost_units, vec![0]);
        r.faults
            .check_closure()
            .expect("lost coverage still closes");
        assert!(r.neighbors.iter().all(|n| n.id % 2 == 1));
    }

    #[test]
    fn recovery_is_deterministic_and_idempotent_over_torn_images() {
        let mut s = ShardedStore::create(config(2, 2));
        for i in 0..24u32 {
            s.insert(i % 12, &vec_for(i)).unwrap();
            if i % 5 == 0 {
                s.delete(i % 7).unwrap();
            }
        }
        let crash = CrashSpec::new(0xFEED);
        let images = s.crash_images(&crash, 3);
        // Per-module cuts are independent somewhere.
        let (a, ra) = ShardedStore::open(config(2, 2), &images).unwrap();
        let (b, rb) = ShardedStore::open(config(2, 2), &images).unwrap();
        assert_eq!(ra, rb);
        assert_eq!(a.snapshot(), b.snapshot());
        // Idempotent: re-opening the recovered WALs merges nothing new.
        let (c, rc) = ShardedStore::open(config(2, 2), &a.wal_images()).unwrap();
        assert_eq!(rc.catch_up_records, 0);
        assert_eq!(rc.total.truncated, 0);
        assert_eq!(c.snapshot(), a.snapshot());
    }

    #[test]
    fn account_verifies_through_failover() {
        use ssam_core::telemetry::Telemetry;
        let sink = Telemetry::new();
        let mut s = ShardedStore::create(config(2, 2));
        s.attach_telemetry(&sink);
        for i in 0..10u32 {
            s.insert(i, &vec_for(i)).unwrap();
        }
        s.record_account("steady");
        s.kill_module(2);
        for i in 10..16u32 {
            s.insert(i, &vec_for(i)).unwrap();
        }
        s.record_account("one_down");
        s.revive_module(2);
        s.query(&vec_for(1), DeviceMetric::Euclidean, 3).unwrap();
        s.record_account("healed");
        assert!(sink.violations().is_empty(), "{:?}", sink.violations());
        assert_eq!(sink.shard_accounts().len(), 3);
    }
}
