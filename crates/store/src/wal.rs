//! The store's write-ahead log: a flat byte stream of CRC-framed
//! records that is the *only* durable state the store has.
//!
//! Every mutation — inserts, deletes, and the seal/compact *decisions*
//! themselves — appends one record before it is applied, so replaying
//! the log from the start reconstructs the exact store state, including
//! segment boundaries and compaction history. Logging the lifecycle
//! decisions (rather than re-deriving them from policy at replay time)
//! makes recovery policy-independent: a store replayed under different
//! capacity/fanout settings still lands in the identical segment layout,
//! which is what the bit-identical crash-recovery proptests pin down.
//!
//! # Frame format
//!
//! ```text
//! [len: u32 LE] [crc32: u32 LE] [payload: len bytes]
//! ```
//!
//! `crc32` is [`ssam_hmc::packet::crc32`] (IEEE 802.3, the same
//! polynomial the simulated link layer checks) over the payload bytes.
//! Payloads are tagged by their first byte:
//!
//! ```text
//! INSERT  0x49 'I'  [uid: u32] [seq: u64] [dims: u32] [dims x f32 LE]
//! DELETE  0x44 'D'  [uid: u32] [seq: u64]
//! SEAL    0x53 'S'  [seq: u64]
//! COMPACT 0x43 'C'  [level: u32] [seq: u64]
//! ```
//!
//! # Torn tails
//!
//! A crash mid-append leaves a torn tail: a truncated frame, or a full
//! frame whose CRC no longer matches. [`decode_stream`] stops at the
//! first record it cannot validate and reports how many bytes of prefix
//! were good; recovery replays that prefix and discards the rest, which
//! is exactly the "last acknowledged write may be lost, everything
//! before it survives" contract the crash proptests exercise via
//! [`ssam_faults::CrashSpec`].

use ssam_hmc::packet::crc32;

/// Payload tag for an insert record.
const TAG_INSERT: u8 = 0x49;
/// Payload tag for a delete record.
const TAG_DELETE: u8 = 0x44;
/// Payload tag for a memtable-seal decision.
const TAG_SEAL: u8 = 0x53;
/// Payload tag for a compaction decision.
const TAG_COMPACT: u8 = 0x43;

/// One logical WAL record.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// Upsert of `uid` with the given float vector at sequence `seq`.
    Insert {
        /// Caller-chosen vector id.
        uid: u32,
        /// Store-assigned monotonic sequence number.
        seq: u64,
        /// The raw (pre-quantization) vector.
        vector: Vec<f32>,
    },
    /// Tombstone for `uid` at sequence `seq`.
    Delete {
        /// Caller-chosen vector id.
        uid: u32,
        /// Store-assigned monotonic sequence number.
        seq: u64,
    },
    /// The memtable was sealed into a new level-0 segment.
    Seal {
        /// Sequence number the seal decision was made at.
        seq: u64,
    },
    /// Level `level` was compacted into `level + 1`.
    Compact {
        /// The level that was drained.
        level: u32,
        /// Sequence number the compaction decision was made at.
        seq: u64,
    },
}

impl WalRecord {
    /// Encodes the record as one complete frame (header + payload).
    pub fn encode(&self) -> Vec<u8> {
        let mut p = Vec::with_capacity(16);
        match self {
            WalRecord::Insert { uid, seq, vector } => {
                p.push(TAG_INSERT);
                p.extend_from_slice(&uid.to_le_bytes());
                p.extend_from_slice(&seq.to_le_bytes());
                p.extend_from_slice(&(vector.len() as u32).to_le_bytes());
                for &x in vector {
                    p.extend_from_slice(&x.to_le_bytes());
                }
            }
            WalRecord::Delete { uid, seq } => {
                p.push(TAG_DELETE);
                p.extend_from_slice(&uid.to_le_bytes());
                p.extend_from_slice(&seq.to_le_bytes());
            }
            WalRecord::Seal { seq } => {
                p.push(TAG_SEAL);
                p.extend_from_slice(&seq.to_le_bytes());
            }
            WalRecord::Compact { level, seq } => {
                p.push(TAG_COMPACT);
                p.extend_from_slice(&level.to_le_bytes());
                p.extend_from_slice(&seq.to_le_bytes());
            }
        }
        let mut f = Vec::with_capacity(8 + p.len());
        f.extend_from_slice(&(p.len() as u32).to_le_bytes());
        f.extend_from_slice(&crc32(&p).to_le_bytes());
        f.extend_from_slice(&p);
        f
    }

    /// The sequence number the record carries.
    pub fn seq(&self) -> u64 {
        match self {
            WalRecord::Insert { seq, .. }
            | WalRecord::Delete { seq, .. }
            | WalRecord::Seal { seq }
            | WalRecord::Compact { seq, .. } => *seq,
        }
    }
}

/// Decodes one payload (sans frame header). `None` on any structural
/// problem — unknown tag, short body, trailing garbage.
fn decode_payload(p: &[u8]) -> Option<WalRecord> {
    let (&tag, body) = p.split_first()?;
    let u32_at = |b: &[u8], at: usize| -> Option<u32> {
        Some(u32::from_le_bytes(b.get(at..at + 4)?.try_into().ok()?))
    };
    let u64_at = |b: &[u8], at: usize| -> Option<u64> {
        Some(u64::from_le_bytes(b.get(at..at + 8)?.try_into().ok()?))
    };
    match tag {
        TAG_INSERT => {
            let uid = u32_at(body, 0)?;
            let seq = u64_at(body, 4)?;
            let dims = u32_at(body, 12)? as usize;
            let rest = body.get(16..)?;
            if rest.len() != dims * 4 {
                return None;
            }
            let vector = rest
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
                .collect();
            Some(WalRecord::Insert { uid, seq, vector })
        }
        TAG_DELETE => {
            if body.len() != 12 {
                return None;
            }
            Some(WalRecord::Delete {
                uid: u32_at(body, 0)?,
                seq: u64_at(body, 4)?,
            })
        }
        TAG_SEAL => {
            if body.len() != 8 {
                return None;
            }
            Some(WalRecord::Seal {
                seq: u64_at(body, 0)?,
            })
        }
        TAG_COMPACT => {
            if body.len() != 12 {
                return None;
            }
            Some(WalRecord::Compact {
                level: u32_at(body, 0)?,
                seq: u64_at(body, 4)?,
            })
        }
        _ => None,
    }
}

/// Decodes a WAL byte stream front to back, stopping at the first torn
/// or corrupt frame. Returns the valid records and the byte length of
/// the good prefix (everything past it is the torn tail a recovering
/// store truncates away).
pub fn decode_stream(bytes: &[u8]) -> (Vec<WalRecord>, usize) {
    let mut records = Vec::new();
    let mut at = 0usize;
    while bytes.len() - at >= 8 {
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().unwrap());
        let Some(payload) = bytes.get(at + 8..at + 8 + len) else {
            break; // truncated frame body
        };
        if crc32(payload) != crc {
            break; // bit rot or a torn overwrite
        }
        let Some(record) = decode_payload(payload) else {
            break; // structurally invalid payload
        };
        records.push(record);
        at += 8 + len;
    }
    (records, at)
}

/// When appended WAL records are flushed to stable storage.
///
/// The store's crash drills honour this: a crash can only tear bytes
/// past the synced watermark, so `EveryRecord` exposes the whole log to
/// torn tails (each record is durable the moment its append returns),
/// while `OnSeal` batches durability — unsealed tail records may vanish
/// wholesale at a crash, trading the per-record flush for ingest speed.
///
/// The default is [`WalSync::EveryRecord`]: acknowledged writes survive
/// any crash minus at most the one record a tear cuts in half, which is
/// the contract the PR 9 recovery proptests pin.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum WalSync {
    /// Flush after every appended record (default; strongest durability).
    #[default]
    EveryRecord,
    /// Flush only when a seal or compaction record is appended; data
    /// records between lifecycle events ride in the unsynced tail.
    OnSeal,
}

/// The append-only log. The backing store is an in-memory byte vector —
/// this is a simulator, so "durable" means "survives as bytes the
/// harness can snapshot, truncate, and hand to [`crate::Store::open`]";
/// the byte format itself is what a file-backed deployment would fsync.
///
/// The log tracks a *synced watermark*: the byte length known to have
/// reached stable storage. [`Wal::append`] leaves new bytes unsynced;
/// the owning store calls [`Wal::sync`] per its [`WalSync`] policy, and
/// crash harnesses use [`Wal::crash_image`] to model what a real crash
/// could leave behind.
#[derive(Debug, Clone, Default)]
pub struct Wal {
    bytes: Vec<u8>,
    records: u64,
    synced: usize,
}

impl Wal {
    /// An empty log.
    pub fn new() -> Self {
        Wal::default()
    }

    /// Adopts an existing byte stream (recovery path). Only the valid
    /// prefix is kept; the torn tail is truncated away. Returns the
    /// replayable records.
    pub fn from_bytes(bytes: &[u8]) -> (Self, Vec<WalRecord>) {
        let (records, good) = decode_stream(bytes);
        (
            Wal {
                bytes: bytes[..good].to_vec(),
                records: records.len() as u64,
                // The recovered image *is* stable storage.
                synced: good,
            },
            records,
        )
    }

    /// Appends one record; returns the frame size in bytes.
    pub fn append(&mut self, record: &WalRecord) -> usize {
        let frame = record.encode();
        self.bytes.extend_from_slice(&frame);
        self.records += 1;
        frame.len()
    }

    /// The full log image.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Bytes appended so far.
    pub fn len(&self) -> u64 {
        self.bytes.len() as u64
    }

    /// True when nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Records appended so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Marks everything appended so far as flushed to stable storage.
    pub fn sync(&mut self) {
        self.synced = self.bytes.len();
    }

    /// Bytes known durable: a crash can only tear bytes past this point.
    pub fn durable_len(&self) -> u64 {
        self.synced as u64
    }

    /// The durable prefix of the log image.
    pub fn durable_bytes(&self) -> &[u8] {
        &self.bytes[..self.synced]
    }

    /// What a crash at torn-tail point `cut` leaves behind: the synced
    /// prefix always survives; unsynced bytes survive only up to `cut`.
    pub fn crash_image(&self, cut: u64) -> &[u8] {
        let keep = (cut as usize).clamp(self.synced, self.bytes.len());
        &self.bytes[..keep]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<WalRecord> {
        vec![
            WalRecord::Insert {
                uid: 7,
                seq: 1,
                vector: vec![0.5, -0.25, 3.0],
            },
            WalRecord::Delete { uid: 7, seq: 2 },
            WalRecord::Seal { seq: 3 },
            WalRecord::Compact { level: 1, seq: 4 },
        ]
    }

    #[test]
    fn roundtrip_all_record_kinds() {
        let mut wal = Wal::new();
        for r in sample() {
            wal.append(&r);
        }
        let (decoded, good) = decode_stream(wal.bytes());
        assert_eq!(decoded, sample());
        assert_eq!(good as u64, wal.len());
        assert_eq!(wal.records(), 4);
    }

    #[test]
    fn torn_tail_truncates_to_last_whole_record() {
        let mut wal = Wal::new();
        for r in sample() {
            wal.append(&r);
        }
        let full = wal.bytes().to_vec();
        // Every possible torn length recovers a prefix of the records.
        for cut in 0..=full.len() {
            let (records, good) = decode_stream(&full[..cut]);
            assert!(good <= cut);
            assert_eq!(records, sample()[..records.len()]);
        }
        assert_eq!(decode_stream(&full).0.len(), 4);
    }

    #[test]
    fn corrupt_byte_stops_replay_at_preceding_record() {
        let mut wal = Wal::new();
        for r in sample() {
            wal.append(&r);
        }
        let mut bytes = wal.bytes().to_vec();
        // Flip a bit inside the third frame's payload.
        let third_start: usize = sample()[..2].iter().map(|r| r.encode().len()).sum();
        bytes[third_start + 9] ^= 0x40;
        let (records, good) = decode_stream(&bytes);
        assert_eq!(records.len(), 2);
        assert_eq!(good, third_start);
        let (recovered, replay) = Wal::from_bytes(&bytes);
        assert_eq!(replay.len(), 2);
        assert_eq!(recovered.len() as usize, third_start);
    }

    #[test]
    fn sync_watermark_bounds_crash_images() {
        let mut wal = Wal::new();
        let recs = sample();
        wal.append(&recs[0]);
        wal.append(&recs[1]);
        assert_eq!(wal.durable_len(), 0, "append must not imply durability");
        wal.sync();
        let durable = wal.len();
        wal.append(&recs[2]);
        assert_eq!(wal.durable_len(), durable);
        // A crash cut below the watermark is clamped up to it; a cut in
        // the unsynced tail tears there; past-the-end cuts are clamped.
        assert_eq!(wal.crash_image(0).len() as u64, durable);
        assert_eq!(wal.crash_image(durable + 3).len() as u64, durable + 3);
        assert_eq!(wal.crash_image(u64::MAX).len() as u64, wal.len());
        // Recovery adopts the whole surviving image as durable.
        let (recovered, replay) = Wal::from_bytes(wal.crash_image(0));
        assert_eq!(replay.len(), 2);
        assert_eq!(recovered.durable_len(), recovered.len());
    }

    #[test]
    fn unknown_tag_rejected() {
        let payload = [0xEEu8, 1, 2, 3];
        let mut frame = Vec::new();
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        let (records, good) = decode_stream(&frame);
        assert!(records.is_empty());
        assert_eq!(good, 0);
    }
}
