//! Two-pass assembler for SSAM PU assembly.
//!
//! The paper's methodology (Section IV): "We also built an assembler and
//! simulator to generate program binaries, benchmark assembly programs,
//! and validate the correctness of our design. … Each benchmark is
//! handwritten using our instruction set defined in Table II."
//!
//! ## Syntax
//!
//! ```text
//! ; comment until end of line
//! loop:                       ; labels end with ':'
//!     addi  s1, s1, 1         ; scalar immediate ALU
//!     vload v0, s2, 0         ; vector load VL words at [s2 + 0]
//!     vsub  v0, v0, v1
//!     vmult v0, v0, v0        ; Q16.16 multiply
//!     bne   s1, s3, loop      ; branch to label
//!     pqueue_insert s4, s5
//!     halt
//! ```
//!
//! Registers are `s0`–`s31` and `v0`–`v7`; immediates are decimal or
//! `0x` hex; branch/jump targets are labels or absolute instruction
//! indices; `pqueue_load`'s third operand is `id`, `value`, or `size`.
//! Shift instructions (`sl`/`sr`/`sra`) accept a register or an immediate
//! shift amount.

pub mod parser;

pub use parser::{assemble, disassemble, AsmError};
