//! Assembly parsing and program assembly.

use std::collections::HashMap;
use std::fmt;

use crate::isa::inst::{AluOp, BranchCond, Instruction, PqField, UnaryOp};
use crate::isa::reg::{SReg, VReg, NUM_SCALAR_REGS, NUM_VECTOR_REGS};

/// An assembly error with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number in the source text.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

fn err(line: usize, message: impl Into<String>) -> AsmError {
    AsmError {
        line,
        message: message.into(),
    }
}

/// One operand token.
#[derive(Debug, Clone, PartialEq)]
enum Operand {
    SReg(SReg),
    VReg(VReg),
    Imm(i64),
    Symbol(String),
}

fn parse_operand(tok: &str, line: usize) -> Result<Operand, AsmError> {
    let t = tok.trim();
    if t.is_empty() {
        return Err(err(line, "empty operand"));
    }
    // Register?
    if let Some(rest) = t.strip_prefix('s') {
        if let Ok(n) = rest.parse::<u8>() {
            if (n as usize) < NUM_SCALAR_REGS {
                return Ok(Operand::SReg(SReg(n)));
            }
            return Err(err(line, format!("scalar register {t} out of range")));
        }
    }
    if let Some(rest) = t.strip_prefix('v') {
        if let Ok(n) = rest.parse::<u8>() {
            if (n as usize) < NUM_VECTOR_REGS {
                return Ok(Operand::VReg(VReg(n)));
            }
            return Err(err(line, format!("vector register {t} out of range")));
        }
    }
    // Immediate?
    let (neg, digits) = match t.strip_prefix('-') {
        Some(d) => (true, d),
        None => (false, t),
    };
    let parsed = if let Some(hex) = digits
        .strip_prefix("0x")
        .or_else(|| digits.strip_prefix("0X"))
    {
        i64::from_str_radix(hex, 16).ok()
    } else if digits.chars().all(|c| c.is_ascii_digit()) && !digits.is_empty() {
        digits.parse::<i64>().ok()
    } else {
        None
    };
    if let Some(v) = parsed {
        return Ok(Operand::Imm(if neg { -v } else { v }));
    }
    // Otherwise a symbol (label or pqueue field name).
    if t.chars()
        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
    {
        Ok(Operand::Symbol(t.to_string()))
    } else {
        Err(err(line, format!("malformed operand `{t}`")))
    }
}

struct SourceLine {
    line: usize,
    mnemonic: String,
    operands: Vec<Operand>,
}

/// Strips comment, splits off labels, tokenizes one line. Returns
/// `(labels, Option<SourceLine>)`.
fn scan_line(raw: &str, line: usize) -> Result<(Vec<String>, Option<SourceLine>), AsmError> {
    let code = raw.split(';').next().unwrap_or("");
    let mut rest = code.trim();
    let mut labels = Vec::new();
    // Leading labels: `name:`.
    while let Some(colon) = rest.find(':') {
        let (head, tail) = rest.split_at(colon);
        let name = head.trim();
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
        {
            return Err(err(line, format!("malformed label `{name}`")));
        }
        labels.push(name.to_string());
        rest = tail[1..].trim();
    }
    if rest.is_empty() {
        return Ok((labels, None));
    }
    let mut parts = rest.splitn(2, char::is_whitespace);
    let mnemonic = parts.next().expect("non-empty").to_ascii_lowercase();
    let operands = match parts.next() {
        Some(ops) if !ops.trim().is_empty() => ops
            .split(',')
            .map(|t| parse_operand(t, line))
            .collect::<Result<Vec<_>, _>>()?,
        _ => Vec::new(),
    };
    Ok((
        labels,
        Some(SourceLine {
            line,
            mnemonic,
            operands,
        }),
    ))
}

/// Assembles source text into a program (a vector of instructions).
///
/// Supports a `.equ` directive binding a named constant usable wherever
/// an immediate is expected:
///
/// ```text
/// .equ DIMS, 100
///     addi s6, s0, DIMS
/// ```
///
/// Errors carry the offending 1-based line number.
pub fn assemble(source: &str) -> Result<Vec<Instruction>, AsmError> {
    // Pass 1: scan lines, record label → instruction-index bindings and
    // `.equ` constants.
    let mut lines = Vec::new();
    let mut labels: HashMap<String, u32> = HashMap::new();
    let mut equs: HashMap<String, i64> = HashMap::new();
    for (i, raw) in source.lines().enumerate() {
        let lineno = i + 1;
        let (lbls, code) = scan_line(raw, lineno)?;
        for l in lbls {
            if labels.insert(l.clone(), lines.len() as u32).is_some() {
                return Err(err(lineno, format!("duplicate label `{l}`")));
            }
        }
        let Some(sl) = code else { continue };
        if sl.mnemonic == ".equ" {
            let [name, value] = sl.operands.as_slice() else {
                return Err(err(lineno, "`.equ` expects a name and a value"));
            };
            let Operand::Symbol(name) = name else {
                return Err(err(lineno, "`.equ` name must be an identifier"));
            };
            let Operand::Imm(v) = value else {
                return Err(err(lineno, "`.equ` value must be an immediate"));
            };
            if equs.insert(name.clone(), *v).is_some() {
                return Err(err(lineno, format!("duplicate constant `{name}`")));
            }
            continue;
        }
        lines.push(sl);
    }

    // Pass 2: encode.
    let mut program = Vec::with_capacity(lines.len());
    for sl in &lines {
        program.push(encode_line(sl, &labels, &equs)?);
    }
    Ok(program)
}

/// Renders a program back to assembly text (one instruction per line,
/// numeric branch targets).
pub fn disassemble(program: &[Instruction]) -> String {
    let mut out = String::new();
    for (i, inst) in program.iter().enumerate() {
        out.push_str(&format!("{i:>5}:  {inst}\n"));
    }
    out
}

fn want(n: usize, sl: &SourceLine) -> Result<(), AsmError> {
    if sl.operands.len() != n {
        Err(err(
            sl.line,
            format!(
                "`{}` expects {n} operand(s), got {}",
                sl.mnemonic,
                sl.operands.len()
            ),
        ))
    } else {
        Ok(())
    }
}

fn as_sreg(op: &Operand, sl: &SourceLine) -> Result<SReg, AsmError> {
    match op {
        Operand::SReg(r) => Ok(*r),
        other => Err(err(
            sl.line,
            format!("expected scalar register, got {other:?}"),
        )),
    }
}

fn as_vreg(op: &Operand, sl: &SourceLine) -> Result<VReg, AsmError> {
    match op {
        Operand::VReg(r) => Ok(*r),
        other => Err(err(
            sl.line,
            format!("expected vector register, got {other:?}"),
        )),
    }
}

fn as_imm(op: &Operand, equs: &HashMap<String, i64>, sl: &SourceLine) -> Result<i32, AsmError> {
    let v = match op {
        Operand::Imm(v) => *v,
        Operand::Symbol(name) => *equs
            .get(name)
            .ok_or_else(|| err(sl.line, format!("undefined constant `{name}`")))?,
        other => return Err(err(sl.line, format!("expected immediate, got {other:?}"))),
    };
    i32::try_from(v).map_err(|_| err(sl.line, format!("immediate {v} out of 32-bit range")))
}

fn as_target(
    op: &Operand,
    labels: &HashMap<String, u32>,
    sl: &SourceLine,
) -> Result<u32, AsmError> {
    match op {
        Operand::Imm(v) if *v >= 0 => Ok(*v as u32),
        Operand::Imm(v) => Err(err(sl.line, format!("negative branch target {v}"))),
        Operand::Symbol(name) => labels
            .get(name)
            .copied()
            .ok_or_else(|| err(sl.line, format!("undefined label `{name}`"))),
        other => Err(err(
            sl.line,
            format!("expected label or address, got {other:?}"),
        )),
    }
}

fn encode_line(
    sl: &SourceLine,
    labels: &HashMap<String, u32>,
    equs: &HashMap<String, i64>,
) -> Result<Instruction, AsmError> {
    use Instruction as I;
    let m = sl.mnemonic.as_str();

    // Scalar ALU reg-reg / reg-imm pairs.
    let salu = |op: AluOp| -> Result<Instruction, AsmError> {
        want(3, sl)?;
        let rd = as_sreg(&sl.operands[0], sl)?;
        let rs1 = as_sreg(&sl.operands[1], sl)?;
        match &sl.operands[2] {
            Operand::SReg(rs2) => Ok(I::SAlu {
                op,
                rd,
                rs1,
                rs2: *rs2,
            }),
            Operand::Imm(_) | Operand::Symbol(_) => Ok(I::SAluImm {
                op,
                rd,
                rs1,
                imm: as_imm(&sl.operands[2], equs, sl)?,
            }),
            other => Err(err(
                sl.line,
                format!("expected register or immediate, got {other:?}"),
            )),
        }
    };
    let salu_imm = |op: AluOp| -> Result<Instruction, AsmError> {
        want(3, sl)?;
        Ok(I::SAluImm {
            op,
            rd: as_sreg(&sl.operands[0], sl)?,
            rs1: as_sreg(&sl.operands[1], sl)?,
            imm: as_imm(&sl.operands[2], equs, sl)?,
        })
    };
    let valu = |op: AluOp| -> Result<Instruction, AsmError> {
        want(3, sl)?;
        let vd = as_vreg(&sl.operands[0], sl)?;
        let vs1 = as_vreg(&sl.operands[1], sl)?;
        match &sl.operands[2] {
            Operand::VReg(vs2) => Ok(I::VAlu {
                op,
                vd,
                vs1,
                vs2: *vs2,
            }),
            Operand::Imm(_) | Operand::Symbol(_) => Ok(I::VAluImm {
                op,
                vd,
                vs1,
                imm: as_imm(&sl.operands[2], equs, sl)?,
            }),
            other => Err(err(
                sl.line,
                format!("expected register or immediate, got {other:?}"),
            )),
        }
    };
    let valu_imm = |op: AluOp| -> Result<Instruction, AsmError> {
        want(3, sl)?;
        Ok(I::VAluImm {
            op,
            vd: as_vreg(&sl.operands[0], sl)?,
            vs1: as_vreg(&sl.operands[1], sl)?,
            imm: as_imm(&sl.operands[2], equs, sl)?,
        })
    };
    let branch = |cond: BranchCond| -> Result<Instruction, AsmError> {
        want(3, sl)?;
        Ok(I::Branch {
            cond,
            rs1: as_sreg(&sl.operands[0], sl)?,
            rs2: as_sreg(&sl.operands[1], sl)?,
            target: as_target(&sl.operands[2], labels, sl)?,
        })
    };

    match m {
        "add" => salu(AluOp::Add),
        "sub" => salu(AluOp::Sub),
        "mult" => salu(AluOp::Mult),
        "or" => salu(AluOp::Or),
        "and" => salu(AluOp::And),
        "xor" => salu(AluOp::Xor),
        "sl" => salu(AluOp::Sl),
        "sr" => salu(AluOp::Sr),
        "sra" => salu(AluOp::Sra),
        "addi" => salu_imm(AluOp::Add),
        "subi" => salu_imm(AluOp::Sub),
        "multi" => salu_imm(AluOp::Mult),
        "andi" => salu_imm(AluOp::And),
        "ori" => salu_imm(AluOp::Or),
        "xori" => salu_imm(AluOp::Xor),
        "not" => {
            want(2, sl)?;
            Ok(I::SUnary {
                op: UnaryOp::Not,
                rd: as_sreg(&sl.operands[0], sl)?,
                rs1: as_sreg(&sl.operands[1], sl)?,
            })
        }
        "popcount" => {
            want(2, sl)?;
            Ok(I::SUnary {
                op: UnaryOp::Popcount,
                rd: as_sreg(&sl.operands[0], sl)?,
                rs1: as_sreg(&sl.operands[1], sl)?,
            })
        }
        "bne" => branch(BranchCond::Ne),
        "bgt" => branch(BranchCond::Gt),
        "blt" => branch(BranchCond::Lt),
        "be" => branch(BranchCond::Eq),
        "j" => {
            want(1, sl)?;
            Ok(I::Jump {
                target: as_target(&sl.operands[0], labels, sl)?,
            })
        }
        "halt" => {
            want(0, sl)?;
            Ok(I::Halt)
        }
        "push" => {
            want(1, sl)?;
            Ok(I::Push {
                rs1: as_sreg(&sl.operands[0], sl)?,
            })
        }
        "pop" => {
            want(1, sl)?;
            Ok(I::Pop {
                rd: as_sreg(&sl.operands[0], sl)?,
            })
        }
        "pqueue_insert" => {
            want(2, sl)?;
            Ok(I::PqueueInsert {
                rs_id: as_sreg(&sl.operands[0], sl)?,
                rs_val: as_sreg(&sl.operands[1], sl)?,
            })
        }
        "pqueue_load" => {
            want(3, sl)?;
            let field = match &sl.operands[2] {
                Operand::Symbol(s) if s == "id" => PqField::Id,
                Operand::Symbol(s) if s == "value" => PqField::Value,
                Operand::Symbol(s) if s == "size" => PqField::Size,
                other => {
                    return Err(err(
                        sl.line,
                        format!("pqueue_load field must be id/value/size, got {other:?}"),
                    ))
                }
            };
            Ok(I::PqueueLoad {
                rd: as_sreg(&sl.operands[0], sl)?,
                rs_idx: as_sreg(&sl.operands[1], sl)?,
                field,
            })
        }
        "pqueue_reset" => {
            want(0, sl)?;
            Ok(I::PqueueReset)
        }
        "sfxp" => {
            want(3, sl)?;
            Ok(I::Sfxp {
                rd: as_sreg(&sl.operands[0], sl)?,
                rs1: as_sreg(&sl.operands[1], sl)?,
                rs2: as_sreg(&sl.operands[2], sl)?,
            })
        }
        "vfxp" => {
            want(3, sl)?;
            Ok(I::Vfxp {
                vd: as_vreg(&sl.operands[0], sl)?,
                vs1: as_vreg(&sl.operands[1], sl)?,
                vs2: as_vreg(&sl.operands[2], sl)?,
            })
        }
        "load" => {
            want(3, sl)?;
            Ok(I::Load {
                rd: as_sreg(&sl.operands[0], sl)?,
                rs_base: as_sreg(&sl.operands[1], sl)?,
                offset: as_imm(&sl.operands[2], equs, sl)?,
            })
        }
        "store" => {
            want(3, sl)?;
            Ok(I::Store {
                rs_val: as_sreg(&sl.operands[0], sl)?,
                rs_base: as_sreg(&sl.operands[1], sl)?,
                offset: as_imm(&sl.operands[2], equs, sl)?,
            })
        }
        "mem_fetch" => {
            want(2, sl)?;
            Ok(I::MemFetch {
                rs_base: as_sreg(&sl.operands[0], sl)?,
                len: as_imm(&sl.operands[1], equs, sl)?,
            })
        }
        "svmove" => {
            want(3, sl)?;
            let lane = as_imm(&sl.operands[2], equs, sl)?;
            if !(-1..=127).contains(&lane) {
                return Err(err(sl.line, format!("svmove lane {lane} out of range")));
            }
            Ok(I::SvMove {
                vd: as_vreg(&sl.operands[0], sl)?,
                rs1: as_sreg(&sl.operands[1], sl)?,
                lane: lane as i8,
            })
        }
        "vsmove" => {
            want(3, sl)?;
            let lane = as_imm(&sl.operands[2], equs, sl)?;
            if !(0..=255).contains(&lane) {
                return Err(err(sl.line, format!("vsmove lane {lane} out of range")));
            }
            Ok(I::VsMove {
                rd: as_sreg(&sl.operands[0], sl)?,
                vs1: as_vreg(&sl.operands[1], sl)?,
                lane: lane as u8,
            })
        }
        "vadd" => valu(AluOp::Add),
        "vsub" => valu(AluOp::Sub),
        "vmult" => valu(AluOp::Mult),
        "vor" => valu(AluOp::Or),
        "vand" => valu(AluOp::And),
        "vxor" => valu(AluOp::Xor),
        "vsl" => valu(AluOp::Sl),
        "vsr" => valu(AluOp::Sr),
        "vsra" => valu(AluOp::Sra),
        "vaddi" => valu_imm(AluOp::Add),
        "vsubi" => valu_imm(AluOp::Sub),
        "vmulti" => valu_imm(AluOp::Mult),
        "vandi" => valu_imm(AluOp::And),
        "vori" => valu_imm(AluOp::Or),
        "vxori" => valu_imm(AluOp::Xor),
        "vnot" => {
            want(2, sl)?;
            Ok(I::VUnary {
                op: UnaryOp::Not,
                vd: as_vreg(&sl.operands[0], sl)?,
                vs1: as_vreg(&sl.operands[1], sl)?,
            })
        }
        "vpopcount" => {
            want(2, sl)?;
            Ok(I::VUnary {
                op: UnaryOp::Popcount,
                vd: as_vreg(&sl.operands[0], sl)?,
                vs1: as_vreg(&sl.operands[1], sl)?,
            })
        }
        "vload" => {
            want(3, sl)?;
            Ok(I::VLoad {
                vd: as_vreg(&sl.operands[0], sl)?,
                rs_base: as_sreg(&sl.operands[1], sl)?,
                offset: as_imm(&sl.operands[2], equs, sl)?,
            })
        }
        "vstore" => {
            want(3, sl)?;
            Ok(I::VStore {
                vs: as_vreg(&sl.operands[0], sl)?,
                rs_base: as_sreg(&sl.operands[1], sl)?,
                offset: as_imm(&sl.operands[2], equs, sl)?,
            })
        }
        unknown => Err(err(sl.line, format!("unknown mnemonic `{unknown}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::inst::Instruction as I;

    #[test]
    fn assembles_basic_program() {
        let src = "
            ; simple counting loop
            addi s1, s0, 0
            addi s2, s0, 10
        loop:
            addi s1, s1, 1
            bne  s1, s2, loop
            halt
        ";
        let p = assemble(src).expect("assembles");
        assert_eq!(p.len(), 5);
        assert!(matches!(p[3], I::Branch { target: 2, .. }));
        assert!(matches!(p[4], I::Halt));
    }

    #[test]
    fn labels_can_be_forward_references() {
        let src = "
            j end
            addi s1, s0, 1
        end: halt
        ";
        let p = assemble(src).expect("assembles");
        assert!(matches!(p[0], I::Jump { target: 2 }));
    }

    #[test]
    fn shift_accepts_register_or_immediate() {
        let p = assemble("sl s1, s2, 4\nsl s1, s2, s3\nhalt").expect("assembles");
        assert!(matches!(p[0], I::SAluImm { .. }));
        assert!(matches!(p[1], I::SAlu { .. }));
    }

    #[test]
    fn hex_and_negative_immediates() {
        let p = assemble("addi s1, s0, 0x10\naddi s2, s0, -5\nhalt").expect("assembles");
        assert!(matches!(p[0], I::SAluImm { imm: 16, .. }));
        assert!(matches!(p[1], I::SAluImm { imm: -5, .. }));
    }

    #[test]
    fn pqueue_fields_parse() {
        let p = assemble(
            "pqueue_load s1, s2, id\npqueue_load s1, s2, value\npqueue_load s1, s2, size\nhalt",
        )
        .expect("assembles");
        assert!(matches!(
            p[0],
            I::PqueueLoad {
                field: PqField::Id,
                ..
            }
        ));
        assert!(matches!(
            p[1],
            I::PqueueLoad {
                field: PqField::Value,
                ..
            }
        ));
        assert!(matches!(
            p[2],
            I::PqueueLoad {
                field: PqField::Size,
                ..
            }
        ));
    }

    #[test]
    fn vector_mnemonics_parse() {
        let p =
            assemble("vload v0, s1, 0\nvsub v0, v0, v1\nvmult v0, v0, v0\nvfxp v2, v0, v1\nhalt")
                .expect("assembles");
        assert!(matches!(p[0], I::VLoad { .. }));
        assert!(matches!(p[1], I::VAlu { op: AluOp::Sub, .. }));
        assert!(matches!(p[3], I::Vfxp { .. }));
    }

    #[test]
    fn undefined_label_is_an_error() {
        let e = assemble("j nowhere").expect_err("should fail");
        assert!(e.message.contains("undefined label"));
        assert_eq!(e.line, 1);
    }

    #[test]
    fn duplicate_label_is_an_error() {
        let e = assemble("a: halt\na: halt").expect_err("should fail");
        assert!(e.message.contains("duplicate label"));
    }

    #[test]
    fn unknown_mnemonic_reports_line() {
        let e = assemble("halt\nfrobnicate s1").expect_err("should fail");
        assert_eq!(e.line, 2);
        assert!(e.message.contains("frobnicate"));
    }

    #[test]
    fn wrong_operand_count_is_an_error() {
        let e = assemble("add s1, s2").expect_err("should fail");
        assert!(e.message.contains("expects 3"));
    }

    #[test]
    fn wrong_register_class_is_an_error() {
        let e = assemble("vadd s1, v1, v2").expect_err("should fail");
        assert!(e.message.contains("expected vector register"));
    }

    #[test]
    fn register_out_of_range_is_an_error() {
        let e = assemble("add s32, s0, s0").expect_err("should fail");
        assert!(e.message.contains("out of range"));
    }

    #[test]
    fn disassemble_then_reassemble_is_identity() {
        let src = "
        start:
            addi s1, s0, 0
            addi s3, s0, 0x100
        loop:
            vload v0, s3, 0
            vsub  v0, v0, v1
            vmult v0, v0, v0
            vadd  v2, v2, v0
            addi  s1, s1, 1
            blt   s1, s2, loop
            vsmove s4, v2, 0
            pqueue_insert s1, s4
            halt
        ";
        let p1 = assemble(src).expect("assembles");
        let text = disassemble(&p1);
        // Strip the index column before reassembling.
        let stripped: String = text
            .lines()
            .map(|l| l.split(':').nth(1).unwrap_or("").trim().to_string())
            .collect::<Vec<_>>()
            .join("\n");
        let p2 = assemble(&stripped).expect("reassembles");
        assert_eq!(p1, p2);
    }

    #[test]
    fn equ_constants_resolve_as_immediates() {
        let p = assemble(
            "
            .equ DIMS, 100
            .equ STEP, 0x10
            addi s1, s0, DIMS
            sl   s2, s1, STEP
            halt
        ",
        )
        .expect("assembles");
        assert!(matches!(p[0], I::SAluImm { imm: 100, .. }));
        assert!(matches!(p[1], I::SAluImm { imm: 16, .. }));
    }

    #[test]
    fn equ_can_be_defined_after_use() {
        let p = assemble(
            "addi s1, s0, LATER
.equ LATER, 7
halt",
        )
        .expect("assembles");
        assert!(matches!(p[0], I::SAluImm { imm: 7, .. }));
    }

    #[test]
    fn undefined_constant_is_an_error() {
        let e = assemble(
            "addi s1, s0, MYSTERY
halt",
        )
        .expect_err("should fail");
        assert!(e.message.contains("undefined constant"));
    }

    #[test]
    fn duplicate_constant_is_an_error() {
        let e = assemble(
            ".equ A, 1
.equ A, 2
halt",
        )
        .expect_err("should fail");
        assert!(e.message.contains("duplicate constant"));
    }

    #[test]
    fn malformed_equ_is_an_error() {
        assert!(assemble(".equ onlyname").is_err());
        assert!(assemble(".equ 5, 5").is_err());
        assert!(assemble(".equ NAME, s3").is_err());
    }

    #[test]
    fn equ_does_not_shift_labels() {
        let p = assemble(
            "
            .equ X, 1
        top:
            addi s1, s1, X
            .equ Y, 2
            bne s1, s2, top
            halt
        ",
        )
        .expect("assembles");
        assert!(matches!(p[1], I::Branch { target: 0, .. }));
    }

    #[test]
    fn multiple_labels_on_one_line() {
        let p = assemble("a: b: halt\nj a\nj b").expect("assembles");
        assert!(matches!(p[1], I::Jump { target: 0 }));
        assert!(matches!(p[2], I::Jump { target: 0 }));
    }

    #[test]
    fn comment_only_lines_are_skipped() {
        let p = assemble("; nothing\n   ; also nothing\nhalt").expect("assembles");
        assert_eq!(p.len(), 1);
    }
}
