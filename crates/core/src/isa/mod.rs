//! The SSAM processing-unit instruction set (paper Table II).
//!
//! The PU is a fully integrated scalar + vector machine in the spirit of
//! the CRAY-1 (the paper cites Russell '78): one instruction stream drives
//! a scalar datapath (index traversal, control) and a vector datapath
//! (distance calculations), because "at any given time a processing unit
//! will only be performing either distance calculations or index
//! traversals".
//!
//! Architectural parameters (Section III-C):
//! * 32 scalar registers (`s0`–`s31`, `s0` hardwired to zero),
//! * 8 vector registers (`v0`–`v7`) of 2/4/8/16 32-bit lanes,
//! * a 16-entry hardware priority queue (chainable for larger k),
//! * a hardware stack for backtracking traversals,
//! * a 32 KB scratchpad,
//! * Q16.16 fixed-point arithmetic (Section II-D: 32-bit fixed point shows
//!   negligible accuracy loss versus float).

pub mod encoding;
pub mod inst;
pub mod reg;

pub use inst::{Instruction, Opcode};
pub use reg::{SReg, VReg, NUM_SCALAR_REGS, NUM_VECTOR_REGS};

/// Supported vector lengths (the paper's design sweep).
pub const VECTOR_LENGTHS: [usize; 4] = [2, 4, 8, 16];

/// Scratchpad capacity in bytes (Section III-C: 32 KB).
pub const SCRATCHPAD_BYTES: usize = 32 * 1024;

/// Hardware priority-queue depth (Section III-C: 16 entries).
pub const PQUEUE_DEPTH: usize = 16;

/// Base byte address of the DRAM (vault) space in a PU's address map;
/// addresses below this fall in the scratchpad.
pub const DRAM_BASE: u32 = 0x1000_0000;
