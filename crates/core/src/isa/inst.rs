//! Instruction definitions (paper Table II).
//!
//! Instruction classes map one-to-one onto the paper's table:
//!
//! | Table II row                     | Here |
//! |----------------------------------|------|
//! | Arithmetic (S/V) `ADD SUB MULT POPCOUNT ADDI SUBI MULTI` | [`AluOp::Add`]/[`AluOp::Sub`]/[`AluOp::Mult`] reg/imm forms, [`UnaryOp::Popcount`] |
//! | Bitwise/Shift (S/V) `OR AND NOT XOR ANDI ORI XORI SR SL SRA` | [`AluOp`] bitwise/shift ops, [`UnaryOp::Not`] |
//! | Control (S) `BNE BGT BLT BE J`   | [`Instruction::Branch`], [`Instruction::Jump`] |
//! | Stack unit (S) `POP PUSH`        | [`Instruction::Pop`], [`Instruction::Push`] |
//! | Moves/Memory (S/V) `SVMOVE VSMOVE MEM_FETCH LOAD STORE` | [`Instruction::SvMove`], [`Instruction::VsMove`], [`Instruction::MemFetch`], scalar/vector load/store |
//! | New SSAM `PQUEUE_*`, `FXP`       | [`Instruction::PqueueInsert`]/[`Instruction::PqueueLoad`]/[`Instruction::PqueueReset`], [`Instruction::Sfxp`]/[`Instruction::Vfxp`] |
//!
//! `MULT` implements the PU's native Q16.16 fixed-point multiply
//! (`(a·b) >> 16` with a 64-bit intermediate); address arithmetic in
//! kernels uses shifts and adds, so no integer multiply is needed.
//! `HALT` terminates a kernel (the hardware raises "done" to the vault
//! controller); it is an assembler-level addition not listed in Table II.

use std::fmt;

use super::reg::{SReg, VReg};

/// Two-operand ALU operations, shared by scalar and vector datapaths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping 32-bit add.
    Add,
    /// Wrapping 32-bit subtract.
    Sub,
    /// Q16.16 fixed-point multiply: `(a as i64 * b as i64) >> 16`.
    Mult,
    /// Bitwise OR.
    Or,
    /// Bitwise AND.
    And,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left (by rs2/imm & 31).
    Sl,
    /// Logical shift right.
    Sr,
    /// Arithmetic shift right.
    Sra,
}

impl AluOp {
    /// Applies the operation to 32-bit operands.
    #[inline]
    pub fn eval(self, a: i32, b: i32) -> i32 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mult => (((a as i64) * (b as i64)) >> 16) as i32,
            AluOp::Or => a | b,
            AluOp::And => a & b,
            AluOp::Xor => a ^ b,
            AluOp::Sl => ((a as u32) << (b as u32 & 31)) as i32,
            AluOp::Sr => ((a as u32) >> (b as u32 & 31)) as i32,
            AluOp::Sra => a >> (b as u32 & 31),
        }
    }

    /// Assembly mnemonic stem (scalar form).
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mult => "mult",
            AluOp::Or => "or",
            AluOp::And => "and",
            AluOp::Xor => "xor",
            AluOp::Sl => "sl",
            AluOp::Sr => "sr",
            AluOp::Sra => "sra",
        }
    }
}

/// One-operand ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// Bitwise NOT.
    Not,
    /// Population count.
    Popcount,
}

impl UnaryOp {
    /// Applies the operation.
    #[inline]
    pub fn eval(self, a: i32) -> i32 {
        match self {
            UnaryOp::Not => !a,
            UnaryOp::Popcount => a.count_ones() as i32,
        }
    }

    /// Assembly mnemonic stem.
    pub fn mnemonic(self) -> &'static str {
        match self {
            UnaryOp::Not => "not",
            UnaryOp::Popcount => "popcount",
        }
    }
}

/// Branch conditions (`BNE`, `BGT`, `BLT`, `BE`). Comparisons are signed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchCond {
    /// Branch if not equal.
    Ne,
    /// Branch if `rs1 > rs2`.
    Gt,
    /// Branch if `rs1 < rs2`.
    Lt,
    /// Branch if equal.
    Eq,
}

impl BranchCond {
    /// Evaluates the condition.
    #[inline]
    pub fn eval(self, a: i32, b: i32) -> bool {
        match self {
            BranchCond::Ne => a != b,
            BranchCond::Gt => a > b,
            BranchCond::Lt => a < b,
            BranchCond::Eq => a == b,
        }
    }

    /// Assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BranchCond::Ne => "bne",
            BranchCond::Gt => "bgt",
            BranchCond::Lt => "blt",
            BranchCond::Eq => "be",
        }
    }
}

/// Field selector for `PQUEUE_LOAD` ("reads either the id or the value of
/// a tuple in the priority queue at a designated queue position").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PqField {
    /// The stored identifier.
    Id,
    /// The stored distance value.
    Value,
    /// Current occupancy (implementation extension used by kernels to read
    /// back partial results).
    Size,
}

/// One SSAM PU instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instruction {
    // ---- scalar datapath ----
    /// Scalar reg-reg ALU: `rd = op(rs1, rs2)`.
    SAlu {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: SReg,
        /// First source.
        rs1: SReg,
        /// Second source.
        rs2: SReg,
    },
    /// Scalar reg-imm ALU: `rd = op(rs1, imm)`.
    SAluImm {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: SReg,
        /// Source.
        rs1: SReg,
        /// Immediate operand.
        imm: i32,
    },
    /// Scalar unary ALU: `rd = op(rs1)`.
    SUnary {
        /// Operation.
        op: UnaryOp,
        /// Destination.
        rd: SReg,
        /// Source.
        rs1: SReg,
    },
    /// Conditional branch to an absolute instruction index.
    Branch {
        /// Condition.
        cond: BranchCond,
        /// Left comparand.
        rs1: SReg,
        /// Right comparand.
        rs2: SReg,
        /// Target instruction index.
        target: u32,
    },
    /// Unconditional jump to an absolute instruction index.
    Jump {
        /// Target instruction index.
        target: u32,
    },
    /// Push `rs1` onto the hardware stack.
    Push {
        /// Source register.
        rs1: SReg,
    },
    /// Pop the hardware stack into `rd`.
    Pop {
        /// Destination register.
        rd: SReg,
    },
    /// Insert the `(id, value)` pair `(rs_id, rs_val)` into the hardware
    /// priority queue.
    PqueueInsert {
        /// Register holding the candidate id.
        rs_id: SReg,
        /// Register holding the candidate distance.
        rs_val: SReg,
    },
    /// Read `field` of the queue entry at position `rs_idx` into `rd`.
    PqueueLoad {
        /// Destination register.
        rd: SReg,
        /// Register holding the queue position.
        rs_idx: SReg,
        /// Which field to read.
        field: PqField,
    },
    /// Clear the hardware priority queue.
    PqueueReset,
    /// Scalar fused xor-popcount: `rd = rd + popcount(rs1 ^ rs2)`.
    Sfxp {
        /// Accumulator (read-modify-write).
        rd: SReg,
        /// First source.
        rs1: SReg,
        /// Second source.
        rs2: SReg,
    },
    /// Scalar load: `rd = mem[rs_base + offset]` (word-addressed bytes).
    Load {
        /// Destination register.
        rd: SReg,
        /// Base address register.
        rs_base: SReg,
        /// Byte offset.
        offset: i32,
    },
    /// Scalar store: `mem[rs_base + offset] = rs_val`.
    Store {
        /// Value register.
        rs_val: SReg,
        /// Base address register.
        rs_base: SReg,
        /// Byte offset.
        offset: i32,
    },
    /// Prefetch `len` bytes starting at `rs_base` into the stream buffer.
    MemFetch {
        /// Base address register.
        rs_base: SReg,
        /// Bytes to prefetch.
        len: i32,
    },
    /// Scalar→vector move: broadcast `rs1` to all lanes of `vd` when
    /// `lane < 0`, else write lane `lane`.
    SvMove {
        /// Destination vector register.
        vd: VReg,
        /// Source scalar register.
        rs1: SReg,
        /// Lane index, or -1 for broadcast.
        lane: i8,
    },
    /// Vector→scalar move: `rd = vs1[lane]`.
    VsMove {
        /// Destination scalar register.
        rd: SReg,
        /// Source vector register.
        vs1: VReg,
        /// Lane index.
        lane: u8,
    },
    /// Stop execution (kernel complete).
    Halt,

    // ---- vector datapath ----
    /// Vector reg-reg ALU, per lane: `vd[l] = op(vs1[l], vs2[l])`.
    VAlu {
        /// Operation.
        op: AluOp,
        /// Destination.
        vd: VReg,
        /// First source.
        vs1: VReg,
        /// Second source.
        vs2: VReg,
    },
    /// Vector reg-imm ALU, per lane: `vd[l] = op(vs1[l], imm)`.
    VAluImm {
        /// Operation.
        op: AluOp,
        /// Destination.
        vd: VReg,
        /// Source.
        vs1: VReg,
        /// Immediate operand.
        imm: i32,
    },
    /// Vector unary ALU, per lane.
    VUnary {
        /// Operation.
        op: UnaryOp,
        /// Destination.
        vd: VReg,
        /// Source.
        vs1: VReg,
    },
    /// Vector fused xor-popcount, per lane:
    /// `vd[l] = vd[l] + popcount(vs1[l] ^ vs2[l])` — 32 binary dimensions
    /// per lane per cycle (Section III-C).
    Vfxp {
        /// Accumulator vector register (read-modify-write).
        vd: VReg,
        /// First source.
        vs1: VReg,
        /// Second source.
        vs2: VReg,
    },
    /// Vector load: `vd[l] = mem[rs_base + offset + 4·l]`.
    VLoad {
        /// Destination vector register.
        vd: VReg,
        /// Base address register.
        rs_base: SReg,
        /// Byte offset.
        offset: i32,
    },
    /// Vector store: `mem[rs_base + offset + 4·l] = vs[l]`.
    VStore {
        /// Source vector register.
        vs: VReg,
        /// Base address register.
        rs_base: SReg,
        /// Byte offset.
        offset: i32,
    },
}

impl Instruction {
    /// True for instructions executed on the vector datapath.
    pub fn is_vector(&self) -> bool {
        matches!(
            self,
            Instruction::VAlu { .. }
                | Instruction::VAluImm { .. }
                | Instruction::VUnary { .. }
                | Instruction::Vfxp { .. }
                | Instruction::VLoad { .. }
                | Instruction::VStore { .. }
                | Instruction::SvMove { .. }
                | Instruction::VsMove { .. }
        )
    }

    /// True for loads/stores/prefetches (either datapath).
    pub fn is_memory(&self) -> bool {
        matches!(
            self,
            Instruction::Load { .. }
                | Instruction::Store { .. }
                | Instruction::VLoad { .. }
                | Instruction::VStore { .. }
                | Instruction::MemFetch { .. }
        )
    }

    /// True for control-flow instructions.
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Instruction::Branch { .. } | Instruction::Jump { .. } | Instruction::Halt
        )
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Instruction::*;
        match *self {
            SAlu { op, rd, rs1, rs2 } => write!(f, "{} {rd}, {rs1}, {rs2}", op.mnemonic()),
            SAluImm { op, rd, rs1, imm } => write!(f, "{}i {rd}, {rs1}, {imm}", op.mnemonic()),
            SUnary { op, rd, rs1 } => write!(f, "{} {rd}, {rs1}", op.mnemonic()),
            Branch {
                cond,
                rs1,
                rs2,
                target,
            } => {
                write!(f, "{} {rs1}, {rs2}, {target}", cond.mnemonic())
            }
            Jump { target } => write!(f, "j {target}"),
            Push { rs1 } => write!(f, "push {rs1}"),
            Pop { rd } => write!(f, "pop {rd}"),
            PqueueInsert { rs_id, rs_val } => write!(f, "pqueue_insert {rs_id}, {rs_val}"),
            PqueueLoad { rd, rs_idx, field } => {
                let fieldname = match field {
                    PqField::Id => "id",
                    PqField::Value => "value",
                    PqField::Size => "size",
                };
                write!(f, "pqueue_load {rd}, {rs_idx}, {fieldname}")
            }
            PqueueReset => write!(f, "pqueue_reset"),
            Sfxp { rd, rs1, rs2 } => write!(f, "sfxp {rd}, {rs1}, {rs2}"),
            Load {
                rd,
                rs_base,
                offset,
            } => write!(f, "load {rd}, {rs_base}, {offset}"),
            Store {
                rs_val,
                rs_base,
                offset,
            } => write!(f, "store {rs_val}, {rs_base}, {offset}"),
            MemFetch { rs_base, len } => write!(f, "mem_fetch {rs_base}, {len}"),
            SvMove { vd, rs1, lane } => write!(f, "svmove {vd}, {rs1}, {lane}"),
            VsMove { rd, vs1, lane } => write!(f, "vsmove {rd}, {vs1}, {lane}"),
            Halt => write!(f, "halt"),
            VAlu { op, vd, vs1, vs2 } => write!(f, "v{} {vd}, {vs1}, {vs2}", op.mnemonic()),
            VAluImm { op, vd, vs1, imm } => write!(f, "v{}i {vd}, {vs1}, {imm}", op.mnemonic()),
            VUnary { op, vd, vs1 } => write!(f, "v{} {vd}, {vs1}", op.mnemonic()),
            Vfxp { vd, vs1, vs2 } => write!(f, "vfxp {vd}, {vs1}, {vs2}"),
            VLoad {
                vd,
                rs_base,
                offset,
            } => write!(f, "vload {vd}, {rs_base}, {offset}"),
            VStore {
                vs,
                rs_base,
                offset,
            } => write!(f, "vstore {vs}, {rs_base}, {offset}"),
        }
    }
}

/// Numeric opcode identifiers used by the binary encoding (one per
/// instruction *shape*; ALU/branch subops are encoded in a field).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
#[allow(missing_docs)]
pub enum Opcode {
    SAlu = 0,
    SAluImm = 1,
    SUnary = 2,
    Branch = 3,
    Jump = 4,
    Push = 5,
    Pop = 6,
    PqueueInsert = 7,
    PqueueLoad = 8,
    PqueueReset = 9,
    Sfxp = 10,
    Load = 11,
    Store = 12,
    MemFetch = 13,
    SvMove = 14,
    VsMove = 15,
    Halt = 16,
    VAlu = 17,
    VAluImm = 18,
    VUnary = 19,
    Vfxp = 20,
    VLoad = 21,
    VStore = 22,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_semantics() {
        assert_eq!(AluOp::Add.eval(3, 4), 7);
        assert_eq!(AluOp::Sub.eval(3, 4), -1);
        assert_eq!(AluOp::Add.eval(i32::MAX, 1), i32::MIN); // wrapping
        assert_eq!(AluOp::Or.eval(0b1010, 0b0101), 0b1111);
        assert_eq!(AluOp::And.eval(0b1100, 0b1010), 0b1000);
        assert_eq!(AluOp::Xor.eval(0b1100, 0b1010), 0b0110);
        assert_eq!(AluOp::Sl.eval(1, 4), 16);
        assert_eq!(AluOp::Sr.eval(-1, 28), 0xF);
        assert_eq!(AluOp::Sra.eval(-16, 2), -4);
    }

    #[test]
    fn mult_is_q16_16() {
        let one_half = 1 << 15; // 0.5 in Q16.16
        let two = 2 << 16;
        assert_eq!(AluOp::Mult.eval(one_half, two), 1 << 16); // 0.5*2 = 1.0
                                                              // Large squares use the 64-bit intermediate.
        let d = 3 << 16; // 3.0
        assert_eq!(AluOp::Mult.eval(d, d), 9 << 16);
    }

    #[test]
    fn shift_amount_masks_to_five_bits() {
        assert_eq!(AluOp::Sl.eval(1, 33), 2);
    }

    #[test]
    fn unary_semantics() {
        assert_eq!(UnaryOp::Not.eval(0), -1);
        assert_eq!(UnaryOp::Popcount.eval(0b1011), 3);
        assert_eq!(UnaryOp::Popcount.eval(-1), 32);
    }

    #[test]
    fn branch_semantics_are_signed() {
        assert!(BranchCond::Lt.eval(-5, 3));
        assert!(!BranchCond::Gt.eval(-5, 3));
        assert!(BranchCond::Ne.eval(1, 2));
        assert!(BranchCond::Eq.eval(7, 7));
    }

    #[test]
    fn classification() {
        let v = Instruction::VAlu {
            op: AluOp::Add,
            vd: VReg::new(0),
            vs1: VReg::new(1),
            vs2: VReg::new(2),
        };
        assert!(v.is_vector());
        assert!(!v.is_memory());
        let l = Instruction::VLoad {
            vd: VReg::new(0),
            rs_base: SReg::new(1),
            offset: 0,
        };
        assert!(l.is_vector() && l.is_memory());
        assert!(Instruction::Halt.is_control());
    }

    #[test]
    fn display_round_trips_mnemonics() {
        let i = Instruction::SAluImm {
            op: AluOp::Add,
            rd: SReg::new(1),
            rs1: SReg::new(2),
            imm: -3,
        };
        assert_eq!(i.to_string(), "addi s1, s2, -3");
        let f = Instruction::Vfxp {
            vd: VReg::new(1),
            vs1: VReg::new(2),
            vs2: VReg::new(3),
        };
        assert_eq!(f.to_string(), "vfxp v1, v2, v3");
    }
}
