//! Register identifiers.

use std::fmt;

/// Number of scalar registers ("32 scalar registers … are sufficient").
pub const NUM_SCALAR_REGS: usize = 32;
/// Number of vector registers ("8 vector registers").
pub const NUM_VECTOR_REGS: usize = 8;

/// A scalar register `s0`–`s31`; `s0` reads as zero and ignores writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SReg(pub u8);

/// A vector register `v0`–`v7`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VReg(pub u8);

impl SReg {
    /// The hardwired-zero register.
    pub const ZERO: SReg = SReg(0);

    /// Validated constructor.
    ///
    /// # Panics
    /// Panics if `i >= 32`.
    pub fn new(i: u8) -> Self {
        assert!(
            (i as usize) < NUM_SCALAR_REGS,
            "scalar register s{i} out of range"
        );
        SReg(i)
    }

    /// Index into the register file.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl VReg {
    /// Validated constructor.
    ///
    /// # Panics
    /// Panics if `i >= 8`.
    pub fn new(i: u8) -> Self {
        assert!(
            (i as usize) < NUM_VECTOR_REGS,
            "vector register v{i} out of range"
        );
        VReg(i)
    }

    /// Index into the register file.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl fmt::Display for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(SReg::new(7).to_string(), "s7");
        assert_eq!(VReg::new(3).to_string(), "v3");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn scalar_register_bounds() {
        let _ = SReg::new(32);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn vector_register_bounds() {
        let _ = VReg::new(8);
    }

    #[test]
    fn zero_register_is_s0() {
        assert_eq!(SReg::ZERO, SReg::new(0));
    }
}
