//! Binary instruction encoding.
//!
//! Instructions encode to a fixed 64-bit word:
//!
//! ```text
//!  63      56 55      48 47      40 39      32 31               0
//! +----------+----------+----------+----------+------------------+
//! |  opcode  |  sub/fa  |    a     |    b     |   imm (i32)      |
//! +----------+----------+----------+----------+------------------+
//! ```
//!
//! `opcode` is the instruction shape ([`Opcode`]), `sub` carries the ALU
//! op / branch condition / queue field, `a`/`b` are register numbers (or
//! the third register packed into `sub` for three-register shapes), and
//! `imm` holds immediates, offsets, branch targets, and lane indices.
//! Instruction memories on each PU hold these words ("execution binaries
//! are written to instruction memories on each processing unit",
//! Section III-D).

use super::inst::{AluOp, BranchCond, Instruction, Opcode, PqField, UnaryOp};
use super::reg::{SReg, VReg};

/// Error from [`decode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Unknown opcode byte.
    BadOpcode(u8),
    /// Unknown sub-operation byte for the given opcode.
    BadSubOp(u8),
    /// Register field out of range.
    BadRegister(u8),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadOpcode(b) => write!(f, "unknown opcode byte {b:#x}"),
            DecodeError::BadSubOp(b) => write!(f, "unknown sub-op byte {b:#x}"),
            DecodeError::BadRegister(b) => write!(f, "register field {b} out of range"),
        }
    }
}

impl std::error::Error for DecodeError {}

fn alu_code(op: AluOp) -> u8 {
    match op {
        AluOp::Add => 0,
        AluOp::Sub => 1,
        AluOp::Mult => 2,
        AluOp::Or => 3,
        AluOp::And => 4,
        AluOp::Xor => 5,
        AluOp::Sl => 6,
        AluOp::Sr => 7,
        AluOp::Sra => 8,
    }
}

fn alu_from(code: u8) -> Result<AluOp, DecodeError> {
    Ok(match code {
        0 => AluOp::Add,
        1 => AluOp::Sub,
        2 => AluOp::Mult,
        3 => AluOp::Or,
        4 => AluOp::And,
        5 => AluOp::Xor,
        6 => AluOp::Sl,
        7 => AluOp::Sr,
        8 => AluOp::Sra,
        b => return Err(DecodeError::BadSubOp(b)),
    })
}

fn unary_code(op: UnaryOp) -> u8 {
    match op {
        UnaryOp::Not => 0,
        UnaryOp::Popcount => 1,
    }
}

fn unary_from(code: u8) -> Result<UnaryOp, DecodeError> {
    Ok(match code {
        0 => UnaryOp::Not,
        1 => UnaryOp::Popcount,
        b => return Err(DecodeError::BadSubOp(b)),
    })
}

fn cond_code(c: BranchCond) -> u8 {
    match c {
        BranchCond::Ne => 0,
        BranchCond::Gt => 1,
        BranchCond::Lt => 2,
        BranchCond::Eq => 3,
    }
}

fn cond_from(code: u8) -> Result<BranchCond, DecodeError> {
    Ok(match code {
        0 => BranchCond::Ne,
        1 => BranchCond::Gt,
        2 => BranchCond::Lt,
        3 => BranchCond::Eq,
        b => return Err(DecodeError::BadSubOp(b)),
    })
}

fn field_code(f: PqField) -> u8 {
    match f {
        PqField::Id => 0,
        PqField::Value => 1,
        PqField::Size => 2,
    }
}

fn field_from(code: u8) -> Result<PqField, DecodeError> {
    Ok(match code {
        0 => PqField::Id,
        1 => PqField::Value,
        2 => PqField::Size,
        b => return Err(DecodeError::BadSubOp(b)),
    })
}

#[inline]
fn pack(op: Opcode, sub: u8, a: u8, b: u8, imm: i32) -> u64 {
    ((op as u64) << 56)
        | ((sub as u64) << 48)
        | ((a as u64) << 40)
        | ((b as u64) << 32)
        | (imm as u32 as u64)
}

fn sreg(b: u8) -> Result<SReg, DecodeError> {
    if (b as usize) < super::reg::NUM_SCALAR_REGS {
        Ok(SReg(b))
    } else {
        Err(DecodeError::BadRegister(b))
    }
}

fn vreg(b: u8) -> Result<VReg, DecodeError> {
    if (b as usize) < super::reg::NUM_VECTOR_REGS {
        Ok(VReg(b))
    } else {
        Err(DecodeError::BadRegister(b))
    }
}

/// Encodes an instruction to its 64-bit word.
pub fn encode(inst: &Instruction) -> u64 {
    use Instruction::*;
    match *inst {
        SAlu { op, rd, rs1, rs2 } => pack(Opcode::SAlu, alu_code(op), rd.0, rs1.0, rs2.0 as i32),
        SAluImm { op, rd, rs1, imm } => pack(Opcode::SAluImm, alu_code(op), rd.0, rs1.0, imm),
        SUnary { op, rd, rs1 } => pack(Opcode::SUnary, unary_code(op), rd.0, rs1.0, 0),
        Branch {
            cond,
            rs1,
            rs2,
            target,
        } => pack(Opcode::Branch, cond_code(cond), rs1.0, rs2.0, target as i32),
        Jump { target } => pack(Opcode::Jump, 0, 0, 0, target as i32),
        Push { rs1 } => pack(Opcode::Push, 0, rs1.0, 0, 0),
        Pop { rd } => pack(Opcode::Pop, 0, rd.0, 0, 0),
        PqueueInsert { rs_id, rs_val } => pack(Opcode::PqueueInsert, 0, rs_id.0, rs_val.0, 0),
        PqueueLoad { rd, rs_idx, field } => {
            pack(Opcode::PqueueLoad, field_code(field), rd.0, rs_idx.0, 0)
        }
        PqueueReset => pack(Opcode::PqueueReset, 0, 0, 0, 0),
        Sfxp { rd, rs1, rs2 } => pack(Opcode::Sfxp, 0, rd.0, rs1.0, rs2.0 as i32),
        Load {
            rd,
            rs_base,
            offset,
        } => pack(Opcode::Load, 0, rd.0, rs_base.0, offset),
        Store {
            rs_val,
            rs_base,
            offset,
        } => pack(Opcode::Store, 0, rs_val.0, rs_base.0, offset),
        MemFetch { rs_base, len } => pack(Opcode::MemFetch, 0, rs_base.0, 0, len),
        SvMove { vd, rs1, lane } => pack(Opcode::SvMove, 0, vd.0, rs1.0, lane as i32),
        VsMove { rd, vs1, lane } => pack(Opcode::VsMove, 0, rd.0, vs1.0, lane as i32),
        Halt => pack(Opcode::Halt, 0, 0, 0, 0),
        VAlu { op, vd, vs1, vs2 } => pack(Opcode::VAlu, alu_code(op), vd.0, vs1.0, vs2.0 as i32),
        VAluImm { op, vd, vs1, imm } => pack(Opcode::VAluImm, alu_code(op), vd.0, vs1.0, imm),
        VUnary { op, vd, vs1 } => pack(Opcode::VUnary, unary_code(op), vd.0, vs1.0, 0),
        Vfxp { vd, vs1, vs2 } => pack(Opcode::Vfxp, 0, vd.0, vs1.0, vs2.0 as i32),
        VLoad {
            vd,
            rs_base,
            offset,
        } => pack(Opcode::VLoad, 0, vd.0, rs_base.0, offset),
        VStore {
            vs,
            rs_base,
            offset,
        } => pack(Opcode::VStore, 0, vs.0, rs_base.0, offset),
    }
}

/// Decodes a 64-bit word back to an instruction.
pub fn decode(word: u64) -> Result<Instruction, DecodeError> {
    let opbyte = (word >> 56) as u8;
    let sub = (word >> 48) as u8;
    let a = (word >> 40) as u8;
    let b = (word >> 32) as u8;
    let imm = word as u32 as i32;
    use Instruction as I;
    Ok(match opbyte {
        x if x == Opcode::SAlu as u8 => I::SAlu {
            op: alu_from(sub)?,
            rd: sreg(a)?,
            rs1: sreg(b)?,
            rs2: sreg(imm as u8)?,
        },
        x if x == Opcode::SAluImm as u8 => I::SAluImm {
            op: alu_from(sub)?,
            rd: sreg(a)?,
            rs1: sreg(b)?,
            imm,
        },
        x if x == Opcode::SUnary as u8 => I::SUnary {
            op: unary_from(sub)?,
            rd: sreg(a)?,
            rs1: sreg(b)?,
        },
        x if x == Opcode::Branch as u8 => I::Branch {
            cond: cond_from(sub)?,
            rs1: sreg(a)?,
            rs2: sreg(b)?,
            target: imm as u32,
        },
        x if x == Opcode::Jump as u8 => I::Jump { target: imm as u32 },
        x if x == Opcode::Push as u8 => I::Push { rs1: sreg(a)? },
        x if x == Opcode::Pop as u8 => I::Pop { rd: sreg(a)? },
        x if x == Opcode::PqueueInsert as u8 => I::PqueueInsert {
            rs_id: sreg(a)?,
            rs_val: sreg(b)?,
        },
        x if x == Opcode::PqueueLoad as u8 => I::PqueueLoad {
            rd: sreg(a)?,
            rs_idx: sreg(b)?,
            field: field_from(sub)?,
        },
        x if x == Opcode::PqueueReset as u8 => I::PqueueReset,
        x if x == Opcode::Sfxp as u8 => I::Sfxp {
            rd: sreg(a)?,
            rs1: sreg(b)?,
            rs2: sreg(imm as u8)?,
        },
        x if x == Opcode::Load as u8 => I::Load {
            rd: sreg(a)?,
            rs_base: sreg(b)?,
            offset: imm,
        },
        x if x == Opcode::Store as u8 => I::Store {
            rs_val: sreg(a)?,
            rs_base: sreg(b)?,
            offset: imm,
        },
        x if x == Opcode::MemFetch as u8 => I::MemFetch {
            rs_base: sreg(a)?,
            len: imm,
        },
        x if x == Opcode::SvMove as u8 => I::SvMove {
            vd: vreg(a)?,
            rs1: sreg(b)?,
            lane: imm as i8,
        },
        x if x == Opcode::VsMove as u8 => I::VsMove {
            rd: sreg(a)?,
            vs1: vreg(b)?,
            lane: imm as u8,
        },
        x if x == Opcode::Halt as u8 => I::Halt,
        x if x == Opcode::VAlu as u8 => I::VAlu {
            op: alu_from(sub)?,
            vd: vreg(a)?,
            vs1: vreg(b)?,
            vs2: vreg(imm as u8)?,
        },
        x if x == Opcode::VAluImm as u8 => I::VAluImm {
            op: alu_from(sub)?,
            vd: vreg(a)?,
            vs1: vreg(b)?,
            imm,
        },
        x if x == Opcode::VUnary as u8 => I::VUnary {
            op: unary_from(sub)?,
            vd: vreg(a)?,
            vs1: vreg(b)?,
        },
        x if x == Opcode::Vfxp as u8 => I::Vfxp {
            vd: vreg(a)?,
            vs1: vreg(b)?,
            vs2: vreg(imm as u8)?,
        },
        x if x == Opcode::VLoad as u8 => I::VLoad {
            vd: vreg(a)?,
            rs_base: sreg(b)?,
            offset: imm,
        },
        x if x == Opcode::VStore as u8 => I::VStore {
            vs: vreg(a)?,
            rs_base: sreg(b)?,
            offset: imm,
        },
        other => return Err(DecodeError::BadOpcode(other)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::inst::{AluOp, BranchCond, PqField, UnaryOp};

    fn all_shapes() -> Vec<Instruction> {
        use Instruction::*;
        vec![
            SAlu {
                op: AluOp::Mult,
                rd: SReg(1),
                rs1: SReg(2),
                rs2: SReg(3),
            },
            SAluImm {
                op: AluOp::Sra,
                rd: SReg(31),
                rs1: SReg(0),
                imm: -12345,
            },
            SUnary {
                op: UnaryOp::Popcount,
                rd: SReg(4),
                rs1: SReg(5),
            },
            Branch {
                cond: BranchCond::Gt,
                rs1: SReg(6),
                rs2: SReg(7),
                target: 99,
            },
            Jump { target: 1234 },
            Push { rs1: SReg(8) },
            Pop { rd: SReg(9) },
            PqueueInsert {
                rs_id: SReg(10),
                rs_val: SReg(11),
            },
            PqueueLoad {
                rd: SReg(12),
                rs_idx: SReg(13),
                field: PqField::Value,
            },
            PqueueReset,
            Sfxp {
                rd: SReg(14),
                rs1: SReg(15),
                rs2: SReg(16),
            },
            Load {
                rd: SReg(17),
                rs_base: SReg(18),
                offset: -64,
            },
            Store {
                rs_val: SReg(19),
                rs_base: SReg(20),
                offset: 4096,
            },
            MemFetch {
                rs_base: SReg(21),
                len: 1 << 20,
            },
            SvMove {
                vd: VReg(1),
                rs1: SReg(22),
                lane: -1,
            },
            VsMove {
                rd: SReg(23),
                vs1: VReg(2),
                lane: 15,
            },
            Halt,
            VAlu {
                op: AluOp::Xor,
                vd: VReg(3),
                vs1: VReg(4),
                vs2: VReg(5),
            },
            VAluImm {
                op: AluOp::Sl,
                vd: VReg(6),
                vs1: VReg(7),
                imm: 16,
            },
            VUnary {
                op: UnaryOp::Not,
                vd: VReg(0),
                vs1: VReg(1),
            },
            Vfxp {
                vd: VReg(2),
                vs1: VReg(3),
                vs2: VReg(4),
            },
            VLoad {
                vd: VReg(5),
                rs_base: SReg(24),
                offset: 128,
            },
            VStore {
                vs: VReg(6),
                rs_base: SReg(25),
                offset: -4,
            },
        ]
    }

    #[test]
    fn every_shape_round_trips() {
        for inst in all_shapes() {
            let word = encode(&inst);
            let back = decode(word).expect("decodes");
            assert_eq!(back, inst, "round-trip failed for {inst}");
        }
    }

    #[test]
    fn bad_opcode_rejected() {
        assert!(matches!(
            decode(0xFF << 56),
            Err(DecodeError::BadOpcode(0xFF))
        ));
    }

    #[test]
    fn bad_register_rejected() {
        // SAlu with rd = 40 (out of range).
        let word = pack(Opcode::SAlu, 0, 40, 0, 0);
        assert!(matches!(decode(word), Err(DecodeError::BadRegister(40))));
    }

    #[test]
    fn bad_subop_rejected() {
        let word = pack(Opcode::SAlu, 99, 0, 0, 0);
        assert!(matches!(decode(word), Err(DecodeError::BadSubOp(99))));
    }

    #[test]
    fn negative_immediates_survive() {
        let i = Instruction::SAluImm {
            op: AluOp::Add,
            rd: SReg(1),
            rs1: SReg(1),
            imm: i32::MIN,
        };
        assert_eq!(decode(encode(&i)).expect("decodes"), i);
    }

    #[test]
    fn encodings_are_distinct() {
        let words: Vec<u64> = all_shapes().iter().map(encode).collect();
        let mut sorted = words.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), words.len());
    }
}
