//! Accelerator area model, calibrated to the paper's Table IV.
//!
//! Post-place-and-route area per module of the SSAM acceleration logic,
//! normalized to 28 nm, for each vector-length design point. "A large
//! portion of the accelerator design is devoted to the SRAMs composing the
//! scratchpad memory. However, relative to the CPU or GPU, the SSAM
//! acceleration logic is still significantly smaller." (Section V-A.)

/// Per-module area in mm² at 28 nm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModuleArea {
    /// Priority-queue unit.
    pub pqueue: f64,
    /// Stack unit.
    pub stack: f64,
    /// Scalar + vector ALUs.
    pub alus: f64,
    /// Scratchpad SRAM.
    pub scratchpad: f64,
    /// Register files.
    pub regfiles: f64,
    /// Instruction memory.
    pub ins_memory: f64,
    /// Pipeline registers and control.
    pub pipeline: f64,
}

impl ModuleArea {
    /// Total accelerator-logic area.
    pub fn total(&self) -> f64 {
        self.pqueue
            + self.stack
            + self.alus
            + self.scratchpad
            + self.regfiles
            + self.ins_memory
            + self.pipeline
    }
}

/// Calibrated module areas per vector length (paper Table IV).
pub fn module_area(vl: usize) -> ModuleArea {
    match vl {
        2 => ModuleArea {
            pqueue: 1.07,
            stack: 0.52,
            alus: 1.20,
            scratchpad: 20.70,
            regfiles: 1.35,
            ins_memory: 4.76,
            pipeline: 0.92,
        },
        4 => ModuleArea {
            pqueue: 1.06,
            stack: 0.52,
            alus: 1.65,
            scratchpad: 27.28,
            regfiles: 1.78,
            ins_memory: 4.76,
            pipeline: 1.29,
        },
        8 => ModuleArea {
            pqueue: 1.04,
            stack: 0.51,
            alus: 3.55,
            scratchpad: 43.53,
            regfiles: 2.64,
            ins_memory: 4.76,
            pipeline: 2.18,
        },
        16 => ModuleArea {
            pqueue: 1.04,
            stack: 0.51,
            alus: 6.79,
            scratchpad: 76.26,
            regfiles: 4.33,
            ins_memory: 4.76,
            pipeline: 3.79,
        },
        other => panic!("no Table IV calibration for vector length {other}"),
    }
}

/// Scales an area from `from_nm` to `to_nm` with the linear-per-dimension
/// factor the paper uses ("normalized to 28 nm technology using linear
/// scaling factors"): area scales with the square of feature size.
pub fn scale_area(area_mm2: f64, from_nm: f64, to_nm: f64) -> f64 {
    area_mm2 * (to_nm / from_nm).powi(2)
}

/// HMC 1.0 logic-die area quoted by the paper: 729 mm² at 90 nm, ≈ 70.6
/// mm² normalized to 28 nm — "roughly the same or larger than our SSAM
/// accelerator design".
pub fn hmc_die_area_28nm() -> f64 {
    scale_area(729.0, 90.0, 28.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_matches_paper_table_iv() {
        assert_eq!(module_area(2).scratchpad, 20.70);
        assert_eq!(module_area(16).alus, 6.79);
        // Row sums match the paper's printed totals.
        assert!((module_area(2).total() - 30.52).abs() < 1e-9);
        assert!((module_area(4).total() - 38.34).abs() < 1e-9);
        assert!((module_area(8).total() - 58.21).abs() < 1e-9);
        assert!((module_area(16).total() - 97.48).abs() < 1e-9);
    }

    #[test]
    fn scratchpad_dominates_area() {
        for vl in [2, 4, 8, 16] {
            let a = module_area(vl);
            assert!(a.scratchpad > 0.5 * a.total(), "VL={vl}");
        }
    }

    #[test]
    fn area_grows_with_vector_length() {
        let t: Vec<f64> = [2, 4, 8, 16]
            .iter()
            .map(|&v| module_area(v).total())
            .collect();
        for w in t.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn technology_scaling_is_quadratic() {
        assert!((scale_area(100.0, 65.0, 28.0) - 100.0 * (28.0f64 / 65.0).powi(2)).abs() < 1e-12);
    }

    #[test]
    fn hmc_die_normalization_matches_paper() {
        // Paper: "normalized to a 28 nm process, the die size would be
        // ≈ 70.6 mm²".
        assert!((hmc_die_area_28nm() - 70.56).abs() < 0.1);
    }

    #[test]
    #[should_panic(expected = "no Table IV calibration")]
    fn uncalibrated_vl_panics() {
        let _ = module_area(5);
    }
}
