//! Accelerator power/energy model, calibrated to the paper's Table III.
//!
//! The paper measured power with Synopsys PrimeTime over activity traces
//! from real datasets ("we generate traces from real datasets to measure
//! realistic activity factors"), normalized to 28 nm. We cannot rerun
//! PrimeTime, so the per-module numbers of Table III are taken as the
//! calibrated *peak* module powers; effective kernel power scales each
//! module by an activity factor derived from simulation statistics, and
//! energy is `power × simulated time` — the same product the paper
//! computes ("multiply by the simulated run time to obtain energy
//! efficiency estimates").
//!
//! Units follow the paper's table (its header prints µW; the magnitudes
//! are consistent with mW for a design of this size, and only *ratios*
//! matter for the energy-efficiency comparisons, which are normalized).

use crate::sim::RunStats;

/// Per-module power, in Table III units (mW).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModulePower {
    /// Priority-queue unit.
    pub pqueue: f64,
    /// Stack unit.
    pub stack: f64,
    /// Scalar + vector ALUs.
    pub alus: f64,
    /// Scratchpad SRAM.
    pub scratchpad: f64,
    /// Scalar + vector register files.
    pub regfiles: f64,
    /// Instruction memory.
    pub ins_memory: f64,
    /// Pipeline registers and control.
    pub pipeline: f64,
}

impl ModulePower {
    /// Sum over modules.
    pub fn total(&self) -> f64 {
        self.pqueue
            + self.stack
            + self.alus
            + self.scratchpad
            + self.regfiles
            + self.ins_memory
            + self.pipeline
    }
}

/// Calibrated peak module powers per vector length (paper Table III).
pub fn module_power(vl: usize) -> ModulePower {
    match vl {
        2 => ModulePower {
            pqueue: 1.63,
            stack: 1.02,
            alus: 0.33,
            scratchpad: 1.92,
            regfiles: 2.52,
            ins_memory: 0.45,
            pipeline: 2.28,
        },
        4 => ModulePower {
            pqueue: 1.56,
            stack: 1.00,
            alus: 0.32,
            scratchpad: 2.16,
            regfiles: 3.24,
            ins_memory: 0.44,
            pipeline: 2.82,
        },
        8 => ModulePower {
            pqueue: 1.42,
            stack: 1.02,
            alus: 0.32,
            scratchpad: 2.58,
            regfiles: 4.68,
            ins_memory: 0.44,
            pipeline: 4.28,
        },
        16 => ModulePower {
            pqueue: 1.45,
            stack: 0.84,
            alus: 0.51,
            scratchpad: 3.80,
            regfiles: 6.97,
            ins_memory: 0.41,
            pipeline: 7.09,
        },
        other => panic!("no Table III calibration for vector length {other}"),
    }
}

/// Per-module switching activity in `[0, 1]`, derived from a kernel run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Activity {
    /// Priority-queue unit activity.
    pub pqueue: f64,
    /// Stack unit activity.
    pub stack: f64,
    /// ALU activity.
    pub alus: f64,
    /// Scratchpad activity.
    pub scratchpad: f64,
    /// Register-file activity.
    pub regfiles: f64,
    /// Instruction-memory activity (one fetch per instruction).
    pub ins_memory: f64,
    /// Pipeline/control activity.
    pub pipeline: f64,
}

impl Activity {
    /// Full-rate activity (prints Table III verbatim).
    pub fn peak() -> Self {
        Self {
            pqueue: 1.0,
            stack: 1.0,
            alus: 1.0,
            scratchpad: 1.0,
            regfiles: 1.0,
            ins_memory: 1.0,
            pipeline: 1.0,
        }
    }

    /// Derives activity factors from simulation statistics: each module's
    /// operations per cycle, clamped to 1.
    pub fn from_stats(stats: &RunStats) -> Self {
        let cyc = stats.cycles.max(1) as f64;
        let clamp = |x: f64| x.min(1.0);
        Self {
            pqueue: clamp(stats.pqueue_ops as f64 / cyc),
            stack: clamp(stats.stack_ops as f64 / cyc),
            alus: clamp((stats.scalar_alu_ops + stats.vector_ops) as f64 / cyc),
            scratchpad: clamp(stats.scratchpad_accesses as f64 / cyc),
            regfiles: clamp(stats.regfile_accesses as f64 / (3.0 * cyc)),
            ins_memory: clamp(stats.instructions as f64 / cyc),
            pipeline: clamp(stats.instructions as f64 / cyc),
        }
    }
}

/// Fraction of each module's peak power burned regardless of activity
/// (clock tree, leakage). Keeps idle modules from reading as free.
const STATIC_FRACTION: f64 = 0.3;

/// Effective PU power in Table III units for a given vector length and
/// activity profile.
pub fn effective_power(vl: usize, activity: &Activity) -> f64 {
    let p = module_power(vl);
    let blend = |peak: f64, act: f64| peak * (STATIC_FRACTION + (1.0 - STATIC_FRACTION) * act);
    blend(p.pqueue, activity.pqueue)
        + blend(p.stack, activity.stack)
        + blend(p.alus, activity.alus)
        + blend(p.scratchpad, activity.scratchpad)
        + blend(p.regfiles, activity.regfiles)
        + blend(p.ins_memory, activity.ins_memory)
        + blend(p.pipeline, activity.pipeline)
}

/// Energy in millijoules for a kernel run at `freq_hz`: effective power ×
/// simulated time.
pub fn kernel_energy_mj(vl: usize, stats: &RunStats, freq_hz: f64) -> f64 {
    let act = Activity::from_stats(stats);
    let power_mw = effective_power(vl, &act);
    let seconds = stats.cycles as f64 / freq_hz;
    power_mw * seconds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_matches_paper_table_iii() {
        let p2 = module_power(2);
        assert_eq!(p2.pqueue, 1.63);
        assert_eq!(p2.regfiles, 2.52);
        let p16 = module_power(16);
        assert_eq!(p16.pipeline, 7.09);
        assert_eq!(p16.scratchpad, 3.80);
    }

    #[test]
    fn wider_vectors_burn_more_power() {
        let a = Activity::peak();
        let p: Vec<f64> = [2, 4, 8, 16]
            .iter()
            .map(|&vl| effective_power(vl, &a))
            .collect();
        for w in p.windows(2) {
            assert!(w[1] > w[0], "power not monotone in VL: {p:?}");
        }
    }

    #[test]
    #[should_panic(expected = "no Table III calibration")]
    fn uncalibrated_vl_panics() {
        let _ = module_power(3);
    }

    #[test]
    fn activity_from_stats_is_bounded() {
        let stats = RunStats {
            cycles: 100,
            instructions: 100,
            scalar_alu_ops: 250, // deliberately over-unity per cycle
            vector_ops: 50,
            pqueue_ops: 10,
            stack_ops: 0,
            scratchpad_accesses: 20,
            regfile_accesses: 300,
            ..RunStats::default()
        };
        let a = Activity::from_stats(&stats);
        for v in [
            a.pqueue,
            a.stack,
            a.alus,
            a.scratchpad,
            a.regfiles,
            a.ins_memory,
            a.pipeline,
        ] {
            assert!((0.0..=1.0).contains(&v));
        }
        assert_eq!(a.alus, 1.0);
        assert_eq!(a.stack, 0.0);
    }

    #[test]
    fn idle_modules_still_cost_static_power() {
        let idle = Activity {
            pqueue: 0.0,
            stack: 0.0,
            alus: 0.0,
            scratchpad: 0.0,
            regfiles: 0.0,
            ins_memory: 0.0,
            pipeline: 0.0,
        };
        let p = effective_power(4, &idle);
        assert!((p - STATIC_FRACTION * module_power(4).total()).abs() < 1e-12);
        assert!(p > 0.0);
    }

    #[test]
    fn energy_scales_with_cycles() {
        let mut stats = RunStats {
            cycles: 1000,
            instructions: 1000,
            ..RunStats::default()
        };
        let e1 = kernel_energy_mj(4, &stats, 1e9);
        stats.cycles = 2000;
        let e2 = kernel_energy_mj(4, &stats, 1e9);
        assert!(e2 > 1.5 * e1);
    }

    #[test]
    fn peak_activity_reproduces_table_total() {
        let total = effective_power(8, &Activity::peak());
        assert!((total - module_power(8).total()).abs() < 1e-12);
    }
}
