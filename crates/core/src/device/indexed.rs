//! Indexed SSAM device: on-accelerator kd-tree traversal per vault.
//!
//! Section III-D: "any indexing data structures are also written to the
//! scratchpad memory or larger DRAM prior to executing any queries …
//! if hierarchical indexing structures do not fit in the scratchpad, they
//! are partitioned such that the top half of the hierarchy resides in
//! scratchpad". This module implements the in-scratchpad case: each
//! vault's shard gets its own kd-tree laid into the scratchpad region,
//! buckets stored contiguously in the vault's DRAM, and queries run the
//! stack-unit traversal kernel with a per-vault leaf budget — the
//! accelerated analogue of the CPU indexes' `SearchBudget`.
//!
//! The index is staged *once*: each vault keeps a warm [`ProcessingUnit`]
//! whose scratchpad already holds the tree image, so repeated queries
//! only reset architectural state and rewrite the query block — exactly
//! the paper's "written … prior to executing any queries" protocol.

use std::sync::{Arc, Mutex};

use rayon::prelude::*;
use ssam_knn::fixed::Fix32;
use ssam_knn::topk::{Neighbor, TopK};
use ssam_knn::VectorStore;

use crate::isa::inst::Instruction;
use crate::isa::PQUEUE_DEPTH;
use crate::kernels::traversal::{build_tree_image, image_id_order, kdtree_euclidean, TREE_ADDR};
use crate::kernels::Kernel;
use crate::sim::pu::{ProcessingUnit, RunStats, SimError};
use crate::telemetry::{self, Phases, QueryRecord, RecordKind, Telemetry, VaultAccount};

use super::{QueryTiming, SsamConfig};

/// One vault's staged index: tree image + id remapping.
#[derive(Debug, Clone)]
struct IndexedShard {
    dram: Arc<Vec<i32>>,
    spad_tree: Vec<i32>,
    root_addr: u32,
    /// Image position → global id.
    id_order: Vec<u32>,
    vectors: usize,
}

/// A SSAM device whose vaults each hold a scratchpad-resident kd-tree
/// over their shard.
#[derive(Debug)]
pub struct IndexedSsamDevice {
    config: SsamConfig,
    shards: Vec<IndexedShard>,
    kernel: Kernel,
    /// Shared instruction image, staged once and reused by every PU.
    program: Arc<Vec<Instruction>>,
    /// Warm PU per vault. A populated slot still holds the shard's tree
    /// image in its scratchpad, so a query only rewrites the query block.
    pu_cache: Vec<Mutex<Option<ProcessingUnit>>>,
    telemetry: Option<Telemetry>,
    vec_words: usize,
    dims: usize,
    vectors: usize,
    leaf_size: usize,
}

impl Clone for IndexedSsamDevice {
    /// Clones share the staged data and instruction image but start with
    /// cold PU caches (a [`ProcessingUnit`] is cheap to re-stage and the
    /// caches are query-scratch state, not index state).
    fn clone(&self) -> Self {
        Self {
            config: self.config,
            shards: self.shards.clone(),
            kernel: self.kernel.clone(),
            program: Arc::clone(&self.program),
            pu_cache: self.shards.iter().map(|_| Mutex::new(None)).collect(),
            telemetry: self.telemetry.clone(),
            vec_words: self.vec_words,
            dims: self.dims,
            vectors: self.vectors,
            leaf_size: self.leaf_size,
        }
    }
}

impl IndexedSsamDevice {
    /// Builds per-vault kd-trees over `store` and stages them.
    ///
    /// # Panics
    /// Panics if the store is empty, or a shard's tree exceeds its
    /// scratchpad region (raise `leaf_size` or dataset sharding width).
    pub fn build(config: SsamConfig, store: &VectorStore, leaf_size: usize) -> Self {
        assert!(!store.is_empty(), "cannot index an empty dataset");
        let leaf_size = leaf_size.max(1);
        let vl = config.vector_length;
        let dims = store.dims();
        let vaults = config.hmc.vaults.min(store.len());
        let per = store.len().div_ceil(vaults);

        let mut shards = Vec::with_capacity(vaults);
        let mut next = 0usize;
        while next < store.len() {
            let count = per.min(store.len() - next);
            let ids: Vec<u32> = (next as u32..(next + count) as u32).collect();
            let sub = store.subset(&ids);
            let img = build_tree_image(&sub, leaf_size, vl);
            let order = image_id_order(&sub, leaf_size);
            shards.push(IndexedShard {
                dram: Arc::new(img.dram_words),
                spad_tree: img.spad_words,
                root_addr: img.root_addr,
                id_order: order.into_iter().map(|local| next as u32 + local).collect(),
                vectors: count,
            });
            next += count;
        }

        let kernel = kdtree_euclidean(dims, vl, leaf_size);
        let vec_words = kernel.layout.vec_words;
        let program = Arc::new(if config.optimize_kernels {
            kernel.program.clone()
        } else {
            kernel.raw_program.clone()
        });
        let pu_cache = shards.iter().map(|_| Mutex::new(None)).collect();
        Self {
            config,
            shards,
            kernel,
            program,
            pu_cache,
            telemetry: None,
            vec_words,
            dims,
            vectors: store.len(),
            leaf_size,
        }
    }

    /// Vectors indexed.
    pub fn len(&self) -> usize {
        self.vectors
    }

    /// Whether the device holds no data.
    pub fn is_empty(&self) -> bool {
        self.vectors == 0
    }

    /// Leaf capacity used at build time.
    pub fn leaf_size(&self) -> usize {
        self.leaf_size
    }

    /// Attaches a telemetry sink; every subsequent [`Self::query`]
    /// records a checked [`RecordKind::Indexed`] account into it.
    pub fn attach_telemetry(&mut self, sink: &Telemetry) {
        self.telemetry = Some(sink.clone());
    }

    /// Stops recording telemetry.
    pub fn detach_telemetry(&mut self) {
        self.telemetry = None;
    }

    /// Approximate kNN: every vault traverses its tree near-first and
    /// scans up to `leaf_budget` buckets; the host merges per-vault
    /// results. Larger budgets converge on exact search (the Fig. 2
    /// trade-off running *on the accelerator*).
    pub fn query(
        &self,
        query: &[f32],
        k: usize,
        leaf_budget: usize,
    ) -> Result<(Vec<Neighbor>, QueryTiming, Vec<RunStats>), SimError> {
        assert_eq!(query.len(), self.dims, "query dimensionality mismatch");
        assert!(k > 0, "k must be positive");
        let vl = self.config.vector_length;
        let mut q: Vec<i32> = query.iter().map(|&x| Fix32::from_f32(x).0).collect();
        q.resize(self.vec_words, 0);
        let budget = leaf_budget.max(1).min(i32::MAX as usize) as i32;
        let pq_chain = k.div_ceil(PQUEUE_DEPTH);
        let vec_words = self.vec_words;

        let results: Result<Vec<(Vec<Neighbor>, RunStats)>, SimError> = self
            .shards
            .par_iter()
            .zip(self.pu_cache.par_iter())
            .map(|(shard, slot)| {
                let mut slot = slot.lock().expect("PU cache lock poisoned");
                let mut pu = match slot.take() {
                    // Warm path: the scratchpad still holds the tree
                    // image, so only architectural state is reset and
                    // only the query block is rewritten below.
                    Some(mut pu) => {
                        pu.reset_state();
                        pu
                    }
                    None => {
                        let mut pu = ProcessingUnit::new(vl, Arc::clone(&shard.dram));
                        pu.load_program(Arc::clone(&self.program));
                        pu.scratchpad_mut()
                            .write_block(TREE_ADDR, &shard.spad_tree)
                            .expect("tree fits scratchpad");
                        pu
                    }
                };
                pu.chain_pqueue(pq_chain);
                pu.scratchpad_mut().write_block(0, &q).expect("query fits");
                pu.set_sreg(20, budget);
                pu.set_sreg(21, shard.root_addr as i32);
                let per_vec = 16 * vec_words as u64 + 2048;
                let cap = 10_000u64 + shard.vectors as u64 * per_vec;
                let stats = pu.run(cap)?;
                let neighbors = pu
                    .pqueue()
                    .entries()
                    .iter()
                    .take(k)
                    .map(|e| Neighbor::new(shard.id_order[e.id as usize], Fix32(e.value).to_f32()))
                    .collect();
                *slot = Some(pu);
                Ok((neighbors, stats))
            })
            .collect();
        let results = results?;

        let mut top = TopK::new(k);
        for (ns, _) in &results {
            for n in ns {
                top.offer(n.id, n.dist);
            }
        }
        let stats: Vec<RunStats> = results.iter().map(|(_, s)| *s).collect();
        let (timing, accounts, phases) = self.account_query(&stats, k);
        if let Some(sink) = &self.telemetry {
            sink.record(QueryRecord {
                seq: 0,
                kind: RecordKind::Indexed,
                label: self.kernel.name.clone(),
                batch: 1,
                k,
                pus_per_vault: timing.pus_per_vault,
                vaults: accounts,
                phases,
                seconds: timing.seconds,
                compute_bound: timing.compute_bound,
                total_cycles: timing.total_cycles,
                total_bytes: timing.total_bytes,
                energy_mj: timing.energy_mj,
                // The indexed engine has no fault hooks (yet): its
                // records carry a trivial fault account.
                faults: ssam_faults::FaultRecord::default(),
            });
        }
        Ok((top.into_sorted(), timing, stats))
    }

    /// Timing-only view of [`Self::account_query`] (test seam for the
    /// classification regression tests).
    #[cfg(test)]
    fn derive_timing(&self, vault_stats: &[RunStats], k: usize) -> QueryTiming {
        self.account_query(vault_stats, k).0
    }

    /// Derives the query account: the summary [`QueryTiming`] plus the
    /// per-vault [`VaultAccount`]s and phase spans backing it.
    ///
    /// Index traversals engage one PU per vault (the traversal is serial;
    /// the bucket scans are short). The memory-vs-compute classification
    /// comes from [`telemetry::critical_path`] — the vault that actually
    /// sets the critical path, with strictly-greater keeping the first
    /// argmax on ties — not from whichever vault happened to be scanned
    /// last.
    fn account_query(
        &self,
        vault_stats: &[RunStats],
        k: usize,
    ) -> (QueryTiming, Vec<VaultAccount>, Phases) {
        let cfg = &self.config;
        let mut vaults: Vec<VaultAccount> = vault_stats
            .iter()
            .enumerate()
            .map(|(i, s)| VaultAccount::from_stats(i, s, cfg.hmc.vault_bandwidth, cfg.freq_hz, 1))
            .collect();
        let (_, worst, compute_bound) =
            telemetry::critical_path(&vaults).unwrap_or((0, 0.0, false));

        let result_bytes = (vault_stats.len() * k * 8) as u64;
        let link_t =
            ssam_hmc::packet::bulk_wire_bytes(result_bytes) as f64 / cfg.hmc.external_bandwidth;
        let merge_t = (vault_stats.len() * k) as f64 * 1e-9;
        let seconds = worst + link_t + merge_t;

        let mut energy_mj = 0.0;
        let mut total_cycles = 0u64;
        let mut total_bytes = 0u64;
        for (v, s) in vaults.iter_mut().zip(vault_stats) {
            let act = crate::energy::Activity::from_stats(s);
            v.energy_mj = crate::energy::effective_power(cfg.vector_length, &act) * seconds;
            energy_mj += v.energy_mj;
            total_cycles += s.cycles;
            total_bytes += s.dram.bytes_read;
        }

        let timing = QueryTiming {
            seconds,
            pus_per_vault: 1,
            compute_bound,
            total_cycles,
            total_bytes,
            energy_mj,
        };
        let phases = Phases {
            stage_seconds: 0.0,
            simulate_seconds: worst,
            link_seconds: link_t,
            merge_seconds: merge_t,
            fault_seconds: 0.0,
        };
        (timing, vaults, phases)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssam_knn::linear::knn_exact;
    use ssam_knn::recall::recall;
    use ssam_knn::Metric;

    use rand::rngs::StdRng;
    use rand::RngExt;
    use rand::SeedableRng;

    fn random_store(n: usize, dims: usize, seed: u64) -> VectorStore {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut s = VectorStore::with_capacity(dims, n);
        for _ in 0..n {
            let v: Vec<f32> = (0..dims).map(|_| rng.random_range(-1.0..1.0)).collect();
            s.push(&v);
        }
        s
    }

    fn config() -> SsamConfig {
        SsamConfig::default()
    }

    /// A vault stat with the given DRAM traffic and cycle count — the
    /// two axes of the roofline classification.
    fn stat(bytes: u64, cycles: u64) -> RunStats {
        let mut s = RunStats {
            cycles,
            ..Default::default()
        };
        s.dram.bytes_read = bytes;
        s
    }

    #[test]
    fn unlimited_budget_matches_exact_search() {
        let store = random_store(400, 8, 1);
        let dev = IndexedSsamDevice::build(config(), &store, 16);
        let q: Vec<f32> = store.get(123).to_vec();
        let (ns, _, _) = dev.query(&q, 6, usize::MAX).expect("runs");
        let expect = knn_exact(&store, &q, 6, Metric::Euclidean);
        let got: Vec<u32> = ns.iter().map(|n| n.id).collect();
        let want: Vec<u32> = expect.iter().map(|n| n.id).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn budget_trades_accuracy_for_work() {
        let store = random_store(800, 6, 2);
        let dev = IndexedSsamDevice::build(config(), &store, 16);
        let mut rng = StdRng::seed_from_u64(3);
        let (mut rec_lo, mut rec_hi) = (0.0, 0.0);
        let (mut cyc_lo, mut cyc_hi) = (0u64, 0u64);
        for _ in 0..10 {
            let q: Vec<f32> = (0..6).map(|_| rng.random_range(-1.0..1.0)).collect();
            let exact = knn_exact(&store, &q, 5, Metric::Euclidean);
            let (lo, t_lo, _) = dev.query(&q, 5, 1).expect("runs");
            let (hi, t_hi, _) = dev.query(&q, 5, 64).expect("runs");
            rec_lo += recall(&exact, &lo);
            rec_hi += recall(&exact, &hi);
            cyc_lo += t_lo.total_cycles;
            cyc_hi += t_hi.total_cycles;
        }
        assert!(
            rec_hi >= rec_lo,
            "recall did not improve: {rec_lo} vs {rec_hi}"
        );
        assert!(cyc_lo < cyc_hi, "budget must control work");
    }

    #[test]
    fn self_queries_are_found_at_tiny_budget() {
        let store = random_store(300, 5, 4);
        let dev = IndexedSsamDevice::build(config(), &store, 16);
        for id in [0u32, 150, 299] {
            let q: Vec<f32> = store.get(id).to_vec();
            let (ns, _, _) = dev.query(&q, 1, 1).expect("runs");
            assert_eq!(ns[0].id, id, "near-first descent must find the home bucket");
        }
    }

    #[test]
    fn traversal_uses_the_stack_everywhere() {
        let store = random_store(500, 4, 5);
        let dev = IndexedSsamDevice::build(config(), &store, 8);
        let (_, _, stats) = dev.query(&[0.0; 4], 3, 4).expect("runs");
        assert!(stats.iter().all(|s| s.stack_ops > 0));
    }

    #[test]
    fn indexed_query_reads_less_dram_than_full_scan() {
        // Budgets are per vault, so the scan floor is vaults × budget ×
        // leaf_size vectors; size the dataset well above it.
        let store = random_store(4000, 8, 6);
        let dev = IndexedSsamDevice::build(config(), &store, 8);
        let (_, t, _) = dev.query(&[0.1; 8], 5, 1).expect("runs");
        let full_bytes = (4000 * dev.vec_words * 4) as u64;
        assert!(
            t.total_bytes < full_bytes / 3,
            "{} vs {}",
            t.total_bytes,
            full_bytes
        );
    }

    #[test]
    fn works_across_vector_lengths() {
        let store = random_store(200, 7, 7);
        let q: Vec<f32> = (0..7).map(|i| 0.1 * i as f32).collect();
        let expect: Vec<u32> = knn_exact(&store, &q, 4, Metric::Euclidean)
            .iter()
            .map(|n| n.id)
            .collect();
        for vl in [2usize, 4, 8, 16] {
            let dev = IndexedSsamDevice::build(
                SsamConfig {
                    vector_length: vl,
                    ..SsamConfig::default()
                },
                &store,
                16,
            );
            let (ns, _, _) = dev.query(&q, 4, usize::MAX).expect("runs");
            let got: Vec<u32> = ns.iter().map(|n| n.id).collect();
            assert_eq!(got, expect, "VL={vl}");
        }
    }

    // With the default config: vault_bandwidth = 10 GB/s, freq = 1 GHz,
    // and the indexed path always engages one PU, so
    // mem_t = bytes / 10e9 and comp_t = cycles / 1e9.

    #[test]
    fn compute_bound_tracks_memory_bound_critical_vault() {
        let store = random_store(64, 4, 10);
        let dev = IndexedSsamDevice::build(config(), &store, 16);
        // Vault 0 dominates (mem_t = 1e-4) and is memory-bound; vault 1
        // is compute-bound but far off the critical path.
        let stats = [stat(1_000_000, 10), stat(8, 1_000)];
        let t = dev.derive_timing(&stats, 4);
        assert!(
            !t.compute_bound,
            "critical vault is memory-bound; query must classify memory-bound"
        );
    }

    #[test]
    fn compute_bound_tracks_compute_bound_critical_vault() {
        let store = random_store(64, 4, 11);
        let dev = IndexedSsamDevice::build(config(), &store, 16);
        // Vault 0 dominates (comp_t = 1e-3) and is compute-bound; vault 1
        // is memory-bound but negligible. The pre-fix classifier let any
        // memory-bound vault flip the whole query to memory-bound.
        let stats = [stat(8, 1_000_000), stat(10_000, 10)];
        let t = dev.derive_timing(&stats, 4);
        assert!(
            t.compute_bound,
            "critical vault is compute-bound; query must classify compute-bound"
        );
    }

    #[test]
    fn compute_bound_ties_resolve_to_first_critical_vault() {
        let store = random_store(64, 4, 12);
        let dev = IndexedSsamDevice::build(config(), &store, 16);
        // Both vaults hit exactly 1e-5 s of critical time; vault 0 is
        // compute-bound, vault 1 memory-bound. First argmax wins.
        let stats = [stat(0, 10_000), stat(100_000, 10)];
        let t = dev.derive_timing(&stats, 4);
        assert!(
            t.compute_bound,
            "tie must resolve to the first critical vault's classification"
        );

        // And symmetrically with the memory-bound vault first.
        let stats = [stat(100_000, 10), stat(0, 10_000)];
        let t = dev.derive_timing(&stats, 4);
        assert!(
            !t.compute_bound,
            "tie must resolve to the first critical vault's classification"
        );
    }

    #[test]
    fn warm_pu_reuse_is_bit_identical_to_cold_staging() {
        let store = random_store(600, 6, 8);
        let warm = IndexedSsamDevice::build(config(), &store, 16);
        let mut rng = StdRng::seed_from_u64(9);
        for i in 0..5 {
            let q: Vec<f32> = (0..6).map(|_| rng.random_range(-1.0..1.0)).collect();
            // A clone starts with cold PU caches, so it restages the full
            // tree image like the original one-shot path did.
            let cold = warm.clone();
            let (nw, tw, sw) = warm.query(&q, 4, 8).expect("warm query");
            let (nc, tc, sc) = cold.query(&q, 4, 8).expect("cold query");
            assert_eq!(nw, nc, "query {i}: neighbors diverge");
            assert_eq!(sw, sc, "query {i}: per-vault stats diverge");
            assert_eq!(tw, tc, "query {i}: timing diverges");
        }
    }

    #[test]
    fn varying_k_between_queries_rechains_the_pqueue() {
        let store = random_store(300, 5, 13);
        let dev = IndexedSsamDevice::build(config(), &store, 16);
        let q: Vec<f32> = store.get(42).to_vec();
        // Deep k first (chains queues), then shallow k on the warm PUs.
        let (deep, _, _) = dev.query(&q, 20, usize::MAX).expect("deep");
        let (shallow, _, _) = dev.query(&q, 3, usize::MAX).expect("shallow");
        let expect: Vec<u32> = knn_exact(&store, &q, 3, Metric::Euclidean)
            .iter()
            .map(|n| n.id)
            .collect();
        let got: Vec<u32> = shallow.iter().map(|n| n.id).collect();
        assert_eq!(got, expect);
        assert_eq!(deep.len(), 20);
    }

    #[test]
    fn telemetry_records_checked_indexed_accounts() {
        let store = random_store(500, 6, 14);
        let mut dev = IndexedSsamDevice::build(config(), &store, 16);
        let sink = Telemetry::default();
        dev.attach_telemetry(&sink);
        let mut rng = StdRng::seed_from_u64(15);
        let mut timings = Vec::new();
        for _ in 0..3 {
            let q: Vec<f32> = (0..6).map(|_| rng.random_range(-1.0..1.0)).collect();
            let (_, t, _) = dev.query(&q, 5, 4).expect("runs");
            timings.push(t);
        }
        assert_eq!(sink.len(), 3);
        assert!(
            sink.violations().is_empty(),
            "indexed accounts must self-check clean: {:?}",
            sink.violations()
        );
        for (r, t) in sink.records().iter().zip(&timings) {
            assert_eq!(r.kind, RecordKind::Indexed);
            assert_eq!(r.pus_per_vault, 1);
            assert_eq!(r.seconds, t.seconds);
            assert_eq!(r.total_cycles, t.total_cycles);
            assert_eq!(r.total_bytes, t.total_bytes);
            assert_eq!(r.energy_mj, t.energy_mj);
            assert_eq!(r.compute_bound, t.compute_bound);
            assert!(r.label.starts_with("kdtree_euclidean"));
            telemetry::verify_record(r).expect("record passes verification");
        }
    }
}
