//! The SSAM-enabled memory-region API of the paper's Fig. 4.
//!
//! "We assume a driver stack exposes a minimal memory allocation API which
//! manages user interaction with SSAM-enabled memory regions. … Allocated
//! SSAM memory regions come with a set of special operations that allow
//! the user to set the indexing mode, in addition to handling standard
//! memory manipulation operations like memcpy."
//!
//! The example program of Fig. 4 maps onto this module as:
//!
//! ```text
//! int *nbuf = nmalloc(length * dims);   →  SsamRegion::nmalloc(...)
//! nmode(nbuf, LINEAR);                  →  region.nmode(IndexMode::Linear)
//! nmemcpy(nbuf, dataset, ...);          →  region.nmemcpy(&store)
//! nbuild_index(nbuf, params = NULL);    →  region.nbuild_index(None)
//! nwrite_query(nbuf, query);            →  region.nwrite_query(&query)
//! nexec(nbuf);                          →  region.nexec(k)
//! int *result = nread_result(nbuf);     →  region.nread_result()
//! nfree(nbuf);                          →  drop(region)
//! ```

use ssam_knn::topk::Neighbor;
use ssam_knn::VectorStore;

use super::indexed::IndexedSsamDevice;
use super::{DeviceQuery, QueryTiming, SsamConfig, SsamDevice};
use crate::sim::pu::SimError;

/// Indexing mode of a region (the `nmode` setting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IndexMode {
    /// Exact linear scan (the paper's example).
    #[default]
    Linear,
    /// On-accelerator kd-tree traversal: `nbuild_index` lays a per-vault
    /// tree into each scratchpad; `nexec_budget` bounds buckets scanned.
    KdTree {
        /// Maximum bucket size at the leaves.
        leaf_size: usize,
    },
}

/// Errors surfaced by the region API.
#[derive(Debug, Clone, PartialEq)]
pub enum RegionError {
    /// Operation requires data but `nmemcpy` has not been called.
    NoData,
    /// Operation requires a query but `nwrite_query` has not been called.
    NoQuery,
    /// `nread_result` before `nexec`.
    NoResult,
    /// kd-tree mode `nexec` before `nbuild_index`.
    NoIndex,
    /// Copied data exceeds the allocation.
    AllocationExceeded {
        /// Words requested at `nmalloc`.
        allocated: usize,
        /// Words the copy needed.
        needed: usize,
    },
    /// The underlying simulation faulted.
    Sim(SimError),
}

impl std::fmt::Display for RegionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegionError::NoData => write!(f, "no dataset copied into the region (call nmemcpy)"),
            RegionError::NoQuery => write!(f, "no query written (call nwrite_query)"),
            RegionError::NoResult => write!(f, "no result available (call nexec)"),
            RegionError::NoIndex => write!(f, "index not built (call nbuild_index)"),
            RegionError::AllocationExceeded { allocated, needed } => {
                write!(f, "region of {allocated} words cannot hold {needed} words")
            }
            RegionError::Sim(e) => write!(f, "device fault: {e}"),
        }
    }
}

impl std::error::Error for RegionError {}

impl From<SimError> for RegionError {
    fn from(e: SimError) -> Self {
        RegionError::Sim(e)
    }
}

/// A SSAM-enabled memory region ("a special part of the memory space
/// which is physically backed by a SSAM instead of a standard DRAM
/// module"). Pages backing a region are pinned, so data is staged once.
#[derive(Debug, Clone)]
pub struct SsamRegion {
    device: SsamDevice,
    indexed: Option<IndexedSsamDevice>,
    /// Retained dataset for deferred index construction.
    dataset: Option<VectorStore>,
    allocated_words: usize,
    mode: IndexMode,
    data_loaded: bool,
    query: Option<Vec<f32>>,
    result: Option<(Vec<Neighbor>, QueryTiming)>,
}

impl SsamRegion {
    /// Allocates a region able to hold `words` 32-bit elements
    /// (`nmalloc(length * dims)`), backed by a default-configured SSAM.
    pub fn nmalloc(words: usize) -> Self {
        Self::nmalloc_with(words, SsamConfig::default())
    }

    /// Allocates with an explicit device configuration.
    pub fn nmalloc_with(words: usize, config: SsamConfig) -> Self {
        Self {
            device: SsamDevice::new(config),
            indexed: None,
            dataset: None,
            allocated_words: words,
            mode: IndexMode::default(),
            data_loaded: false,
            query: None,
            result: None,
        }
    }

    /// Sets the indexing mode (`nmode`). Any previously built index is
    /// discarded.
    pub fn nmode(&mut self, mode: IndexMode) {
        self.mode = mode;
        self.indexed = None;
    }

    /// Copies a dataset into the region (`nmemcpy`): quantizes, pads, and
    /// shards it across the module's vaults.
    pub fn nmemcpy(&mut self, dataset: &VectorStore) -> Result<(), RegionError> {
        let needed = dataset.len() * dataset.dims();
        if needed > self.allocated_words {
            return Err(RegionError::AllocationExceeded {
                allocated: self.allocated_words,
                needed,
            });
        }
        self.device.load_vectors(dataset);
        self.dataset = Some(dataset.clone());
        self.indexed = None;
        self.data_loaded = true;
        self.result = None;
        Ok(())
    }

    /// Builds the region's index (`nbuild_index`). Linear mode needs no
    /// index; kd-tree mode builds per-vault scratchpad trees.
    pub fn nbuild_index(&mut self, _params: Option<()>) -> Result<(), RegionError> {
        if !self.data_loaded {
            return Err(RegionError::NoData);
        }
        match self.mode {
            IndexMode::Linear => Ok(()),
            IndexMode::KdTree { leaf_size } => {
                let dataset = self.dataset.as_ref().ok_or(RegionError::NoData)?;
                self.indexed = Some(IndexedSsamDevice::build(
                    *self.device.config(),
                    dataset,
                    leaf_size,
                ));
                Ok(())
            }
        }
    }

    /// Writes the query vector into the device scratchpads
    /// (`nwrite_query`). "A small portion of the scratchpad is also
    /// allocated for holding the query vector; this region is continuously
    /// rewritten as a SSAM services queries."
    pub fn nwrite_query(&mut self, query: &[f32]) -> Result<(), RegionError> {
        if !self.data_loaded {
            return Err(RegionError::NoData);
        }
        self.query = Some(query.to_vec());
        self.result = None;
        Ok(())
    }

    /// Launches the kNN search (`nexec`) for `k` neighbors. In kd-tree
    /// mode this traverses with an effectively unlimited leaf budget; use
    /// [`Self::nexec_budget`] for the accuracy/throughput trade-off.
    pub fn nexec(&mut self, k: usize) -> Result<(), RegionError> {
        self.nexec_budget(k, usize::MAX)
    }

    /// Launches the kNN search with a per-vault leaf budget (kd-tree
    /// mode; the budget is ignored for linear scans).
    pub fn nexec_budget(&mut self, k: usize, leaf_budget: usize) -> Result<(), RegionError> {
        if !self.data_loaded {
            return Err(RegionError::NoData);
        }
        let query = self.query.clone().ok_or(RegionError::NoQuery)?;
        match self.mode {
            IndexMode::Linear => {
                let r = self.device.query(&DeviceQuery::Euclidean(&query), k)?;
                self.result = Some((r.neighbors, r.timing));
            }
            IndexMode::KdTree { .. } => {
                let idx = self.indexed.as_ref().ok_or(RegionError::NoIndex)?;
                let (neighbors, timing, _) = idx.query(&query, k, leaf_budget)?;
                self.result = Some((neighbors, timing));
            }
        }
        Ok(())
    }

    /// Reads back the result identifiers (`nread_result`).
    pub fn nread_result(&self) -> Result<&[Neighbor], RegionError> {
        self.result
            .as_ref()
            .map(|(n, _)| n.as_slice())
            .ok_or(RegionError::NoResult)
    }

    /// Timing of the last `nexec` (driver-visible performance counters).
    pub fn last_timing(&self) -> Option<&QueryTiming> {
        self.result.as_ref().map(|(_, t)| t)
    }

    /// Frees the region (`nfree`). Provided for source fidelity with
    /// Fig. 4; dropping the value is equivalent.
    pub fn nfree(self) {}
}

/// The Fig. 4 example program, end to end: allocate, set mode, copy,
/// build, query, execute, read, free.
pub fn knn(query: &[f32], dataset: &VectorStore, k: usize) -> Result<Vec<u32>, RegionError> {
    let mut nbuf = SsamRegion::nmalloc(dataset.len() * dataset.dims());
    nbuf.nmode(IndexMode::Linear);
    nbuf.nmemcpy(dataset)?;
    nbuf.nbuild_index(None)?;
    nbuf.nwrite_query(query)?;
    nbuf.nexec(k)?;
    let result = nbuf.nread_result()?.iter().map(|n| n.id).collect();
    nbuf.nfree();
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssam_knn::linear::knn_exact;
    use ssam_knn::Metric;

    fn store() -> VectorStore {
        let mut s = VectorStore::new(3);
        for i in 0..60 {
            let x = i as f32 * 0.1;
            s.push(&[x, -x, x * 0.5]);
        }
        s
    }

    #[test]
    fn fig4_program_returns_exact_neighbors() {
        let s = store();
        let q = [1.0f32, -1.0, 0.5];
        let got = knn(&q, &s, 4).expect("pipeline runs");
        let expect: Vec<u32> = knn_exact(&s, &q, 4, Metric::Euclidean)
            .iter()
            .map(|n| n.id)
            .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn operations_enforce_ordering() {
        let mut r = SsamRegion::nmalloc(1000);
        assert_eq!(r.nbuild_index(None), Err(RegionError::NoData));
        assert_eq!(r.nwrite_query(&[1.0]), Err(RegionError::NoData));
        assert_eq!(r.nexec(1), Err(RegionError::NoData));
        assert!(matches!(r.nread_result(), Err(RegionError::NoResult)));
        r.nmemcpy(&store()).expect("copy");
        assert_eq!(r.nexec(1), Err(RegionError::NoQuery));
    }

    #[test]
    fn allocation_size_is_enforced() {
        let mut r = SsamRegion::nmalloc(10);
        let e = r.nmemcpy(&store()).expect_err("too big");
        assert!(matches!(
            e,
            RegionError::AllocationExceeded {
                allocated: 10,
                needed: 180
            }
        ));
    }

    #[test]
    fn rewriting_query_invalidates_result() {
        let mut r = SsamRegion::nmalloc(1000);
        r.nmemcpy(&store()).expect("copy");
        r.nwrite_query(&[0.0, 0.0, 0.0]).expect("query");
        r.nexec(2).expect("exec");
        assert!(r.nread_result().is_ok());
        r.nwrite_query(&[1.0, 1.0, 1.0]).expect("query");
        assert!(matches!(r.nread_result(), Err(RegionError::NoResult)));
    }

    #[test]
    fn kdtree_mode_requires_build_before_exec() {
        let mut r = SsamRegion::nmalloc(1000);
        r.nmode(IndexMode::KdTree { leaf_size: 8 });
        r.nmemcpy(&store()).expect("copy");
        r.nwrite_query(&[0.0, 0.0, 0.0]).expect("query");
        assert_eq!(r.nexec(2), Err(RegionError::NoIndex));
        r.nbuild_index(None).expect("build");
        r.nexec(2).expect("exec");
        assert_eq!(r.nread_result().expect("results").len(), 2);
    }

    #[test]
    fn kdtree_mode_full_budget_matches_linear_mode() {
        let s = store();
        let q = [2.0f32, -2.0, 1.0];
        let mut lin = SsamRegion::nmalloc(1000);
        lin.nmemcpy(&s).expect("copy");
        lin.nwrite_query(&q).expect("query");
        lin.nexec(5).expect("exec");
        let lin_ids: Vec<u32> = lin
            .nread_result()
            .expect("results")
            .iter()
            .map(|n| n.id)
            .collect();

        let mut kd = SsamRegion::nmalloc(1000);
        kd.nmode(IndexMode::KdTree { leaf_size: 8 });
        kd.nmemcpy(&s).expect("copy");
        kd.nbuild_index(None).expect("build");
        kd.nwrite_query(&q).expect("query");
        kd.nexec(5).expect("exec");
        let kd_ids: Vec<u32> = kd
            .nread_result()
            .expect("results")
            .iter()
            .map(|n| n.id)
            .collect();
        assert_eq!(kd_ids, lin_ids);
    }

    #[test]
    fn kdtree_budget_reduces_work() {
        let mut r = SsamRegion::nmalloc(1000);
        r.nmode(IndexMode::KdTree { leaf_size: 4 });
        r.nmemcpy(&store()).expect("copy");
        r.nbuild_index(None).expect("build");
        r.nwrite_query(&[0.0, 0.0, 0.0]).expect("query");
        r.nexec_budget(2, 1).expect("exec");
        let capped = r.last_timing().expect("timing").total_bytes;
        r.nwrite_query(&[0.0, 0.0, 0.0]).expect("query");
        r.nexec(2).expect("exec");
        let full = r.last_timing().expect("timing").total_bytes;
        assert!(capped <= full);
    }

    #[test]
    fn switching_mode_discards_index() {
        let mut r = SsamRegion::nmalloc(1000);
        r.nmode(IndexMode::KdTree { leaf_size: 8 });
        r.nmemcpy(&store()).expect("copy");
        r.nbuild_index(None).expect("build");
        r.nmode(IndexMode::KdTree { leaf_size: 16 });
        r.nwrite_query(&[0.0, 0.0, 0.0]).expect("query");
        assert_eq!(r.nexec(1), Err(RegionError::NoIndex));
    }

    #[test]
    fn timing_is_available_after_exec() {
        let mut r = SsamRegion::nmalloc(1000);
        r.nmemcpy(&store()).expect("copy");
        r.nwrite_query(&[0.0, 0.0, 0.0]).expect("query");
        assert!(r.last_timing().is_none());
        r.nexec(2).expect("exec");
        assert!(r.last_timing().expect("timing").seconds > 0.0);
    }
}
