//! Module-level SSAM device: sharding, replication, query execution.
//!
//! Assembles the full Section III system: the dataset is sharded
//! contiguously across HMC vaults; each vault's SSAM accelerator runs
//! replicated processing units over its shard ("we replicate processing
//! units to fully use the memory bandwidth by measuring the peak bandwidth
//! needs of each processing unit"); per-vault top-k results are reduced on
//! the host ("the host processor broadcasts the search across SSAM
//! processing units and performs the final set of global top-k reductions
//! on the host processor").
//!
//! Execution is *functionally* exact — every vault's kernel is simulated
//! instruction-by-instruction over its real shard, and the merged neighbor
//! set is validated against the `ssam-knn` reference in tests — while
//! *timing* combines the simulated cycle counts with the vault-bandwidth
//! roofline of `ssam-hmc`.

pub mod cluster;
mod fastpath;
pub mod indexed;
pub mod memregion;

pub use fastpath::raw_distance;

use std::collections::HashMap;
use std::sync::Arc;

use rayon::prelude::*;
use ssam_faults::{FaultPlan, FaultRecord, VaultFault};
use ssam_hmc::dram::{Secded32, SecdedOutcome, SECDED_CODE_BITS};
use ssam_hmc::HmcConfig;
use ssam_knn::binary::BinaryStore;
use ssam_knn::distance::norm_sq;
use ssam_knn::fixed::Fix32;
use ssam_knn::topk::{Neighbor, TopK};
use ssam_knn::VectorStore;

use crate::energy::{effective_power, Activity};
use crate::isa::inst::Instruction;
use crate::isa::{DRAM_BASE, PQUEUE_DEPTH};
use crate::kernels::{linear, Kernel};
use crate::sim::pu::{ProcessingUnit, RunStats, SimError};
use crate::telemetry::{self, Phases, QueryRecord, RecordKind, Telemetry, VaultAccount};

/// Device configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SsamConfig {
    /// The memory module geometry.
    pub hmc: HmcConfig,
    /// Processing-unit vector length (2/4/8/16).
    pub vector_length: usize,
    /// Logic-layer clock frequency in Hz.
    pub freq_hz: f64,
    /// Cap on processing units per vault accelerator.
    pub max_pus_per_vault: usize,
    /// Use the hardware priority queue (false = Section V-B software-queue
    /// ablation).
    pub use_hw_queue: bool,
    /// Stage the optimizer's output (default). `false` stages each
    /// kernel's [`crate::kernels::Kernel::raw_program`] instead — the
    /// A/B escape hatch used by the differential tests and
    /// `serve_load --no-opt`.
    pub optimize_kernels: bool,
    /// Execute eligible queries through the analytic fast path
    /// ([`fastpath`]): distances computed host-side, counters synthesized
    /// by the static cost model, selection through the same hardware
    /// priority queue — bit-identical results without per-instruction
    /// interpretation. Applies to the hardware-queue Euclidean /
    /// Manhattan / Hamming kernels; cosine and software-queue queries
    /// fall back to the cycle simulator per query. Default `false` (the
    /// simulator remains authoritative; `serve_load --fast-path` and the
    /// equivalence tests flip this on).
    pub fast_path: bool,
}

impl Default for SsamConfig {
    fn default() -> Self {
        Self {
            hmc: HmcConfig::hmc2(),
            vector_length: 4,
            freq_hz: 1.0e9,
            max_pus_per_vault: 8,
            use_hw_queue: true,
            optimize_kernels: true,
            fast_path: false,
        }
    }
}

/// Which kernel family a query runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceMetric {
    /// Squared Euclidean (canonical).
    Euclidean,
    /// Manhattan (L1).
    Manhattan,
    /// Cosine distance with software division.
    Cosine,
    /// Hamming over binarized codes via `VFXP`.
    Hamming,
}

/// A query in the representation its kernel consumes.
#[derive(Debug, Clone)]
pub enum DeviceQuery<'a> {
    /// Float query for the Euclidean kernel.
    Euclidean(&'a [f32]),
    /// Float query for the Manhattan kernel.
    Manhattan(&'a [f32]),
    /// Float query for the cosine kernel.
    Cosine(&'a [f32]),
    /// Packed binary query for the Hamming kernel.
    Hamming(&'a [u32]),
}

impl DeviceQuery<'_> {
    /// The metric this query selects.
    pub fn metric(&self) -> DeviceMetric {
        match self {
            DeviceQuery::Euclidean(_) => DeviceMetric::Euclidean,
            DeviceQuery::Manhattan(_) => DeviceMetric::Manhattan,
            DeviceQuery::Cosine(_) => DeviceMetric::Cosine,
            DeviceQuery::Hamming(_) => DeviceMetric::Hamming,
        }
    }
}

/// One vault's slice of the dataset.
#[derive(Debug, Clone)]
struct Shard {
    words: Arc<Vec<i32>>,
    first_id: u32,
    vectors: usize,
}

/// One query staged for batched execution.
struct StagedQuery {
    /// Padded scratchpad image of the query.
    words: Vec<i32>,
    /// Cosine `s10` query norm, when the kernel needs it.
    norm: Option<i32>,
    /// Metric the query selects (fast-path eligibility).
    metric: DeviceMetric,
    /// Kernel the query runs.
    kernel: Arc<Kernel>,
    /// Shared instruction image — one allocation per distinct kernel per
    /// batch, handed to every recycled PU by `Arc` clone.
    program: Arc<Vec<Instruction>>,
}

/// Converts a kernel's raw distance word into host float units: feature
/// vectors compute Q16.16 fixed-point distances, binary codes raw
/// popcount counts.
fn host_dist(payload: Payload, raw: i32) -> f32 {
    match payload {
        Payload::Fixed { .. } => Fix32(raw).to_f32(),
        Payload::Binary { .. } => raw as f32,
    }
}

/// What kind of payload is loaded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Payload {
    /// Q16.16 feature vectors of the given dimensionality.
    Fixed {
        /// Original dimensionality.
        dims: usize,
    },
    /// Packed binary codes of the given word count.
    Binary {
        /// Packed words per code.
        words: usize,
    },
}

/// Timing/energy account for one device query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryTiming {
    /// Wall-clock seconds for the query (slowest vault + host reduce +
    /// link transfer).
    pub seconds: f64,
    /// Processing units instantiated per vault for this kernel.
    pub pus_per_vault: usize,
    /// True when compute cycles (not vault bandwidth) set the pace.
    pub compute_bound: bool,
    /// Aggregate simulated cycles across all PUs.
    pub total_cycles: u64,
    /// Aggregate DRAM bytes streamed.
    pub total_bytes: u64,
    /// Device energy for the query in millijoules (all accelerators).
    pub energy_mj: f64,
}

/// Result of one device query.
#[derive(Debug, Clone)]
pub struct DeviceResult {
    /// Global top-k, best first — exact over the covered fraction of the
    /// dataset (the whole dataset unless faults lost vaults).
    pub neighbors: Vec<Neighbor>,
    /// Timing/energy account.
    pub timing: QueryTiming,
    /// Per-vault simulation statistics (vault 0 first).
    pub vault_stats: Vec<RunStats>,
    /// Fault accounting for this query: injected/corrected/retried/lost
    /// counters plus the covered-vector tally. Trivial when no fault plan
    /// is attached or nothing fired.
    pub faults: FaultRecord,
}

impl DeviceResult {
    /// Fraction of candidate vectors actually scanned for this query.
    pub fn coverage(&self) -> f64 {
        self.faults.coverage()
    }
}

/// The SSAM device.
#[derive(Debug, Clone)]
pub struct SsamDevice {
    config: SsamConfig,
    shards: Vec<Shard>,
    payload: Option<Payload>,
    vec_words: usize,
    vectors: usize,
    kernel_cache: HashMap<(DeviceMetric, usize), Arc<Kernel>>,
    telemetry: Option<Telemetry>,
    faults: Option<Arc<FaultPlan>>,
    /// Disambiguates fault-key streams across device clones (cluster
    /// module index, serve worker index).
    fault_scope: u64,
    /// Retry generation: a re-executed batch samples fresh fault outcomes.
    fault_attempt: u64,
    /// Monotonic query counter keying per-(query, vault) fault decisions.
    query_seq: u64,
}

impl SsamDevice {
    /// Creates an empty device.
    ///
    /// # Panics
    /// Panics if the vector length is not a supported design point.
    pub fn new(config: SsamConfig) -> Self {
        assert!(
            crate::isa::VECTOR_LENGTHS.contains(&config.vector_length),
            "vector length {} not supported",
            config.vector_length
        );
        Self {
            config,
            shards: Vec::new(),
            payload: None,
            vec_words: 0,
            vectors: 0,
            kernel_cache: HashMap::new(),
            telemetry: None,
            faults: None,
            fault_scope: 0,
            fault_attempt: 0,
            query_seq: 0,
        }
    }

    /// Attaches (or clears) a fault-injection plan. Every subsequent query
    /// samples the plan's channels per (query, vault), keyed by the
    /// device's seed/scope/sequence state, so a run is bit-reproducible.
    pub fn set_fault_plan(&mut self, plan: Option<Arc<FaultPlan>>) {
        self.faults = plan;
    }

    /// The attached fault plan, if any.
    pub fn fault_plan(&self) -> Option<&Arc<FaultPlan>> {
        self.faults.as_ref()
    }

    /// Sets the fault key scope (cluster module index, serve worker index)
    /// so device clones sample decorrelated fault streams.
    pub fn set_fault_scope(&mut self, scope: u64) {
        self.fault_scope = scope;
    }

    /// Sets the retry generation: re-running the same queries at a higher
    /// attempt samples fresh (but still deterministic) fault outcomes.
    pub fn set_fault_attempt(&mut self, attempt: u64) {
        self.fault_attempt = attempt;
    }

    /// The next query sequence number (how many queries this device has
    /// executed).
    pub fn query_seq(&self) -> u64 {
        self.query_seq
    }

    /// Per-vault shard spans as `(first_id, vectors)`, vault 0 first.
    /// Fault-tolerance tests use this to reconstruct the covered id set
    /// from a result's lost vaults.
    pub fn shard_spans(&self) -> Vec<(u32, usize)> {
        self.shards
            .iter()
            .map(|s| (s.first_id, s.vectors))
            .collect()
    }

    /// Device configuration.
    pub fn config(&self) -> &SsamConfig {
        &self.config
    }

    /// Attaches a telemetry sink: every subsequent
    /// [`SsamDevice::query_batch`] emits one verified [`QueryRecord`] per
    /// query plus one batch-level record into it. The sink is
    /// `Arc`-shared, so one handle may observe many devices.
    pub fn attach_telemetry(&mut self, sink: &Telemetry) {
        self.telemetry = Some(sink.clone());
    }

    /// Detaches the telemetry sink, if any.
    pub fn detach_telemetry(&mut self) {
        self.telemetry = None;
    }

    /// Number of vectors loaded.
    pub fn len(&self) -> usize {
        self.vectors
    }

    /// Whether no dataset is loaded.
    pub fn is_empty(&self) -> bool {
        self.vectors == 0
    }

    /// Words per (padded) stored vector.
    pub fn vec_words(&self) -> usize {
        self.vec_words
    }

    /// Expected query length for the loaded payload: feature
    /// dimensionality for float datasets, packed 32-bit words for binary
    /// codes. `None` before a dataset is loaded. Host-side layers (the
    /// serving runtime's admission control) use this to reject malformed
    /// queries before they reach a worker thread.
    pub fn query_len(&self) -> Option<usize> {
        self.payload.map(|p| match p {
            Payload::Fixed { dims } => dims,
            Payload::Binary { words } => words,
        })
    }

    /// Whether the loaded payload is packed binary codes (Hamming
    /// kernels) rather than fixed-point feature vectors. `None` before a
    /// dataset is loaded.
    pub fn payload_is_binary(&self) -> Option<bool> {
        self.payload.map(|p| matches!(p, Payload::Binary { .. }))
    }

    /// Loads a float dataset: quantizes to Q16.16 (`nmemcpy` semantics),
    /// pads each vector to a vector-length multiple, and shards evenly
    /// across vaults.
    pub fn load_vectors(&mut self, store: &VectorStore) {
        assert!(!store.is_empty(), "cannot load an empty dataset");
        let vl = self.config.vector_length;
        let dims = store.dims();
        let vw = dims.div_ceil(vl) * vl;
        self.stage(store.len(), vw, Payload::Fixed { dims }, |id, out| {
            let v = store.get(id);
            for &x in v {
                out.push(Fix32::from_f32(x).0);
            }
            out.resize(out.len() + (vw - v.len()), 0);
        });
    }

    /// Loads a binarized dataset for Hamming kernels.
    pub fn load_binary(&mut self, store: &BinaryStore) {
        assert!(!store.is_empty(), "cannot load an empty dataset");
        let vl = self.config.vector_length;
        let words = store.words_per_vec();
        let vw = words.div_ceil(vl) * vl;
        self.stage(store.len(), vw, Payload::Binary { words }, |id, out| {
            for &w in store.get(id) {
                out.push(w as i32);
            }
            out.resize(out.len() + (vw - words), 0);
        });
    }

    fn stage(
        &mut self,
        n: usize,
        vec_words: usize,
        payload: Payload,
        mut emit: impl FnMut(u32, &mut Vec<i32>),
    ) {
        let vaults = self.config.hmc.vaults.min(n);
        let per = n.div_ceil(vaults);
        let mut shards = Vec::with_capacity(vaults);
        let mut next = 0usize;
        while next < n {
            let count = per.min(n - next);
            let mut words = Vec::with_capacity(count * vec_words);
            for id in next..next + count {
                emit(id as u32, &mut words);
            }
            shards.push(Shard {
                words: Arc::new(words),
                first_id: next as u32,
                vectors: count,
            });
            next += count;
        }
        // Shard byte span must stay within the PU's positive address space.
        let max_bytes = shards.iter().map(|s| s.words.len() * 4).max().unwrap_or(0);
        assert!(
            (DRAM_BASE as usize + max_bytes) < i32::MAX as usize,
            "shard too large for the PU address space; use more vaults"
        );
        self.shards = shards;
        self.payload = Some(payload);
        self.vec_words = vec_words;
        self.vectors = n;
        self.kernel_cache.clear();
    }

    /// Builds (or reuses) the kernel for a metric at the loaded layout.
    fn kernel_for(&mut self, metric: DeviceMetric, k: usize) -> Arc<Kernel> {
        let payload = self.payload.expect("dataset loaded");
        let vl = self.config.vector_length;
        let cache_k = if self.config.use_hw_queue { 0 } else { k };
        if let Some(kn) = self.kernel_cache.get(&(metric, cache_k)) {
            return Arc::clone(kn);
        }
        let kernel = match (metric, payload) {
            (DeviceMetric::Euclidean, Payload::Fixed { dims }) => {
                if self.config.use_hw_queue {
                    linear::euclidean(dims, vl)
                } else {
                    linear::euclidean_swqueue(dims, vl, k)
                }
            }
            (DeviceMetric::Manhattan, Payload::Fixed { dims }) => {
                if self.config.use_hw_queue {
                    linear::manhattan(dims, vl)
                } else {
                    linear::manhattan_swqueue(dims, vl, k)
                }
            }
            (DeviceMetric::Cosine, Payload::Fixed { dims }) => {
                if self.config.use_hw_queue {
                    linear::cosine(dims, vl)
                } else {
                    linear::cosine_swqueue(dims, vl, k)
                }
            }
            (DeviceMetric::Hamming, Payload::Binary { words }) => {
                if self.config.use_hw_queue {
                    linear::hamming(words, vl)
                } else {
                    linear::hamming_swqueue(words, vl, k)
                }
            }
            (m, p) => panic!("metric {m:?} incompatible with loaded payload {p:?}"),
        };
        debug_assert_eq!(kernel.layout.vec_words, self.vec_words);
        let kernel = Arc::new(kernel);
        self.kernel_cache
            .insert((metric, cache_k), Arc::clone(&kernel));
        kernel
    }

    /// Quantizes a float query to the scratchpad image (padded).
    fn quantize_query(&self, q: &[f32]) -> Vec<i32> {
        let mut out: Vec<i32> = q.iter().map(|&x| Fix32::from_f32(x).0).collect();
        out.resize(self.vec_words, 0);
        out
    }

    /// Queries per (vault, tile) work item: one simulated PU is recycled
    /// across this many queries of a batch before the scheduler moves to
    /// the next item (balances PU reuse against parallel slack across
    /// worker threads).
    const QUERY_TILE: usize = 16;

    /// Stages one query: the padded scratchpad image plus any extra
    /// driver register state (cosine's `s10` query norm).
    fn stage_query(&self, query: &DeviceQuery<'_>, payload: Payload) -> (Vec<i32>, Option<i32>) {
        match (query, payload) {
            (DeviceQuery::Euclidean(q) | DeviceQuery::Manhattan(q), Payload::Fixed { dims }) => {
                assert_eq!(q.len(), dims, "query dimensionality mismatch");
                (self.quantize_query(q), None)
            }
            (DeviceQuery::Cosine(q), Payload::Fixed { dims }) => {
                assert_eq!(q.len(), dims, "query dimensionality mismatch");
                (self.quantize_query(q), Some(Fix32::from_f32(norm_sq(q)).0))
            }
            (DeviceQuery::Hamming(q), Payload::Binary { words }) => {
                assert_eq!(q.len(), words, "query code-length mismatch");
                let mut out: Vec<i32> = q.iter().map(|&w| w as i32).collect();
                out.resize(self.vec_words, 0);
                (out, None)
            }
            _ => panic!("query representation incompatible with loaded payload"),
        }
    }

    /// Executes one query across all vaults and merges the result
    /// (`nexec` + `nread_result` semantics) — the single-query special
    /// case of [`SsamDevice::query_batch`].
    ///
    /// # Errors
    /// Returns [`SimError::ZeroK`] when `k == 0`.
    ///
    /// # Panics
    /// Panics if no dataset is loaded or the query shape mismatches it.
    pub fn query(&mut self, query: &DeviceQuery<'_>, k: usize) -> Result<DeviceResult, SimError> {
        let mut batch = self.query_batch(std::slice::from_ref(query), k)?;
        Ok(batch.results.pop().expect("one result per query"))
    }

    /// Executes a batch of queries across all vaults and merges each
    /// query's per-vault top-k on the host (Section III-E: queries are
    /// aggregated into batches before being issued to the accelerator).
    ///
    /// Functionally every query sees exactly the serial
    /// [`SsamDevice::query`] semantics — neighbors and per-query stats are
    /// bit-identical to a serial loop — but the engine parallelizes over
    /// (vault × query-tile) work items, recycles one processing unit per
    /// work item across its tile (architectural-state reset plus query
    /// rewrite instead of reconstruction), and shares one instruction
    /// image per distinct kernel instead of cloning it per (query, vault).
    /// The batch-level account in [`BatchResult::timing`] additionally
    /// pipelines each vault's runs over a single provisioning decision.
    ///
    /// # Errors
    /// Returns [`SimError::EmptyBatch`] for an empty query slice and
    /// [`SimError::ZeroK`] for `k == 0` — degenerate requests are typed
    /// rejections, not panics, so online callers (the serving runtime)
    /// can surface them without unwinding a worker.
    ///
    /// # Panics
    /// Panics if no dataset is loaded or a query shape mismatches the
    /// loaded payload (both are caller programming errors, not request
    /// data).
    pub fn query_batch(
        &mut self,
        queries: &[DeviceQuery<'_>],
        k: usize,
    ) -> Result<BatchResult, SimError> {
        assert!(!self.is_empty(), "no dataset loaded");
        if queries.is_empty() {
            return Err(SimError::EmptyBatch);
        }
        if k == 0 {
            return Err(SimError::ZeroK);
        }
        let payload = self.payload.expect("dataset loaded");

        // Stage every query up front; distinct kernels share one
        // instruction image across the whole batch.
        let stage_start = std::time::Instant::now();
        let mut programs: HashMap<String, Arc<Vec<Instruction>>> = HashMap::new();
        let staged: Vec<StagedQuery> = queries
            .iter()
            .map(|q| {
                let (words, norm) = self.stage_query(q, payload);
                let kernel = self.kernel_for(q.metric(), k);
                let optimize = self.config.optimize_kernels;
                let program =
                    Arc::clone(programs.entry(kernel.name.clone()).or_insert_with(|| {
                        Arc::new(if optimize {
                            kernel.program.clone()
                        } else {
                            kernel.raw_program.clone()
                        })
                    }));
                StagedQuery {
                    words,
                    norm,
                    metric: q.metric(),
                    kernel,
                    program,
                }
            })
            .collect();
        let stage_seconds = stage_start.elapsed().as_secs_f64();

        // Sample the per-(query, vault) fault grid up front, keyed by
        // `(seed, scope, query_seq, vault, attempt)` so any run is
        // bit-reproducible. `None` — no plan attached, or nothing fired —
        // keeps execution on the legacy fault-free path, so a zero-fault
        // plan stays bit-identical to no plan at all.
        let base_seq = self.query_seq;
        self.query_seq += queries.len() as u64;
        let fault_grid: Option<Vec<Vec<VaultFault>>> = self.faults.as_ref().and_then(|plan| {
            let grid: Vec<Vec<VaultFault>> = (0..queries.len())
                .map(|qi| {
                    (0..self.shards.len())
                        .map(|v| {
                            plan.vault_fault(
                                self.fault_scope,
                                base_seq + qi as u64,
                                v as u64,
                                self.fault_attempt,
                            )
                        })
                        .collect()
                })
                .collect();
            if grid.iter().flatten().all(VaultFault::is_trivial) {
                None
            } else {
                Some(grid)
            }
        });
        let fg = fault_grid.as_deref();

        let vl = self.config.vector_length;
        let use_hw = self.config.use_hw_queue;
        let fast_enabled = self.config.fast_path && use_hw;
        let vec_words = self.vec_words;
        let pq_chain = k.div_ceil(PQUEUE_DEPTH);
        // Generous runaway guard: the rolled chunk loop executes ~9
        // instructions per vector-length chunk plus per-vector
        // reduction/queue overhead (worst case: the software-queue
        // shifting loop).
        let per_vec = 16 * self.vec_words as u64 + 64 * k as u64 + 2048;
        let swinit: Vec<i32> = if use_hw {
            Vec::new()
        } else {
            (0..k).flat_map(|_| [i32::MAX, -1]).collect()
        };
        let shards = &self.shards;

        // (vault × query-tile) work items.
        let mut items: Vec<(usize, std::ops::Range<usize>)> = Vec::new();
        for si in 0..shards.len() {
            let mut q0 = 0;
            while q0 < staged.len() {
                let q1 = (q0 + Self::QUERY_TILE).min(staged.len());
                items.push((si, q0..q1));
                q0 = q1;
            }
        }

        // Simulate every work item (in parallel threads; each vault is an
        // independent accelerator and each tile its own PU).
        type TileOut = (usize, usize, Vec<(Vec<Neighbor>, RunStats)>);
        let tiles: Result<Vec<TileOut>, SimError> = items
            .par_iter()
            .map(|(si, range)| {
                let shard = &shards[*si];
                let mut pu = ProcessingUnit::new(vl, Arc::clone(&shard.words));
                if use_hw {
                    pu.chain_pqueue(pq_chain);
                }
                let budget = 10_000u64 + shard.vectors as u64 * per_vec;
                let mut loaded: Option<&str> = None;
                // Fast-path counters depend only on (program, vl, n), so
                // one synthesis per distinct kernel serves the whole tile.
                let mut synth: HashMap<&str, Option<RunStats>> = HashMap::new();
                let mut out = Vec::with_capacity(range.len());
                for (off, sq) in staged[range.clone()].iter().enumerate() {
                    // A vault outage means this (query, vault) run never
                    // executes: no neighbors, no retired work.
                    if fg.is_some_and(|g| g[range.start + off][*si].outage) {
                        out.push((Vec::new(), RunStats::default()));
                        continue;
                    }
                    // Analytic fast path: host-side Q16.16 distances, the
                    // same hardware priority queue, counters from the
                    // static cost model — bit-identical to the simulator
                    // without interpreting instructions. Queries whose
                    // counters do not resolve exactly (or that would trip
                    // the simulator's runaway budget) fall through to the
                    // cycle simulator below.
                    if fast_enabled && fastpath::supported(sq.metric) {
                        let stats = *synth.entry(sq.kernel.name.as_str()).or_insert_with(|| {
                            fastpath::synthesize_stats(&sq.program, vl, shard.vectors as u64)
                        });
                        if let Some(stats) = stats.filter(|s| s.instructions <= budget) {
                            let neighbors = fastpath::scan_shard(
                                sq.metric,
                                &sq.words,
                                &shard.words,
                                vec_words,
                                k,
                                pq_chain,
                            )
                            .into_iter()
                            .map(|(id, value)| {
                                Neighbor::new(shard.first_id + id as u32, host_dist(payload, value))
                            })
                            .collect();
                            out.push((neighbors, stats));
                            continue;
                        }
                    }
                    if loaded.is_some() {
                        pu.reset_state();
                    }
                    if loaded != Some(sq.kernel.name.as_str()) {
                        pu.load_program(Arc::clone(&sq.program));
                        loaded = Some(sq.kernel.name.as_str());
                    }
                    pu.scratchpad_mut()
                        .write_block(sq.kernel.layout.query_addr, &sq.words)
                        .expect("query fits scratchpad");
                    if !use_hw {
                        // Initialize the software queue: k (MAX, -1) pairs.
                        pu.scratchpad_mut()
                            .write_block(sq.kernel.layout.swqueue_addr, &swinit)
                            .expect("queue fits scratchpad");
                    }
                    pu.set_sreg(1, DRAM_BASE as i32);
                    pu.set_sreg(2, DRAM_BASE as i32 + (shard.words.len() * 4) as i32);
                    pu.set_sreg(3, 0); // local ids; remapped below
                    if let Some(norm) = sq.norm {
                        pu.set_sreg(10, norm);
                    }
                    let stats = pu.run(budget)?;

                    let neighbors: Vec<Neighbor> = if use_hw {
                        pu.pqueue()
                            .entries()
                            .iter()
                            .take(k)
                            .map(|e| {
                                Neighbor::new(
                                    shard.first_id + e.id as u32,
                                    host_dist(payload, e.value),
                                )
                            })
                            .collect()
                    } else {
                        pu.scratchpad()
                            .read_block(sq.kernel.layout.swqueue_addr, 2 * k)
                            .expect("queue readable")
                            .chunks_exact(2)
                            .filter(|pair| pair[1] >= 0)
                            .map(|pair| {
                                Neighbor::new(
                                    shard.first_id + pair[1] as u32,
                                    host_dist(payload, pair[0]),
                                )
                            })
                            .collect()
                    };
                    out.push((neighbors, stats));
                }
                Ok((*si, range.start, out))
            })
            .collect();
        let tiles = tiles?;

        // Reassemble the (query, vault) grid in vault order.
        let n_vaults = shards.len();
        let batch = staged.len();
        type Cell = Option<(Vec<Neighbor>, RunStats)>;
        let mut grid: Vec<Vec<Cell>> = (0..batch)
            .map(|_| (0..n_vaults).map(|_| None).collect())
            .collect();
        for (si, q0, rows) in tiles {
            for (off, cell) in rows.into_iter().enumerate() {
                grid[q0 + off][si] = Some(cell);
            }
        }

        // Per-query host-side global top-k reduction + serial-equivalent
        // timing, then the batch-level pipelined account.
        let mut results = Vec::with_capacity(batch);
        let mut per_query_stats: Vec<Vec<RunStats>> = Vec::with_capacity(batch);
        let mut query_records: Vec<QueryRecord> = Vec::new();
        let mut per_query_faults: Vec<FaultRecord> = Vec::with_capacity(batch);
        for (qi, row) in grid.into_iter().enumerate() {
            let mut vault_stats = Vec::with_capacity(n_vaults);
            let mut vault_neighbors = Vec::with_capacity(n_vaults);
            for cell in row {
                let (neighbors, stats) = cell.expect("every (vault, query) item simulated");
                vault_neighbors.push(neighbors);
                vault_stats.push(stats);
            }
            let fault_row = fault_grid
                .as_ref()
                .map(|g| (base_seq + qi as u64, g[qi].as_slice()));
            let (timing, accounts, mut phases, frec) =
                self.account_query(&vault_stats, k, fault_row);
            // Merge per-vault candidates, dropping vaults whose results
            // were lost (outage, uncorrectable ECC, exhausted link
            // retries): the answer is exact over the covered fraction.
            let mut top = TopK::new(k);
            for (vi, neighbors) in vault_neighbors.iter().enumerate() {
                if fault_grid.as_ref().is_some_and(|g| g[qi][vi].lost()) {
                    continue;
                }
                for n in neighbors {
                    top.offer(n.id, n.dist);
                }
            }
            if self.telemetry.is_some() {
                phases.stage_seconds = stage_seconds / batch as f64;
                query_records.push(QueryRecord {
                    seq: 0,
                    kind: RecordKind::Query,
                    label: staged[qi].kernel.name.clone(),
                    batch: 1,
                    k,
                    pus_per_vault: timing.pus_per_vault,
                    vaults: accounts,
                    phases,
                    seconds: timing.seconds,
                    compute_bound: timing.compute_bound,
                    total_cycles: timing.total_cycles,
                    total_bytes: timing.total_bytes,
                    energy_mj: timing.energy_mj,
                    faults: frec.clone(),
                });
            }
            per_query_stats.push(vault_stats.clone());
            per_query_faults.push(frec.clone());
            results.push(DeviceResult {
                neighbors: top.into_sorted(),
                timing,
                vault_stats,
                faults: frec,
            });
        }
        let batch_faults = fault_grid
            .as_ref()
            .map(|g| (g.as_slice(), per_query_faults.as_slice()));
        let (timing, accounts, mut phases, batch_frec) =
            self.account_batch(&per_query_stats, k, batch_faults);
        if let Some(sink) = &self.telemetry {
            for r in &query_records {
                sink.record(r.clone());
            }
            phases.stage_seconds = stage_seconds;
            let batch_record = QueryRecord {
                seq: 0,
                kind: RecordKind::Batch,
                label: format!("batch[{batch}]"),
                batch,
                k,
                pus_per_vault: timing.pus_per_vault,
                vaults: accounts,
                phases,
                seconds: timing.seconds,
                compute_bound: timing.compute_bound,
                total_cycles: timing.total_cycles,
                total_bytes: timing.total_bytes,
                energy_mj: timing.energy_mj,
                faults: batch_frec.clone(),
            };
            sink.record_batch(batch_record, &query_records);
        }
        Ok(BatchResult {
            results,
            timing,
            faults: batch_frec,
        })
    }

    /// Derives query time and energy from per-vault simulation statistics.
    ///
    /// Per vault: the shard can be split across up to `max_pus_per_vault`
    /// PUs; replication is provisioned so PU compute no longer trails the
    /// vault's 10 GB/s ("replicate processing units to fully use the
    /// memory bandwidth"). Vault time is the roofline
    /// `max(bytes / vault_bw, cycles / (n_pu · freq))`; the query ends
    /// when the slowest vault does, plus the external-link transfer of
    /// the k-tuple results and a host merge allowance.
    /// Provisions PUs from the densest vault's streaming demand.
    fn provision_pus(&self, vault_stats: &[RunStats]) -> usize {
        let cfg = &self.config;
        let mut pus = 1usize;
        for s in vault_stats {
            // A vault that retired nothing (outage-injected) exerts no
            // streaming demand; without this skip its 0/0 roofline would
            // read as insatiable and force max provisioning. Fault-free
            // runs always retire cycles, so the legacy path is untouched.
            if s.cycles == 0 && s.dram.bytes_read == 0 {
                continue;
            }
            let bytes = s.dram.bytes_read.max(1) as f64;
            let secs = s.cycles.max(1) as f64 / cfg.freq_hz;
            let demand = bytes / secs; // one PU's streaming demand
            let need = (cfg.hmc.vault_bandwidth / demand).ceil() as usize;
            pus = pus.max(need.clamp(1, cfg.max_pus_per_vault));
        }
        pus
    }

    /// Timing-only view of [`SsamDevice::account_query`] (test seam for
    /// the classification regression tests).
    #[cfg(test)]
    fn derive_timing(&self, vault_stats: &[RunStats], k: usize) -> QueryTiming {
        self.account_query(vault_stats, k, None).0
    }

    /// Derives the query account: the summary [`QueryTiming`] plus the
    /// per-vault [`VaultAccount`]s and phase spans backing it. The
    /// memory-vs-compute classification comes from
    /// [`telemetry::critical_path`] — the vault that actually sets the
    /// critical path (strictly-greater keeps the first argmax on ties).
    fn account_query(
        &self,
        vault_stats: &[RunStats],
        k: usize,
        fault_row: Option<(u64, &[VaultFault])>,
    ) -> (QueryTiming, Vec<VaultAccount>, Phases, FaultRecord) {
        let cfg = &self.config;
        let pus = self.provision_pus(vault_stats);

        let mut vaults: Vec<VaultAccount> = vault_stats
            .iter()
            .enumerate()
            .map(|(i, s)| VaultAccount::from_stats(i, s, cfg.hmc.vault_bandwidth, cfg.freq_hz, pus))
            .collect();
        let rec = self.settle_faults(&mut vaults, k, fault_row);
        let (_, worst, compute_bound) =
            telemetry::critical_path(&vaults).unwrap_or((0, 0.0, false));

        // Result collection: each vault that completed its scan and had
        // data to send returns k (id, value) tuples (outage and
        // uncorrectable-ECC vaults never transmit); the host then merges
        // one k-list per vault whose transfer survived. Without faults
        // both counts equal the vault count, so the fault-free expression
        // is unchanged.
        let transfers = vault_stats.len() as u64 - rec.vault_outages - rec.lost_ecc;
        let merged = vault_stats.len() as u64 - rec.lost_units.len() as u64;
        let result_bytes = transfers * k as u64 * 8;
        let link_t =
            ssam_hmc::packet::bulk_wire_bytes(result_bytes) as f64 / cfg.hmc.external_bandwidth;
        // Host merge: ~log-depth reduction over vaults·k tuples at ~1 ns each.
        let merge_t = (merged * k as u64) as f64 * 1e-9;

        // `recovery_seconds` is 0.0 on the fault-free path, and adding
        // 0.0 to a finite non-negative sum is bitwise identity.
        let seconds = worst + link_t + merge_t + rec.recovery_seconds;

        // Energy: per-vault accelerator power at observed activity, over
        // the query duration, for every active PU.
        let mut energy_mj = 0.0;
        let mut total_cycles = 0u64;
        let mut total_bytes = 0u64;
        for (v, s) in vaults.iter_mut().zip(vault_stats) {
            let act = Activity::from_stats(s);
            let power_mw = effective_power(cfg.vector_length, &act);
            v.energy_mj = power_mw * seconds * pus as f64;
            energy_mj += v.energy_mj;
            total_cycles += s.cycles;
            total_bytes += s.dram.bytes_read;
        }

        let timing = QueryTiming {
            seconds,
            pus_per_vault: pus,
            compute_bound,
            total_cycles,
            total_bytes,
            energy_mj,
        };
        let phases = Phases {
            stage_seconds: 0.0,
            simulate_seconds: worst,
            link_seconds: link_t,
            merge_seconds: merge_t,
            fault_seconds: rec.recovery_seconds,
        };
        (timing, vaults, phases, rec)
    }

    /// Applies one query's fault row to its per-vault accounts and builds
    /// the closed [`FaultRecord`]: stragglers stretch their vault's
    /// roofline, every injected bit-flip event is pushed through the real
    /// SECDED codec over the actual shard words, CRC retries accrue
    /// recovery time, and each lost vault is attributed to exactly one
    /// cause (outage ≻ uncorrectable ECC ≻ link failure).
    fn settle_faults(
        &self,
        vaults: &mut [VaultAccount],
        k: usize,
        fault_row: Option<(u64, &[VaultFault])>,
    ) -> FaultRecord {
        let mut rec = FaultRecord::default();
        let Some((seq, row)) = fault_row else {
            return rec;
        };
        let plan = self
            .faults
            .as_ref()
            .expect("a sampled fault row implies an attached plan");
        rec.total_vectors = self.vectors as u64;
        // Retransmissions re-send this vault's k-tuple result payload.
        let per_vault_wire = ssam_hmc::packet::bulk_wire_bytes((k * 8) as u64) as f64
            / self.config.hmc.external_bandwidth;
        for (vi, f) in row.iter().enumerate() {
            if f.outage {
                rec.vault_outages += 1;
                rec.lost_outage += 1;
                rec.lost_units.push(vi as u32);
                continue;
            }
            if f.slowdown != 1.0 {
                // The straggling vault still scans — only slower; its
                // results remain valid, so it stretches the critical path
                // rather than shrinking coverage.
                vaults[vi].mem_seconds *= f.slowdown;
                vaults[vi].comp_seconds *= f.slowdown;
                rec.stragglers += 1;
            }
            rec.bit_flip_events += u64::from(f.bit_flip_events);
            if f.bit_flip_events > 0 {
                let words = &self.shards[vi].words;
                for e in 0..f.bit_flip_events {
                    // Which events are double matters only in aggregate;
                    // exercise the first `double_bit_events` as doubles.
                    let double = e < f.double_bit_events;
                    let widx = (plan.victim_index(self.fault_scope, seq, vi as u64, e)
                        % words.len() as u64) as usize;
                    let clean = words[widx] as u32;
                    let code = Secded32::encode(clean);
                    let (p0, p1) = plan.flip_positions(
                        self.fault_scope,
                        seq,
                        vi as u64,
                        e,
                        SECDED_CODE_BITS,
                        double,
                    );
                    let mut corrupted = code ^ (1u64 << p0);
                    if double {
                        corrupted ^= 1u64 << p1;
                    }
                    match Secded32::decode(corrupted) {
                        SecdedOutcome::Corrected { data, .. } => {
                            debug_assert!(!double, "double flip slipped past detection");
                            debug_assert_eq!(data, clean, "miscorrected word");
                            rec.ecc_corrected += 1;
                        }
                        SecdedOutcome::DoubleError => {
                            debug_assert!(double, "single flip flagged uncorrectable");
                            rec.ecc_uncorrectable += 1;
                        }
                        SecdedOutcome::Clean(_) => {
                            debug_assert!(false, "injected flip decoded clean");
                        }
                    }
                }
            }
            if f.uncorrectable() {
                // The vault detects the poisoned data and withholds its
                // result; the transfer never happens, so the CRC channel
                // had no opportunity to fire.
                rec.lost_ecc += 1;
                rec.lost_units.push(vi as u32);
                continue;
            }
            rec.crc_corruptions += u64::from(f.crc_corruptions);
            rec.recovery_seconds +=
                f64::from(f.crc_corruptions) * (per_vault_wire + plan.link_retry_penalty);
            if f.link_failed {
                rec.link_failures += 1;
                rec.link_failed_attempts += u64::from(f.crc_corruptions);
                rec.lost_link += 1;
                rec.lost_units.push(vi as u32);
            } else {
                rec.link_retries_ok += u64::from(f.crc_corruptions);
            }
        }
        for (vi, shard) in self.shards.iter().enumerate() {
            if !row[vi].lost() {
                rec.covered_vectors += shard.vectors as u64;
            }
        }
        rec
    }

    /// Derives the batch-level time/energy account: one PU-provisioning
    /// decision covers every (query, vault) run; each vault pipelines its
    /// `B` kernel runs, so per-vault time is `max(Σ mem, Σ comp)` rather
    /// than `Σ max`; the external-link transfer and host merge are paid
    /// once per query.
    /// Derives the batch account: summary [`BatchTiming`] plus per-vault
    /// accounts (each vault's counters summed over its `B` pipelined
    /// runs via [`RunStats::accumulate`]) and phase spans. Like
    /// [`SsamDevice::account_query`], the classification comes from the
    /// argmax vault of [`telemetry::critical_path`].
    fn account_batch(
        &self,
        per_query_stats: &[Vec<RunStats>],
        k: usize,
        batch_faults: Option<(&[Vec<VaultFault>], &[FaultRecord])>,
    ) -> (BatchTiming, Vec<VaultAccount>, Phases, FaultRecord) {
        let cfg = &self.config;
        let freq = cfg.freq_hz;
        let batch = per_query_stats.len();
        let n_vaults = per_query_stats.first().map_or(0, Vec::len);

        // One provisioning decision across every (query, vault) run.
        let mut pus = 1usize;
        for q in per_query_stats {
            pus = pus.max(self.provision_pus(q));
        }

        // Each vault pipelines its `B` runs: per-vault time is
        // `max(Σ mem, Σ comp)`, i.e. the roofline over the summed
        // counters.
        let mut vaults: Vec<VaultAccount> = (0..n_vaults)
            .map(|v| {
                let mut summed = RunStats::default();
                for q in per_query_stats {
                    summed.accumulate(&q[v]);
                }
                VaultAccount::from_stats(v, &summed, cfg.hmc.vault_bandwidth, freq, pus)
            })
            .collect();
        let mut batch_rec = FaultRecord::default();
        if let Some((grid, recs)) = batch_faults {
            // Stragglers stretch only their own run's share of the
            // pipelined vault time: add `(slowdown − 1) · run_time` on
            // top of the already-summed nominal counters.
            for (q, row) in per_query_stats.iter().zip(grid) {
                for (v, (s, f)) in q.iter().zip(row).enumerate() {
                    if f.outage || f.slowdown == 1.0 {
                        continue;
                    }
                    let extra = f.slowdown - 1.0;
                    vaults[v].mem_seconds +=
                        extra * s.dram.bytes_read as f64 / cfg.hmc.vault_bandwidth;
                    vaults[v].comp_seconds += extra * s.cycles as f64 / (pus as f64 * freq);
                }
            }
            for v in vaults.iter_mut() {
                v.compute_bound = v.comp_seconds > v.mem_seconds;
            }
            for r in recs {
                batch_rec.accumulate(r);
            }
        }
        let (_, worst, compute_bound) =
            telemetry::critical_path(&vaults).unwrap_or((0, 0.0, false));

        let mut total_cycles = 0u64;
        let mut total_bytes = 0u64;
        for v in &vaults {
            total_cycles += v.cycles;
            total_bytes += v.bytes;
        }

        // Each query still returns vaults·k (id, value) tuples over the
        // external link and pays its own host merge — minus the vaults
        // whose transfers a fault suppressed. Without faults this reduces
        // to the legacy `batch · (link + merge)` expression exactly.
        let result_bytes = (n_vaults * k * 8) as u64;
        let link_t =
            ssam_hmc::packet::bulk_wire_bytes(result_bytes) as f64 / cfg.hmc.external_bandwidth;
        let merge_t = (n_vaults * k) as f64 * 1e-9;
        let (host_t, link_total, merge_total) = match batch_faults {
            // Fault-free: keep the exact legacy expression (grouping and
            // all) so the zero-fault batch account stays bit-identical.
            None => (
                batch as f64 * (link_t + merge_t),
                batch as f64 * link_t,
                batch as f64 * merge_t,
            ),
            Some((_, recs)) => {
                let mut lt = 0.0;
                let mut mt = 0.0;
                for r in recs {
                    let transfers = n_vaults as u64 - r.vault_outages - r.lost_ecc;
                    let merged = n_vaults as u64 - r.lost_units.len() as u64;
                    lt += ssam_hmc::packet::bulk_wire_bytes(transfers * k as u64 * 8) as f64
                        / cfg.hmc.external_bandwidth;
                    mt += (merged * k as u64) as f64 * 1e-9;
                }
                (lt + mt, lt, mt)
            }
        };
        let seconds = worst + host_t + batch_rec.recovery_seconds;

        // Energy: every (query, vault) run burns its activity-scaled PU
        // power over its share of the batch window, charged to its vault.
        let mut energy_mj = 0.0;
        let per_query_window = seconds / batch.max(1) as f64;
        for q in per_query_stats {
            for (v, s) in vaults.iter_mut().zip(q) {
                let act = Activity::from_stats(s);
                let e = effective_power(cfg.vector_length, &act) * per_query_window * pus as f64;
                v.energy_mj += e;
                energy_mj += e;
            }
        }

        let timing = BatchTiming {
            batch,
            seconds,
            seconds_per_query: seconds / batch.max(1) as f64,
            queries_per_second: batch as f64 / seconds,
            pus_per_vault: pus,
            compute_bound,
            total_cycles,
            total_bytes,
            energy_mj,
        };
        let phases = Phases {
            stage_seconds: 0.0,
            simulate_seconds: worst,
            link_seconds: link_total,
            merge_seconds: merge_total,
            fault_seconds: batch_rec.recovery_seconds,
        };
        (timing, vaults, phases, batch_rec)
    }

    /// Throughput estimate for a batch, from one batched execution
    /// ([`SsamDevice::query_batch`]).
    pub fn estimate_throughput(
        &mut self,
        queries: &[DeviceQuery<'_>],
        k: usize,
    ) -> Result<BatchEstimate, SimError> {
        assert!(!queries.is_empty(), "need at least one sample query");
        let b = self.query_batch(queries, k)?;
        Ok(BatchEstimate {
            seconds_per_query: b.timing.seconds_per_query,
            queries_per_second: b.timing.queries_per_second,
            energy_mj_per_query: b.timing.energy_mj / b.results.len() as f64,
            pus_per_vault: b.timing.pus_per_vault,
        })
    }
}

/// Batch-level timing/energy account from one [`SsamDevice::query_batch`]
/// execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchTiming {
    /// Queries in the batch.
    pub batch: usize,
    /// Wall-clock seconds for the whole batch: the slowest vault's
    /// pipelined run of all queries, plus per-query link transfer and
    /// host merge.
    pub seconds: f64,
    /// `seconds / batch`.
    pub seconds_per_query: f64,
    /// `batch / seconds`.
    pub queries_per_second: f64,
    /// Processing units provisioned per vault for the whole batch.
    pub pus_per_vault: usize,
    /// True when compute cycles (not vault bandwidth) set the pace on the
    /// critical vault.
    pub compute_bound: bool,
    /// Aggregate simulated cycles across all (query, vault) runs.
    pub total_cycles: u64,
    /// Aggregate DRAM bytes streamed across the batch.
    pub total_bytes: u64,
    /// Device energy for the whole batch in millijoules.
    pub energy_mj: f64,
}

/// Result of one batched device execution.
#[derive(Debug, Clone)]
pub struct BatchResult {
    /// Per-query results in submission order. Each result's `timing`
    /// describes that query as if executed alone (serial-equivalent);
    /// the batch-level account is in [`BatchResult::timing`].
    pub results: Vec<DeviceResult>,
    /// Batch-level pipelined timing/energy.
    pub timing: BatchTiming,
    /// Accumulated fault accounting over every query in the batch.
    pub faults: FaultRecord,
}

/// Batch throughput/energy estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchEstimate {
    /// Mean seconds per query.
    pub seconds_per_query: f64,
    /// Queries per second.
    pub queries_per_second: f64,
    /// Mean energy per query (mJ).
    pub energy_mj_per_query: f64,
    /// PUs provisioned per vault.
    pub pus_per_vault: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssam_knn::binary::{knn_hamming, BinaryStore};
    use ssam_knn::linear::knn_exact;
    use ssam_knn::Metric;

    use rand::rngs::StdRng;
    use rand::RngExt;
    use rand::SeedableRng;

    fn random_store(n: usize, dims: usize, seed: u64) -> VectorStore {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut s = VectorStore::with_capacity(dims, n);
        for _ in 0..n {
            let v: Vec<f32> = (0..dims).map(|_| rng.random_range(-1.0..1.0)).collect();
            s.push(&v);
        }
        s
    }

    fn device(vl: usize) -> SsamDevice {
        SsamDevice::new(SsamConfig {
            vector_length: vl,
            ..SsamConfig::default()
        })
    }

    #[test]
    fn euclidean_device_matches_reference_exactly() {
        let store = random_store(300, 10, 1);
        let mut dev = device(4);
        dev.load_vectors(&store);
        let q: Vec<f32> = store.get(7).to_vec();
        let result = dev.query(&DeviceQuery::Euclidean(&q), 5).expect("runs");
        let expect: Vec<u32> = knn_exact(&store, &q, 5, Metric::Euclidean)
            .iter()
            .map(|n| n.id)
            .collect();
        let got: Vec<u32> = result.neighbors.iter().map(|n| n.id).collect();
        assert_eq!(got, expect);
        assert_eq!(result.neighbors[0].id, 7);
        assert_eq!(result.neighbors[0].dist, 0.0);
    }

    #[test]
    fn all_vector_lengths_agree() {
        let store = random_store(120, 7, 2);
        let q: Vec<f32> = (0..7).map(|i| 0.05 * i as f32).collect();
        let mut ids_by_vl = Vec::new();
        for vl in [2, 4, 8, 16] {
            let mut dev = device(vl);
            dev.load_vectors(&store);
            let r = dev.query(&DeviceQuery::Euclidean(&q), 8).expect("runs");
            ids_by_vl.push(r.neighbors.iter().map(|n| n.id).collect::<Vec<_>>());
        }
        for w in ids_by_vl.windows(2) {
            assert_eq!(w[0], w[1]);
        }
    }

    #[test]
    fn manhattan_device_matches_reference() {
        let store = random_store(200, 6, 3);
        let mut dev = device(4);
        dev.load_vectors(&store);
        let q: Vec<f32> = (0..6).map(|i| -0.1 * i as f32).collect();
        let r = dev.query(&DeviceQuery::Manhattan(&q), 6).expect("runs");
        let expect: Vec<u32> = knn_exact(&store, &q, 6, Metric::Manhattan)
            .iter()
            .map(|n| n.id)
            .collect();
        let got: Vec<u32> = r.neighbors.iter().map(|n| n.id).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn cosine_device_ranks_by_cosine_distance() {
        let store = random_store(150, 8, 4);
        let mut dev = device(4);
        dev.load_vectors(&store);
        let q: Vec<f32> = (0..8).map(|i| (i as f32 * 0.7).sin()).collect();
        let r = dev.query(&DeviceQuery::Cosine(&q), 5).expect("runs");
        let expect: Vec<u32> = knn_exact(&store, &q, 5, Metric::Cosine)
            .iter()
            .map(|n| n.id)
            .collect();
        let got: Vec<u32> = r.neighbors.iter().map(|n| n.id).collect();
        // cos² ranking may permute near-ties; demand ≥4/5 overlap and an
        // exact best match.
        let overlap = got.iter().filter(|id| expect.contains(id)).count();
        assert!(overlap >= 4, "got {got:?} expect {expect:?}");
        assert_eq!(got[0], expect[0]);
    }

    #[test]
    fn hamming_device_matches_reference() {
        let mut codes = BinaryStore::new(64);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..200 {
            codes.push(&[rng.random::<u32>(), rng.random::<u32>()]);
        }
        let mut dev = device(4);
        dev.load_binary(&codes);
        let q = [0xDEAD_BEEFu32, 0x1234_5678];
        let r = dev.query(&DeviceQuery::Hamming(&q), 7).expect("runs");
        let expect: Vec<u32> = knn_hamming(&codes, &q, 7).iter().map(|n| n.id).collect();
        let got: Vec<u32> = r.neighbors.iter().map(|n| n.id).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn software_queue_matches_hardware_queue() {
        let store = random_store(250, 5, 6);
        let q: Vec<f32> = (0..5).map(|i| 0.2 * i as f32).collect();
        let mut hw = device(4);
        hw.load_vectors(&store);
        let mut sw = SsamDevice::new(SsamConfig {
            use_hw_queue: false,
            ..SsamConfig::default()
        });
        sw.load_vectors(&store);
        let rh = hw.query(&DeviceQuery::Euclidean(&q), 8).expect("hw runs");
        let rs = sw.query(&DeviceQuery::Euclidean(&q), 8).expect("sw runs");
        let ih: Vec<u32> = rh.neighbors.iter().map(|n| n.id).collect();
        let is: Vec<u32> = rs.neighbors.iter().map(|n| n.id).collect();
        assert_eq!(ih, is);
        // The ablation claim: software queue costs cycles.
        assert!(rs.timing.total_cycles > rh.timing.total_cycles);
    }

    #[test]
    fn large_k_chains_priority_queues() {
        let store = random_store(300, 4, 7);
        let mut dev = device(2);
        dev.load_vectors(&store);
        let q = [0.0f32; 4];
        let r = dev.query(&DeviceQuery::Euclidean(&q), 40).expect("runs");
        assert_eq!(r.neighbors.len(), 40);
        let expect: Vec<u32> = knn_exact(&store, &q, 40, Metric::Euclidean)
            .iter()
            .map(|n| n.id)
            .collect();
        let got: Vec<u32> = r.neighbors.iter().map(|n| n.id).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn sharding_spreads_across_vaults() {
        let store = random_store(320, 4, 8);
        let mut dev = device(4);
        dev.load_vectors(&store);
        assert_eq!(dev.shards.len(), 32);
        let covered: usize = dev.shards.iter().map(|s| s.vectors).sum();
        assert_eq!(covered, 320);
    }

    #[test]
    fn tiny_dataset_uses_fewer_vaults() {
        let store = random_store(5, 4, 9);
        let mut dev = device(4);
        dev.load_vectors(&store);
        assert!(dev.shards.len() <= 5);
        let q = [0.0f32; 4];
        let r = dev.query(&DeviceQuery::Euclidean(&q), 3).expect("runs");
        assert_eq!(r.neighbors.len(), 3);
    }

    #[test]
    fn timing_is_positive_and_consistent() {
        let store = random_store(200, 16, 10);
        let mut dev = device(8);
        dev.load_vectors(&store);
        let q = [0.1f32; 16];
        let r = dev.query(&DeviceQuery::Euclidean(&q), 5).expect("runs");
        assert!(r.timing.seconds > 0.0);
        assert!(r.timing.energy_mj > 0.0);
        assert!(r.timing.pus_per_vault >= 1);
        assert!(r.timing.total_bytes >= (200 * 16 * 4) as u64);
    }

    #[test]
    fn estimate_throughput_averages_queries() {
        let store = random_store(100, 8, 11);
        let mut dev = device(4);
        dev.load_vectors(&store);
        let q1 = [0.0f32; 8];
        let q2 = [0.5f32; 8];
        let est = dev
            .estimate_throughput(
                &[DeviceQuery::Euclidean(&q1), DeviceQuery::Euclidean(&q2)],
                4,
            )
            .expect("runs");
        assert!(est.queries_per_second > 0.0);
        assert!((est.seconds_per_query * est.queries_per_second - 1.0).abs() < 0.5);
    }

    #[test]
    #[should_panic(expected = "query dimensionality mismatch")]
    fn dimension_mismatch_panics() {
        let store = random_store(10, 4, 12);
        let mut dev = device(4);
        dev.load_vectors(&store);
        let q = [0.0f32; 5];
        let _ = dev.query(&DeviceQuery::Euclidean(&q), 1);
    }

    #[test]
    fn all_metrics_return_exact_results_under_software_queue() {
        // Regression: `kernel_for` used to fall through to the HW-queue
        // kernels for Manhattan/Cosine/Hamming when `use_hw_queue` was
        // off, while the driver read the never-written software-queue
        // region — every non-Euclidean software-queue query came back
        // empty.
        let store = random_store(200, 6, 21);
        let mut dev = SsamDevice::new(SsamConfig {
            use_hw_queue: false,
            ..SsamConfig::default()
        });
        dev.load_vectors(&store);
        let q: Vec<f32> = (0..6).map(|i| 0.15 * i as f32 - 0.3).collect();
        for (query, metric) in [
            (DeviceQuery::Euclidean(&q), Metric::Euclidean),
            (DeviceQuery::Manhattan(&q), Metric::Manhattan),
        ] {
            let r = dev.query(&query, 5).expect("runs");
            let expect: Vec<u32> = knn_exact(&store, &q, 5, metric)
                .iter()
                .map(|n| n.id)
                .collect();
            let got: Vec<u32> = r.neighbors.iter().map(|n| n.id).collect();
            assert_eq!(got, expect, "{metric:?} under software queue");
        }
        // Cosine: the device's cos² transform may permute near-ties;
        // demand a full result set, an exact best match, and ≥4/5 overlap.
        let r = dev.query(&DeviceQuery::Cosine(&q), 5).expect("runs");
        assert_eq!(r.neighbors.len(), 5);
        let expect: Vec<u32> = knn_exact(&store, &q, 5, Metric::Cosine)
            .iter()
            .map(|n| n.id)
            .collect();
        assert_eq!(r.neighbors[0].id, expect[0]);
        let overlap = r
            .neighbors
            .iter()
            .filter(|n| expect.contains(&n.id))
            .count();
        assert!(overlap >= 4, "cosine under software queue: {overlap}/5");

        let mut codes = BinaryStore::new(64);
        let mut rng = StdRng::seed_from_u64(22);
        for _ in 0..150 {
            codes.push(&[rng.random::<u32>(), rng.random::<u32>()]);
        }
        let mut dev = SsamDevice::new(SsamConfig {
            use_hw_queue: false,
            ..SsamConfig::default()
        });
        dev.load_binary(&codes);
        let qc = [0xFACE_FEEDu32, 0x0BAD_F00D];
        let r = dev.query(&DeviceQuery::Hamming(&qc), 6).expect("runs");
        let expect: Vec<u32> = knn_hamming(&codes, &qc, 6).iter().map(|n| n.id).collect();
        let got: Vec<u32> = r.neighbors.iter().map(|n| n.id).collect();
        assert_eq!(got, expect, "Hamming under software queue");
    }

    #[test]
    fn device_distances_are_in_float_units() {
        // Regression: readout used to cast the raw Q16.16 word to f32,
        // reporting distances 65536× the CPU baseline.
        let store = random_store(120, 8, 23);
        let mut dev = device(4);
        dev.load_vectors(&store);
        let q: Vec<f32> = store.get(3).to_vec();
        for query in [DeviceQuery::Euclidean(&q), DeviceQuery::Manhattan(&q)] {
            let metric = match query.metric() {
                DeviceMetric::Euclidean => Metric::Euclidean,
                _ => Metric::Manhattan,
            };
            let r = dev.query(&query, 5).expect("runs");
            let expect = knn_exact(&store, &q, 5, metric);
            for (got, want) in r.neighbors.iter().zip(&expect) {
                assert!(
                    (got.dist - want.dist).abs() < 1e-2,
                    "{metric:?}: device {} vs reference {}",
                    got.dist,
                    want.dist
                );
            }
        }
        // Hamming distances stay in raw popcount units.
        let mut codes = BinaryStore::new(32);
        for w in 0u32..50 {
            codes.push(&[w.wrapping_mul(0x9E37_79B9)]);
        }
        let mut dev = device(4);
        dev.load_binary(&codes);
        let qc = [codes.get(11)[0]];
        let r = dev.query(&DeviceQuery::Hamming(&qc), 3).expect("runs");
        assert_eq!(r.neighbors[0].id, 11);
        assert_eq!(r.neighbors[0].dist, 0.0);
        assert_eq!(r.neighbors[1].dist, r.neighbors[1].dist.round());
    }

    #[test]
    fn query_batch_matches_serial_loop() {
        let store = random_store(180, 6, 24);
        let mut dev = device(4);
        dev.load_vectors(&store);
        let qs: Vec<Vec<f32>> = (0..5)
            .map(|i| (0..6).map(|j| ((i * 7 + j) as f32 * 0.3).sin()).collect())
            .collect();
        let queries: Vec<DeviceQuery<'_>> = qs.iter().map(|q| DeviceQuery::Euclidean(q)).collect();
        let batch = dev.query_batch(&queries, 4).expect("batch runs");
        assert_eq!(batch.results.len(), 5);
        assert_eq!(batch.timing.batch, 5);
        for (q, r) in queries.iter().zip(&batch.results) {
            let serial = dev.query(q, 4).expect("serial runs");
            assert_eq!(serial.neighbors, r.neighbors);
            assert_eq!(serial.vault_stats, r.vault_stats);
            assert_eq!(serial.timing, r.timing);
        }
    }

    #[test]
    fn mixed_metric_batch_matches_serial_loop() {
        // Kernel switches inside one tile exercise the program-reload path
        // of the recycled PUs.
        let store = random_store(100, 6, 26);
        let mut dev = device(4);
        dev.load_vectors(&store);
        let q1: Vec<f32> = (0..6).map(|i| 0.2 * i as f32).collect();
        let q2: Vec<f32> = (0..6).map(|i| -0.1 * i as f32).collect();
        let queries = [
            DeviceQuery::Euclidean(&q1),
            DeviceQuery::Manhattan(&q2),
            DeviceQuery::Euclidean(&q2),
        ];
        let batch = dev.query_batch(&queries, 3).expect("runs");
        for (q, r) in queries.iter().zip(&batch.results) {
            let serial = dev.query(q, 3).expect("runs");
            assert_eq!(serial.neighbors, r.neighbors);
            assert_eq!(serial.vault_stats, r.vault_stats);
        }
    }

    #[test]
    fn batch_timing_amortizes_over_serial_execution() {
        let store = random_store(160, 8, 25);
        let mut dev = device(4);
        dev.load_vectors(&store);
        let qs: Vec<Vec<f32>> = (0..4)
            .map(|i| (0..8).map(|j| 0.1 * (i + j) as f32).collect())
            .collect();
        let queries: Vec<DeviceQuery<'_>> = qs.iter().map(|q| DeviceQuery::Euclidean(q)).collect();
        let batch = dev.query_batch(&queries, 4).expect("runs");
        // Pipelining can only help: max(Σ mem, Σ comp) ≤ Σ max(mem, comp).
        let serial_total: f64 = batch.results.iter().map(|r| r.timing.seconds).sum();
        assert!(batch.timing.seconds > 0.0);
        assert!(batch.timing.seconds <= serial_total + 1e-12);
        assert!(
            (batch.timing.queries_per_second * batch.timing.seconds_per_query - 1.0).abs() < 1e-9
        );
        assert!(batch.timing.energy_mj > 0.0);
        assert!(batch.timing.total_bytes >= 4 * (160 * 8 * 4) as u64);
    }

    fn stat(bytes: u64, cycles: u64) -> RunStats {
        RunStats {
            cycles,
            dram: crate::sim::memif::DramStats {
                bytes_read: bytes,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn compute_bound_tracks_memory_bound_critical_vault() {
        // Vault 0 sets the critical path and is memory-bound; vault 1 is
        // compute-bound but far from critical. Provisioning lands on 8 PUs
        // (vault 1's streaming demand), so vault 1 stays compute-bound.
        let dev = device(4);
        let t = dev.derive_timing(&[stat(80_000, 800), stat(1_000, 1_000)], 4);
        assert_eq!(t.pus_per_vault, 8);
        assert!(!t.compute_bound, "critical vault is memory-bound");
    }

    #[test]
    fn compute_bound_tracks_compute_bound_critical_vault() {
        let dev = device(4);
        let t = dev.derive_timing(&[stat(8_000, 80), stat(1_000, 100_000)], 4);
        assert_eq!(t.pus_per_vault, 8);
        assert!(t.compute_bound, "critical vault is compute-bound");
    }

    #[test]
    fn compute_bound_ties_resolve_to_first_critical_vault() {
        // Regression: both vaults reach the same critical time (1e-5 s),
        // vault 0 memory-bound, vault 1 compute-bound. The old stale-worst
        // comparison let the later, non-argmax vault flip the flag.
        let dev = device(4);
        let t = dev.derive_timing(&[stat(100_000, 100), stat(1_000, 80_000)], 4);
        assert_eq!(t.pus_per_vault, 8);
        assert!(
            !t.compute_bound,
            "first vault to set the path is memory-bound"
        );
    }

    #[test]
    fn payload_shape_getters_reflect_loaded_dataset() {
        let mut dev = device(4);
        assert_eq!(dev.query_len(), None);
        assert_eq!(dev.payload_is_binary(), None);
        dev.load_vectors(&random_store(20, 6, 30));
        assert_eq!(dev.query_len(), Some(6));
        assert_eq!(dev.payload_is_binary(), Some(false));
        let mut codes = BinaryStore::new(64);
        codes.push(&[1, 2]);
        let mut dev = device(4);
        dev.load_binary(&codes);
        assert_eq!(dev.query_len(), Some(2));
        assert_eq!(dev.payload_is_binary(), Some(true));
    }

    #[test]
    fn empty_batch_returns_typed_error() {
        // Regression: `query_batch` used to panic on degenerate requests;
        // the serving runtime needs typed rejections.
        let store = random_store(40, 4, 28);
        let mut dev = device(4);
        dev.load_vectors(&store);
        let empty: [DeviceQuery<'_>; 0] = [];
        assert_eq!(
            dev.query_batch(&empty, 3).unwrap_err(),
            SimError::EmptyBatch
        );
    }

    #[test]
    fn zero_k_returns_typed_error() {
        let store = random_store(40, 4, 29);
        let mut dev = device(4);
        dev.load_vectors(&store);
        let q = [0.0f32; 4];
        assert_eq!(
            dev.query_batch(&[DeviceQuery::Euclidean(&q)], 0)
                .unwrap_err(),
            SimError::ZeroK
        );
        assert_eq!(
            dev.query(&DeviceQuery::Euclidean(&q), 0).unwrap_err(),
            SimError::ZeroK
        );
    }

    #[test]
    fn batch_of_one_matches_single_query_account() {
        let store = random_store(90, 6, 27);
        let mut dev = device(4);
        dev.load_vectors(&store);
        let q: Vec<f32> = (0..6).map(|i| 0.3 * i as f32).collect();
        let batch = dev
            .query_batch(&[DeviceQuery::Euclidean(&q)], 3)
            .expect("runs");
        let serial = dev.query(&DeviceQuery::Euclidean(&q), 3).expect("runs");
        assert_eq!(batch.results.len(), 1);
        assert_eq!(batch.results[0].neighbors, serial.neighbors);
        assert_eq!(batch.timing.pus_per_vault, serial.timing.pus_per_vault);
        assert_eq!(batch.timing.compute_bound, serial.timing.compute_bound);
        assert!((batch.timing.seconds - serial.timing.seconds).abs() < 1e-12);
    }
}
