//! Module-level SSAM device: sharding, replication, query execution.
//!
//! Assembles the full Section III system: the dataset is sharded
//! contiguously across HMC vaults; each vault's SSAM accelerator runs
//! replicated processing units over its shard ("we replicate processing
//! units to fully use the memory bandwidth by measuring the peak bandwidth
//! needs of each processing unit"); per-vault top-k results are reduced on
//! the host ("the host processor broadcasts the search across SSAM
//! processing units and performs the final set of global top-k reductions
//! on the host processor").
//!
//! Execution is *functionally* exact — every vault's kernel is simulated
//! instruction-by-instruction over its real shard, and the merged neighbor
//! set is validated against the `ssam-knn` reference in tests — while
//! *timing* combines the simulated cycle counts with the vault-bandwidth
//! roofline of `ssam-hmc`.

pub mod cluster;
pub mod indexed;
pub mod memregion;

use std::collections::HashMap;
use std::sync::Arc;

use rayon::prelude::*;
use ssam_hmc::HmcConfig;
use ssam_knn::binary::BinaryStore;
use ssam_knn::distance::norm_sq;
use ssam_knn::fixed::Fix32;
use ssam_knn::topk::{Neighbor, TopK};
use ssam_knn::VectorStore;

use crate::energy::{effective_power, Activity};
use crate::isa::{DRAM_BASE, PQUEUE_DEPTH};
use crate::kernels::{linear, Kernel};
use crate::sim::pu::{ProcessingUnit, RunStats, SimError};

/// Device configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SsamConfig {
    /// The memory module geometry.
    pub hmc: HmcConfig,
    /// Processing-unit vector length (2/4/8/16).
    pub vector_length: usize,
    /// Logic-layer clock frequency in Hz.
    pub freq_hz: f64,
    /// Cap on processing units per vault accelerator.
    pub max_pus_per_vault: usize,
    /// Use the hardware priority queue (false = Section V-B software-queue
    /// ablation).
    pub use_hw_queue: bool,
}

impl Default for SsamConfig {
    fn default() -> Self {
        Self {
            hmc: HmcConfig::hmc2(),
            vector_length: 4,
            freq_hz: 1.0e9,
            max_pus_per_vault: 8,
            use_hw_queue: true,
        }
    }
}

/// Which kernel family a query runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceMetric {
    /// Squared Euclidean (canonical).
    Euclidean,
    /// Manhattan (L1).
    Manhattan,
    /// Cosine distance with software division.
    Cosine,
    /// Hamming over binarized codes via `VFXP`.
    Hamming,
}

/// A query in the representation its kernel consumes.
#[derive(Debug, Clone)]
pub enum DeviceQuery<'a> {
    /// Float query for the Euclidean kernel.
    Euclidean(&'a [f32]),
    /// Float query for the Manhattan kernel.
    Manhattan(&'a [f32]),
    /// Float query for the cosine kernel.
    Cosine(&'a [f32]),
    /// Packed binary query for the Hamming kernel.
    Hamming(&'a [u32]),
}

impl DeviceQuery<'_> {
    /// The metric this query selects.
    pub fn metric(&self) -> DeviceMetric {
        match self {
            DeviceQuery::Euclidean(_) => DeviceMetric::Euclidean,
            DeviceQuery::Manhattan(_) => DeviceMetric::Manhattan,
            DeviceQuery::Cosine(_) => DeviceMetric::Cosine,
            DeviceQuery::Hamming(_) => DeviceMetric::Hamming,
        }
    }
}

/// One vault's slice of the dataset.
#[derive(Debug, Clone)]
struct Shard {
    words: Arc<Vec<i32>>,
    first_id: u32,
    vectors: usize,
}

/// What kind of payload is loaded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Payload {
    /// Q16.16 feature vectors of the given dimensionality.
    Fixed {
        /// Original dimensionality.
        dims: usize,
    },
    /// Packed binary codes of the given word count.
    Binary {
        /// Packed words per code.
        words: usize,
    },
}

/// Timing/energy account for one device query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryTiming {
    /// Wall-clock seconds for the query (slowest vault + host reduce +
    /// link transfer).
    pub seconds: f64,
    /// Processing units instantiated per vault for this kernel.
    pub pus_per_vault: usize,
    /// True when compute cycles (not vault bandwidth) set the pace.
    pub compute_bound: bool,
    /// Aggregate simulated cycles across all PUs.
    pub total_cycles: u64,
    /// Aggregate DRAM bytes streamed.
    pub total_bytes: u64,
    /// Device energy for the query in millijoules (all accelerators).
    pub energy_mj: f64,
}

/// Result of one device query.
#[derive(Debug, Clone)]
pub struct DeviceResult {
    /// Global top-k, best first.
    pub neighbors: Vec<Neighbor>,
    /// Timing/energy account.
    pub timing: QueryTiming,
    /// Per-vault simulation statistics (vault 0 first).
    pub vault_stats: Vec<RunStats>,
}

/// The SSAM device.
#[derive(Debug, Clone)]
pub struct SsamDevice {
    config: SsamConfig,
    shards: Vec<Shard>,
    payload: Option<Payload>,
    vec_words: usize,
    vectors: usize,
    kernel_cache: HashMap<(DeviceMetric, usize), Arc<Kernel>>,
}

impl SsamDevice {
    /// Creates an empty device.
    ///
    /// # Panics
    /// Panics if the vector length is not a supported design point.
    pub fn new(config: SsamConfig) -> Self {
        assert!(
            crate::isa::VECTOR_LENGTHS.contains(&config.vector_length),
            "vector length {} not supported",
            config.vector_length
        );
        Self {
            config,
            shards: Vec::new(),
            payload: None,
            vec_words: 0,
            vectors: 0,
            kernel_cache: HashMap::new(),
        }
    }

    /// Device configuration.
    pub fn config(&self) -> &SsamConfig {
        &self.config
    }

    /// Number of vectors loaded.
    pub fn len(&self) -> usize {
        self.vectors
    }

    /// Whether no dataset is loaded.
    pub fn is_empty(&self) -> bool {
        self.vectors == 0
    }

    /// Words per (padded) stored vector.
    pub fn vec_words(&self) -> usize {
        self.vec_words
    }

    /// Loads a float dataset: quantizes to Q16.16 (`nmemcpy` semantics),
    /// pads each vector to a vector-length multiple, and shards evenly
    /// across vaults.
    pub fn load_vectors(&mut self, store: &VectorStore) {
        assert!(!store.is_empty(), "cannot load an empty dataset");
        let vl = self.config.vector_length;
        let dims = store.dims();
        let vw = dims.div_ceil(vl) * vl;
        self.stage(store.len(), vw, Payload::Fixed { dims }, |id, out| {
            let v = store.get(id);
            for &x in v {
                out.push(Fix32::from_f32(x).0);
            }
            out.resize(out.len() + (vw - v.len()), 0);
        });
    }

    /// Loads a binarized dataset for Hamming kernels.
    pub fn load_binary(&mut self, store: &BinaryStore) {
        assert!(!store.is_empty(), "cannot load an empty dataset");
        let vl = self.config.vector_length;
        let words = store.words_per_vec();
        let vw = words.div_ceil(vl) * vl;
        self.stage(store.len(), vw, Payload::Binary { words }, |id, out| {
            for &w in store.get(id) {
                out.push(w as i32);
            }
            out.resize(out.len() + (vw - words), 0);
        });
    }

    fn stage(
        &mut self,
        n: usize,
        vec_words: usize,
        payload: Payload,
        mut emit: impl FnMut(u32, &mut Vec<i32>),
    ) {
        let vaults = self.config.hmc.vaults.min(n);
        let per = n.div_ceil(vaults);
        let mut shards = Vec::with_capacity(vaults);
        let mut next = 0usize;
        while next < n {
            let count = per.min(n - next);
            let mut words = Vec::with_capacity(count * vec_words);
            for id in next..next + count {
                emit(id as u32, &mut words);
            }
            shards.push(Shard {
                words: Arc::new(words),
                first_id: next as u32,
                vectors: count,
            });
            next += count;
        }
        // Shard byte span must stay within the PU's positive address space.
        let max_bytes = shards.iter().map(|s| s.words.len() * 4).max().unwrap_or(0);
        assert!(
            (DRAM_BASE as usize + max_bytes) < i32::MAX as usize,
            "shard too large for the PU address space; use more vaults"
        );
        self.shards = shards;
        self.payload = Some(payload);
        self.vec_words = vec_words;
        self.vectors = n;
        self.kernel_cache.clear();
    }

    /// Builds (or reuses) the kernel for a metric at the loaded layout.
    fn kernel_for(&mut self, metric: DeviceMetric, k: usize) -> Arc<Kernel> {
        let payload = self.payload.expect("dataset loaded");
        let vl = self.config.vector_length;
        let cache_k = if self.config.use_hw_queue { 0 } else { k };
        if let Some(kn) = self.kernel_cache.get(&(metric, cache_k)) {
            return Arc::clone(kn);
        }
        let kernel = match (metric, payload) {
            (DeviceMetric::Euclidean, Payload::Fixed { dims }) => {
                if self.config.use_hw_queue {
                    linear::euclidean(dims, vl)
                } else {
                    linear::euclidean_swqueue(dims, vl, k)
                }
            }
            (DeviceMetric::Manhattan, Payload::Fixed { dims }) => linear::manhattan(dims, vl),
            (DeviceMetric::Cosine, Payload::Fixed { dims }) => linear::cosine(dims, vl),
            (DeviceMetric::Hamming, Payload::Binary { words }) => linear::hamming(words, vl),
            (m, p) => panic!("metric {m:?} incompatible with loaded payload {p:?}"),
        };
        debug_assert_eq!(kernel.layout.vec_words, self.vec_words);
        let kernel = Arc::new(kernel);
        self.kernel_cache
            .insert((metric, cache_k), Arc::clone(&kernel));
        kernel
    }

    /// Quantizes a float query to the scratchpad image (padded).
    fn quantize_query(&self, q: &[f32]) -> Vec<i32> {
        let mut out: Vec<i32> = q.iter().map(|&x| Fix32::from_f32(x).0).collect();
        out.resize(self.vec_words, 0);
        out
    }

    /// Executes one query across all vaults and merges the result
    /// (`nexec` + `nread_result` semantics).
    ///
    /// # Panics
    /// Panics if no dataset is loaded or the query shape mismatches it.
    pub fn query(&mut self, query: &DeviceQuery<'_>, k: usize) -> Result<DeviceResult, SimError> {
        assert!(!self.is_empty(), "no dataset loaded");
        assert!(k > 0, "k must be positive");
        let payload = self.payload.expect("dataset loaded");

        // Stage the query image + any extra register state.
        let (spad_query, extra_norm): (Vec<i32>, Option<i32>) = match (query, payload) {
            (DeviceQuery::Euclidean(q) | DeviceQuery::Manhattan(q), Payload::Fixed { dims }) => {
                assert_eq!(q.len(), dims, "query dimensionality mismatch");
                (self.quantize_query(q), None)
            }
            (DeviceQuery::Cosine(q), Payload::Fixed { dims }) => {
                assert_eq!(q.len(), dims, "query dimensionality mismatch");
                let norm = Fix32::from_f32(norm_sq(q)).0;
                (self.quantize_query(q), Some(norm))
            }
            (DeviceQuery::Hamming(q), Payload::Binary { words }) => {
                assert_eq!(q.len(), words, "query code-length mismatch");
                let mut out: Vec<i32> = q.iter().map(|&w| w as i32).collect();
                out.resize(self.vec_words, 0);
                (out, None)
            }
            _ => panic!("query representation incompatible with loaded payload"),
        };

        let kernel = self.kernel_for(query.metric(), k);
        let vl = self.config.vector_length;
        let use_hw = self.config.use_hw_queue;
        let pq_chain = k.div_ceil(PQUEUE_DEPTH);
        let vec_words = self.vec_words;

        // Simulate every vault (in parallel threads; each vault is an
        // independent accelerator).
        let results: Result<Vec<(Vec<Neighbor>, RunStats)>, SimError> = self
            .shards
            .par_iter()
            .map(|shard| {
                let mut pu = ProcessingUnit::new(vl, Arc::clone(&shard.words));
                if use_hw {
                    pu.chain_pqueue(pq_chain);
                }
                pu.load_program(kernel.program.clone());
                pu.scratchpad_mut()
                    .write_block(kernel.layout.query_addr, &spad_query)
                    .expect("query fits scratchpad");
                if !use_hw {
                    // Initialize the software queue region: k (MAX, -1) pairs.
                    let init: Vec<i32> = (0..k).flat_map(|_| [i32::MAX, -1]).collect();
                    pu.scratchpad_mut()
                        .write_block(kernel.layout.swqueue_addr, &init)
                        .expect("queue fits scratchpad");
                }
                pu.set_sreg(1, DRAM_BASE as i32);
                pu.set_sreg(2, DRAM_BASE as i32 + (shard.words.len() * 4) as i32);
                pu.set_sreg(3, 0); // local ids; remapped below
                if let Some(norm) = extra_norm {
                    pu.set_sreg(10, norm);
                }
                // Generous runaway guard: the rolled chunk loop executes
                // ~9 instructions per vector-length chunk plus per-vector
                // reduction/queue overhead (worst case: the software-queue
                // shifting loop).
                let per_vec = 16 * vec_words as u64 + 64 * k as u64 + 2048;
                let budget = 10_000u64 + shard.vectors as u64 * per_vec;
                let stats = pu.run(budget)?;

                let neighbors: Vec<Neighbor> = if use_hw {
                    pu.pqueue()
                        .entries()
                        .iter()
                        .take(k)
                        .map(|e| Neighbor::new(shard.first_id + e.id as u32, e.value as f32))
                        .collect()
                } else {
                    let words = pu
                        .scratchpad()
                        .read_block(kernel.layout.swqueue_addr, 2 * k)
                        .expect("queue readable");
                    words
                        .chunks_exact(2)
                        .filter(|pair| pair[1] >= 0)
                        .map(|pair| Neighbor::new(shard.first_id + pair[1] as u32, pair[0] as f32))
                        .collect()
                };
                Ok((neighbors, stats))
            })
            .collect();
        let results = results?;

        // Host-side global top-k reduction.
        let mut top = TopK::new(k);
        for (neighbors, _) in &results {
            for n in neighbors {
                top.offer(n.id, n.dist);
            }
        }
        let neighbors = top.into_sorted();

        let vault_stats: Vec<RunStats> = results.iter().map(|(_, s)| *s).collect();
        let timing = self.derive_timing(&vault_stats, k);
        Ok(DeviceResult {
            neighbors,
            timing,
            vault_stats,
        })
    }

    /// Derives query time and energy from per-vault simulation statistics.
    ///
    /// Per vault: the shard can be split across up to `max_pus_per_vault`
    /// PUs; replication is provisioned so PU compute no longer trails the
    /// vault's 10 GB/s ("replicate processing units to fully use the
    /// memory bandwidth"). Vault time is the roofline
    /// `max(bytes / vault_bw, cycles / (n_pu · freq))`; the query ends
    /// when the slowest vault does, plus the external-link transfer of
    /// the k-tuple results and a host merge allowance.
    fn derive_timing(&self, vault_stats: &[RunStats], k: usize) -> QueryTiming {
        let cfg = &self.config;
        let freq = cfg.freq_hz;
        let vault_bw = cfg.hmc.vault_bandwidth;

        // Provision PUs from the densest vault's demand.
        let mut pus = 1usize;
        for s in vault_stats {
            let bytes = s.dram.bytes_read.max(1) as f64;
            let secs = s.cycles.max(1) as f64 / freq;
            let demand = bytes / secs; // one PU's streaming demand
            let need = (vault_bw / demand).ceil() as usize;
            pus = pus.max(need.clamp(1, cfg.max_pus_per_vault));
        }

        let mut worst = 0.0f64;
        let mut compute_bound = false;
        let mut total_cycles = 0u64;
        let mut total_bytes = 0u64;
        for s in vault_stats {
            let mem_t = s.dram.bytes_read as f64 / vault_bw;
            let comp_t = s.cycles as f64 / (pus as f64 * freq);
            if comp_t >= worst && comp_t > mem_t {
                compute_bound = true;
            } else if mem_t >= worst && mem_t >= comp_t {
                compute_bound = false;
            }
            worst = worst.max(mem_t.max(comp_t));
            total_cycles += s.cycles;
            total_bytes += s.dram.bytes_read;
        }

        // Result collection: each vault returns k (id, value) tuples.
        let result_bytes = (vault_stats.len() * k * 8) as u64;
        let link_t =
            ssam_hmc::packet::bulk_wire_bytes(result_bytes) as f64 / cfg.hmc.external_bandwidth;
        // Host merge: ~log-depth reduction over vaults·k tuples at ~1 ns each.
        let merge_t = (vault_stats.len() * k) as f64 * 1e-9;

        let seconds = worst + link_t + merge_t;

        // Energy: per-vault accelerator power at observed activity, over
        // the query duration, for every active PU.
        let mut energy_mj = 0.0;
        for s in vault_stats {
            let act = Activity::from_stats(s);
            let power_mw = effective_power(cfg.vector_length, &act);
            energy_mj += power_mw * seconds * pus as f64;
        }

        QueryTiming {
            seconds,
            pus_per_vault: pus,
            compute_bound,
            total_cycles,
            total_bytes,
            energy_mj,
        }
    }

    /// Throughput estimate for a batch: mean per-query seconds over the
    /// sample, inverted.
    pub fn estimate_throughput(
        &mut self,
        queries: &[DeviceQuery<'_>],
        k: usize,
    ) -> Result<BatchEstimate, SimError> {
        assert!(!queries.is_empty(), "need at least one sample query");
        let mut total_s = 0.0;
        let mut total_e = 0.0;
        let mut pus = 0usize;
        for q in queries {
            let r = self.query(q, k)?;
            total_s += r.timing.seconds;
            total_e += r.timing.energy_mj;
            pus = pus.max(r.timing.pus_per_vault);
        }
        let n = queries.len() as f64;
        Ok(BatchEstimate {
            seconds_per_query: total_s / n,
            queries_per_second: n / total_s,
            energy_mj_per_query: total_e / n,
            pus_per_vault: pus,
        })
    }
}

/// Batch throughput/energy estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchEstimate {
    /// Mean seconds per query.
    pub seconds_per_query: f64,
    /// Queries per second.
    pub queries_per_second: f64,
    /// Mean energy per query (mJ).
    pub energy_mj_per_query: f64,
    /// PUs provisioned per vault.
    pub pus_per_vault: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssam_knn::binary::{knn_hamming, BinaryStore};
    use ssam_knn::linear::knn_exact;
    use ssam_knn::Metric;

    use rand::rngs::StdRng;
    use rand::RngExt;
    use rand::SeedableRng;

    fn random_store(n: usize, dims: usize, seed: u64) -> VectorStore {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut s = VectorStore::with_capacity(dims, n);
        for _ in 0..n {
            let v: Vec<f32> = (0..dims).map(|_| rng.random_range(-1.0..1.0)).collect();
            s.push(&v);
        }
        s
    }

    fn device(vl: usize) -> SsamDevice {
        SsamDevice::new(SsamConfig {
            vector_length: vl,
            ..SsamConfig::default()
        })
    }

    #[test]
    fn euclidean_device_matches_reference_exactly() {
        let store = random_store(300, 10, 1);
        let mut dev = device(4);
        dev.load_vectors(&store);
        let q: Vec<f32> = store.get(7).to_vec();
        let result = dev.query(&DeviceQuery::Euclidean(&q), 5).expect("runs");
        let expect: Vec<u32> = knn_exact(&store, &q, 5, Metric::Euclidean)
            .iter()
            .map(|n| n.id)
            .collect();
        let got: Vec<u32> = result.neighbors.iter().map(|n| n.id).collect();
        assert_eq!(got, expect);
        assert_eq!(result.neighbors[0].id, 7);
        assert_eq!(result.neighbors[0].dist, 0.0);
    }

    #[test]
    fn all_vector_lengths_agree() {
        let store = random_store(120, 7, 2);
        let q: Vec<f32> = (0..7).map(|i| 0.05 * i as f32).collect();
        let mut ids_by_vl = Vec::new();
        for vl in [2, 4, 8, 16] {
            let mut dev = device(vl);
            dev.load_vectors(&store);
            let r = dev.query(&DeviceQuery::Euclidean(&q), 8).expect("runs");
            ids_by_vl.push(r.neighbors.iter().map(|n| n.id).collect::<Vec<_>>());
        }
        for w in ids_by_vl.windows(2) {
            assert_eq!(w[0], w[1]);
        }
    }

    #[test]
    fn manhattan_device_matches_reference() {
        let store = random_store(200, 6, 3);
        let mut dev = device(4);
        dev.load_vectors(&store);
        let q: Vec<f32> = (0..6).map(|i| -0.1 * i as f32).collect();
        let r = dev.query(&DeviceQuery::Manhattan(&q), 6).expect("runs");
        let expect: Vec<u32> = knn_exact(&store, &q, 6, Metric::Manhattan)
            .iter()
            .map(|n| n.id)
            .collect();
        let got: Vec<u32> = r.neighbors.iter().map(|n| n.id).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn cosine_device_ranks_by_cosine_distance() {
        let store = random_store(150, 8, 4);
        let mut dev = device(4);
        dev.load_vectors(&store);
        let q: Vec<f32> = (0..8).map(|i| (i as f32 * 0.7).sin()).collect();
        let r = dev.query(&DeviceQuery::Cosine(&q), 5).expect("runs");
        let expect: Vec<u32> = knn_exact(&store, &q, 5, Metric::Cosine)
            .iter()
            .map(|n| n.id)
            .collect();
        let got: Vec<u32> = r.neighbors.iter().map(|n| n.id).collect();
        // cos² ranking may permute near-ties; demand ≥4/5 overlap and an
        // exact best match.
        let overlap = got.iter().filter(|id| expect.contains(id)).count();
        assert!(overlap >= 4, "got {got:?} expect {expect:?}");
        assert_eq!(got[0], expect[0]);
    }

    #[test]
    fn hamming_device_matches_reference() {
        let mut codes = BinaryStore::new(64);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..200 {
            codes.push(&[rng.random::<u32>(), rng.random::<u32>()]);
        }
        let mut dev = device(4);
        dev.load_binary(&codes);
        let q = [0xDEAD_BEEFu32, 0x1234_5678];
        let r = dev.query(&DeviceQuery::Hamming(&q), 7).expect("runs");
        let expect: Vec<u32> = knn_hamming(&codes, &q, 7).iter().map(|n| n.id).collect();
        let got: Vec<u32> = r.neighbors.iter().map(|n| n.id).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn software_queue_matches_hardware_queue() {
        let store = random_store(250, 5, 6);
        let q: Vec<f32> = (0..5).map(|i| 0.2 * i as f32).collect();
        let mut hw = device(4);
        hw.load_vectors(&store);
        let mut sw = SsamDevice::new(SsamConfig {
            use_hw_queue: false,
            ..SsamConfig::default()
        });
        sw.load_vectors(&store);
        let rh = hw.query(&DeviceQuery::Euclidean(&q), 8).expect("hw runs");
        let rs = sw.query(&DeviceQuery::Euclidean(&q), 8).expect("sw runs");
        let ih: Vec<u32> = rh.neighbors.iter().map(|n| n.id).collect();
        let is: Vec<u32> = rs.neighbors.iter().map(|n| n.id).collect();
        assert_eq!(ih, is);
        // The ablation claim: software queue costs cycles.
        assert!(rs.timing.total_cycles > rh.timing.total_cycles);
    }

    #[test]
    fn large_k_chains_priority_queues() {
        let store = random_store(300, 4, 7);
        let mut dev = device(2);
        dev.load_vectors(&store);
        let q = [0.0f32; 4];
        let r = dev.query(&DeviceQuery::Euclidean(&q), 40).expect("runs");
        assert_eq!(r.neighbors.len(), 40);
        let expect: Vec<u32> = knn_exact(&store, &q, 40, Metric::Euclidean)
            .iter()
            .map(|n| n.id)
            .collect();
        let got: Vec<u32> = r.neighbors.iter().map(|n| n.id).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn sharding_spreads_across_vaults() {
        let store = random_store(320, 4, 8);
        let mut dev = device(4);
        dev.load_vectors(&store);
        assert_eq!(dev.shards.len(), 32);
        let covered: usize = dev.shards.iter().map(|s| s.vectors).sum();
        assert_eq!(covered, 320);
    }

    #[test]
    fn tiny_dataset_uses_fewer_vaults() {
        let store = random_store(5, 4, 9);
        let mut dev = device(4);
        dev.load_vectors(&store);
        assert!(dev.shards.len() <= 5);
        let q = [0.0f32; 4];
        let r = dev.query(&DeviceQuery::Euclidean(&q), 3).expect("runs");
        assert_eq!(r.neighbors.len(), 3);
    }

    #[test]
    fn timing_is_positive_and_consistent() {
        let store = random_store(200, 16, 10);
        let mut dev = device(8);
        dev.load_vectors(&store);
        let q = [0.1f32; 16];
        let r = dev.query(&DeviceQuery::Euclidean(&q), 5).expect("runs");
        assert!(r.timing.seconds > 0.0);
        assert!(r.timing.energy_mj > 0.0);
        assert!(r.timing.pus_per_vault >= 1);
        assert!(r.timing.total_bytes >= (200 * 16 * 4) as u64);
    }

    #[test]
    fn estimate_throughput_averages_queries() {
        let store = random_store(100, 8, 11);
        let mut dev = device(4);
        dev.load_vectors(&store);
        let q1 = [0.0f32; 8];
        let q2 = [0.5f32; 8];
        let est = dev
            .estimate_throughput(
                &[DeviceQuery::Euclidean(&q1), DeviceQuery::Euclidean(&q2)],
                4,
            )
            .expect("runs");
        assert!(est.queries_per_second > 0.0);
        assert!((est.seconds_per_query * est.queries_per_second - 1.0).abs() < 0.5);
    }

    #[test]
    #[should_panic(expected = "query dimensionality mismatch")]
    fn dimension_mismatch_panics() {
        let store = random_store(10, 4, 12);
        let mut dev = device(4);
        dev.load_vectors(&store);
        let q = [0.0f32; 5];
        let _ = dev.query(&DeviceQuery::Euclidean(&q), 1);
    }
}
