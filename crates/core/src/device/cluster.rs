//! Multi-module SSAM scaling (paper Section III-A / Fig. 3).
//!
//! "Since HMC modules can be composed together, these additional links
//! and SSAM modules allows us to scale up the capacity of the system. …
//! These external data links allow one or more HMC modules to be composed
//! to effectively form a larger network of SSAMs if data exceeds the
//! capacity of a single SSAM module. … If a kNN query must touch multiple
//! vaults, the host processor broadcasts the search across SSAM
//! processing units and performs the final set of global top-k reductions
//! on the host processor."
//!
//! The cluster splits the dataset across modules by capacity, broadcasts
//! each query over the link fabric (a daisy chain, as in Fig. 3), runs
//! every module concurrently, and reduces the per-module top-k on the
//! host. Query latency is therefore
//! `broadcast + max(module time) + collection`, where the link terms grow
//! with chain depth and the result volume is `modules × k` tuples — "a
//! fraction of the original dataset size".

use rayon::prelude::*;
use ssam_knn::topk::{Neighbor, TopK};
use ssam_knn::VectorStore;

use crate::sim::pu::SimError;

use super::{DeviceQuery, QueryTiming, SsamConfig, SsamDevice};

/// A daisy chain of SSAM modules behind one host.
#[derive(Debug, Clone)]
pub struct SsamCluster {
    modules: Vec<SsamDevice>,
    /// First global id held by each module.
    first_ids: Vec<u32>,
    vectors: usize,
    config: SsamConfig,
}

/// Timing for one cluster query.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterTiming {
    /// End-to-end seconds (broadcast + slowest module + collection).
    pub seconds: f64,
    /// Seconds spent broadcasting the query down the chain.
    pub broadcast_seconds: f64,
    /// Slowest module's query time.
    pub module_seconds: f64,
    /// Seconds collecting per-module results back up the chain.
    pub collect_seconds: f64,
    /// Total energy across modules, millijoules.
    pub energy_mj: f64,
}

impl SsamCluster {
    /// Builds a cluster of `modules` identical devices and shards `store`
    /// evenly across them.
    ///
    /// # Panics
    /// Panics if `modules == 0` or the store is empty.
    pub fn build(config: SsamConfig, modules: usize, store: &VectorStore) -> Self {
        assert!(modules > 0, "need at least one module");
        assert!(!store.is_empty(), "cannot load an empty dataset");
        let modules = modules.min(store.len());
        let per = store.len().div_ceil(modules);
        let mut devs = Vec::with_capacity(modules);
        let mut first_ids = Vec::with_capacity(modules);
        let mut next = 0usize;
        while next < store.len() {
            let count = per.min(store.len() - next);
            let ids: Vec<u32> = (next as u32..(next + count) as u32).collect();
            let sub = store.subset(&ids);
            let mut dev = SsamDevice::new(config);
            dev.load_vectors(&sub);
            devs.push(dev);
            first_ids.push(next as u32);
            next += count;
        }
        Self {
            modules: devs,
            first_ids,
            vectors: store.len(),
            config,
        }
    }

    /// Number of modules in the chain.
    pub fn num_modules(&self) -> usize {
        self.modules.len()
    }

    /// Total vectors held.
    pub fn len(&self) -> usize {
        self.vectors
    }

    /// Whether the cluster holds no data.
    pub fn is_empty(&self) -> bool {
        self.vectors == 0
    }

    /// Executes one Euclidean query across the whole cluster — the
    /// single-query special case of [`SsamCluster::query_batch`].
    pub fn query(
        &mut self,
        query: &[f32],
        k: usize,
    ) -> Result<(Vec<Neighbor>, ClusterTiming), SimError> {
        let mut out = self.query_batch(&[query], k)?;
        Ok(out.pop().expect("one result per query"))
    }

    /// Executes a batch of Euclidean queries across the whole cluster:
    /// every module runs the batch through its batched engine
    /// ([`SsamDevice::query_batch`]), then each query's per-module top-k
    /// sets are reduced on the host and charged the chain's broadcast and
    /// collection link terms.
    pub fn query_batch(
        &mut self,
        queries: &[&[f32]],
        k: usize,
    ) -> Result<Vec<(Vec<Neighbor>, ClusterTiming)>, SimError> {
        assert!(k > 0, "k must be positive");
        assert!(!queries.is_empty(), "batch must contain at least one query");
        let first_ids = self.first_ids.clone();
        type ModuleBatch = Vec<(Vec<Neighbor>, QueryTiming)>;
        let module_results: Result<Vec<ModuleBatch>, SimError> = self
            .modules
            .par_iter_mut()
            .map(|dev| {
                let dq: Vec<DeviceQuery<'_>> =
                    queries.iter().map(|q| DeviceQuery::Euclidean(q)).collect();
                let batch = dev.query_batch(&dq, k)?;
                Ok(batch
                    .results
                    .into_iter()
                    .map(|r| (r.neighbors, r.timing))
                    .collect())
            })
            .collect();
        let module_results = module_results?;

        let depth = self.modules.len() as u64;
        let link_bw = self.config.hmc.external_bandwidth;
        let result_bytes = (self.modules.len() * k * 8) as u64;

        let mut out = Vec::with_capacity(queries.len());
        for (qi, query) in queries.iter().enumerate() {
            let mut top = TopK::new(k);
            let mut module_seconds = 0.0f64;
            let mut energy_mj = 0.0;
            for (per_query, &base) in module_results.iter().zip(&first_ids) {
                let (neighbors, timing) = &per_query[qi];
                for n in neighbors {
                    top.offer(base + n.id, n.dist);
                }
                module_seconds = module_seconds.max(timing.seconds);
                energy_mj += timing.energy_mj;
            }

            // Link fabric: the query travels down the chain (depth hops),
            // the per-module k-tuple results travel back up.
            let query_bytes = (query.len() * 4) as u64;
            let broadcast_seconds =
                depth as f64 * ssam_hmc::packet::bulk_wire_bytes(query_bytes) as f64 / link_bw;
            let collect_seconds =
                depth as f64 * ssam_hmc::packet::bulk_wire_bytes(result_bytes) as f64 / link_bw
                    + (self.modules.len() * k) as f64 * 1e-9;

            let timing = ClusterTiming {
                seconds: broadcast_seconds + module_seconds + collect_seconds,
                broadcast_seconds,
                module_seconds,
                collect_seconds,
                energy_mj,
            };
            out.push((top.into_sorted(), timing));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssam_knn::linear::knn_exact;
    use ssam_knn::Metric;

    use rand::rngs::StdRng;
    use rand::RngExt;
    use rand::SeedableRng;

    fn random_store(n: usize, dims: usize, seed: u64) -> VectorStore {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut s = VectorStore::with_capacity(dims, n);
        for _ in 0..n {
            let v: Vec<f32> = (0..dims).map(|_| rng.random_range(-1.0..1.0)).collect();
            s.push(&v);
        }
        s
    }

    #[test]
    fn cluster_matches_exact_search() {
        let store = random_store(600, 8, 1);
        let mut cluster = SsamCluster::build(SsamConfig::default(), 4, &store);
        let q: Vec<f32> = store.get(222).to_vec();
        let (ns, _) = cluster.query(&q, 7).expect("runs");
        let expect: Vec<u32> = knn_exact(&store, &q, 7, Metric::Euclidean)
            .iter()
            .map(|n| n.id)
            .collect();
        let got: Vec<u32> = ns.iter().map(|n| n.id).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn cluster_matches_single_module() {
        let store = random_store(300, 6, 2);
        let q = [0.1f32; 6];
        let mut one = SsamCluster::build(SsamConfig::default(), 1, &store);
        let mut four = SsamCluster::build(SsamConfig::default(), 4, &store);
        let (n1, _) = one.query(&q, 5).expect("runs");
        let (n4, _) = four.query(&q, 5).expect("runs");
        assert_eq!(
            n1.iter().map(|n| n.id).collect::<Vec<_>>(),
            n4.iter().map(|n| n.id).collect::<Vec<_>>()
        );
    }

    #[test]
    fn modules_split_capacity() {
        let store = random_store(500, 4, 3);
        let cluster = SsamCluster::build(SsamConfig::default(), 4, &store);
        assert_eq!(cluster.num_modules(), 4);
        assert_eq!(cluster.len(), 500);
        let held: usize = cluster.modules.iter().map(|m| m.len()).sum();
        assert_eq!(held, 500);
    }

    #[test]
    fn more_modules_cut_per_module_time() {
        let store = random_store(1000, 16, 4);
        let q = [0.0f32; 16];
        let mut one = SsamCluster::build(SsamConfig::default(), 1, &store);
        let mut four = SsamCluster::build(SsamConfig::default(), 4, &store);
        let (_, t1) = one.query(&q, 5).expect("runs");
        let (_, t4) = four.query(&q, 5).expect("runs");
        assert!(
            t4.module_seconds < t1.module_seconds,
            "sharding across modules must shrink per-module scan time"
        );
    }

    #[test]
    fn link_terms_grow_with_chain_depth() {
        let store = random_store(400, 8, 5);
        let q = [0.0f32; 8];
        let mut two = SsamCluster::build(SsamConfig::default(), 2, &store);
        let mut eight = SsamCluster::build(SsamConfig::default(), 8, &store);
        let (_, t2) = two.query(&q, 5).expect("runs");
        let (_, t8) = eight.query(&q, 5).expect("runs");
        assert!(t8.broadcast_seconds > t2.broadcast_seconds);
        assert!(t8.collect_seconds > t2.collect_seconds);
    }

    #[test]
    fn result_traffic_is_tiny_relative_to_data() {
        // The paper's claim that external links never bottleneck: result
        // volume is modules × k tuples vs the full dataset streamed
        // internally.
        let store = random_store(800, 32, 6);
        let q = [0.0f32; 32];
        let mut cluster = SsamCluster::build(SsamConfig::default(), 4, &store);
        let (_, t) = cluster.query(&q, 10).expect("runs");
        assert!(t.broadcast_seconds + t.collect_seconds < 0.15 * t.seconds);
    }

    #[test]
    fn cluster_batch_matches_serial_loop() {
        let store = random_store(400, 6, 8);
        let mut cluster = SsamCluster::build(SsamConfig::default(), 3, &store);
        let qs: Vec<Vec<f32>> = (0..4)
            .map(|i| (0..6).map(|j| ((i + 2 * j) as f32 * 0.4).cos()).collect())
            .collect();
        let refs: Vec<&[f32]> = qs.iter().map(Vec::as_slice).collect();
        let batch = cluster.query_batch(&refs, 5).expect("batch runs");
        assert_eq!(batch.len(), 4);
        for (q, (neighbors, timing)) in refs.iter().zip(&batch) {
            let (sn, st) = cluster.query(q, 5).expect("serial runs");
            assert_eq!(&sn, neighbors);
            assert_eq!(&st, timing);
        }
    }

    #[test]
    fn more_modules_than_vectors_is_clamped() {
        let store = random_store(3, 4, 7);
        let mut cluster = SsamCluster::build(SsamConfig::default(), 8, &store);
        assert!(cluster.num_modules() <= 3);
        let (ns, _) = cluster.query(&[0.0; 4], 2).expect("runs");
        assert_eq!(ns.len(), 2);
    }
}
