//! Multi-module SSAM scaling (paper Section III-A / Fig. 3).
//!
//! "Since HMC modules can be composed together, these additional links
//! and SSAM modules allows us to scale up the capacity of the system. …
//! These external data links allow one or more HMC modules to be composed
//! to effectively form a larger network of SSAMs if data exceeds the
//! capacity of a single SSAM module. … If a kNN query must touch multiple
//! vaults, the host processor broadcasts the search across SSAM
//! processing units and performs the final set of global top-k reductions
//! on the host processor."
//!
//! The cluster splits the dataset across modules by capacity, broadcasts
//! each query over the link fabric (a daisy chain, as in Fig. 3), runs
//! every module concurrently, and reduces the per-module top-k on the
//! host. Query latency is therefore
//! `broadcast + max(module time) + collection`, where the link terms grow
//! with chain depth and the result volume is `modules × k` tuples — "a
//! fraction of the original dataset size".

use rayon::prelude::*;
use ssam_knn::topk::{Neighbor, TopK};
use ssam_knn::VectorStore;

use crate::sim::pu::SimError;
use crate::telemetry::{self, Phases, QueryRecord, RecordKind, Telemetry, VaultAccount};

use super::{DeviceQuery, QueryTiming, SsamConfig, SsamDevice};

/// A daisy chain of SSAM modules behind one host.
#[derive(Debug, Clone)]
pub struct SsamCluster {
    modules: Vec<SsamDevice>,
    /// First global id held by each module.
    first_ids: Vec<u32>,
    vectors: usize,
    config: SsamConfig,
    telemetry: Option<Telemetry>,
}

/// Timing for one cluster query.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterTiming {
    /// End-to-end seconds (broadcast + slowest module + collection).
    pub seconds: f64,
    /// Seconds spent broadcasting the query down the chain.
    pub broadcast_seconds: f64,
    /// Slowest module's query time.
    pub module_seconds: f64,
    /// Seconds collecting per-module results back up the chain.
    pub collect_seconds: f64,
    /// Total energy across modules, millijoules.
    pub energy_mj: f64,
}

impl SsamCluster {
    /// Builds a cluster of `modules` identical devices and shards `store`
    /// evenly across them.
    ///
    /// # Panics
    /// Panics if `modules == 0` or the store is empty.
    pub fn build(config: SsamConfig, modules: usize, store: &VectorStore) -> Self {
        assert!(modules > 0, "need at least one module");
        assert!(!store.is_empty(), "cannot load an empty dataset");
        let modules = modules.min(store.len());
        let per = store.len().div_ceil(modules);
        let mut devs = Vec::with_capacity(modules);
        let mut first_ids = Vec::with_capacity(modules);
        let mut next = 0usize;
        while next < store.len() {
            let count = per.min(store.len() - next);
            let ids: Vec<u32> = (next as u32..(next + count) as u32).collect();
            let sub = store.subset(&ids);
            let mut dev = SsamDevice::new(config);
            dev.load_vectors(&sub);
            devs.push(dev);
            first_ids.push(next as u32);
            next += count;
        }
        Self {
            modules: devs,
            first_ids,
            vectors: store.len(),
            config,
            telemetry: None,
        }
    }

    /// Attaches a telemetry sink; every subsequent query records a
    /// checked [`RecordKind::Cluster`] account (one [`VaultAccount`] per
    /// *module* — the cluster treats each module the way a module treats
    /// a vault). The member modules are not attached; attach them
    /// individually for per-vault depth.
    pub fn attach_telemetry(&mut self, sink: &Telemetry) {
        self.telemetry = Some(sink.clone());
    }

    /// Stops recording telemetry.
    pub fn detach_telemetry(&mut self) {
        self.telemetry = None;
    }

    /// Number of modules in the chain.
    pub fn num_modules(&self) -> usize {
        self.modules.len()
    }

    /// Total vectors held.
    pub fn len(&self) -> usize {
        self.vectors
    }

    /// Whether the cluster holds no data.
    pub fn is_empty(&self) -> bool {
        self.vectors == 0
    }

    /// Expected query length (feature dimensionality) for the loaded
    /// dataset — the cluster-level twin of
    /// [`SsamDevice::query_len`](super::SsamDevice::query_len), used by
    /// the serving runtime's admission control.
    pub fn query_len(&self) -> Option<usize> {
        self.modules.first().and_then(|m| m.query_len())
    }

    /// Executes one Euclidean query across the whole cluster — the
    /// single-query special case of [`SsamCluster::query_batch`].
    ///
    /// # Errors
    /// Returns [`SimError::ZeroK`] when `k == 0`.
    pub fn query(
        &mut self,
        query: &[f32],
        k: usize,
    ) -> Result<(Vec<Neighbor>, ClusterTiming), SimError> {
        let mut out = self.query_batch(&[query], k)?;
        Ok(out.pop().expect("one result per query"))
    }

    /// Executes a batch of Euclidean queries across the whole cluster:
    /// every module runs the batch through its batched engine
    /// ([`SsamDevice::query_batch`]), then each query's per-module top-k
    /// sets are reduced on the host and charged the chain's broadcast and
    /// collection link terms.
    ///
    /// # Errors
    /// Returns [`SimError::EmptyBatch`] for an empty query slice and
    /// [`SimError::ZeroK`] for `k == 0` (typed rejections for online
    /// callers, matching
    /// [`SsamDevice::query_batch`](super::SsamDevice::query_batch)).
    pub fn query_batch(
        &mut self,
        queries: &[&[f32]],
        k: usize,
    ) -> Result<Vec<(Vec<Neighbor>, ClusterTiming)>, SimError> {
        if queries.is_empty() {
            return Err(SimError::EmptyBatch);
        }
        if k == 0 {
            return Err(SimError::ZeroK);
        }
        let first_ids = self.first_ids.clone();
        type ModuleBatch = Vec<(Vec<Neighbor>, QueryTiming)>;
        let module_results: Result<Vec<ModuleBatch>, SimError> = self
            .modules
            .par_iter_mut()
            .map(|dev| {
                let dq: Vec<DeviceQuery<'_>> =
                    queries.iter().map(|q| DeviceQuery::Euclidean(q)).collect();
                let batch = dev.query_batch(&dq, k)?;
                Ok(batch
                    .results
                    .into_iter()
                    .map(|r| (r.neighbors, r.timing))
                    .collect())
            })
            .collect();
        let module_results = module_results?;

        let depth = self.modules.len() as u64;
        let link_bw = self.config.hmc.external_bandwidth;
        let result_bytes = (self.modules.len() * k * 8) as u64;

        let mut out = Vec::with_capacity(queries.len());
        for (qi, query) in queries.iter().enumerate() {
            let mut top = TopK::new(k);
            let mut module_seconds = 0.0f64;
            let mut energy_mj = 0.0;
            for (per_query, &base) in module_results.iter().zip(&first_ids) {
                let (neighbors, timing) = &per_query[qi];
                for n in neighbors {
                    top.offer(base + n.id, n.dist);
                }
                module_seconds = module_seconds.max(timing.seconds);
                energy_mj += timing.energy_mj;
            }

            // Link fabric: the query travels down the chain (depth hops),
            // the per-module k-tuple results travel back up; the host
            // then merges modules × k tuples.
            let query_bytes = (query.len() * 4) as u64;
            let broadcast_seconds =
                depth as f64 * ssam_hmc::packet::bulk_wire_bytes(query_bytes) as f64 / link_bw;
            let collect_wire_seconds =
                depth as f64 * ssam_hmc::packet::bulk_wire_bytes(result_bytes) as f64 / link_bw;
            let merge_seconds = (self.modules.len() * k) as f64 * 1e-9;
            let collect_seconds = collect_wire_seconds + merge_seconds;

            let timing = ClusterTiming {
                seconds: broadcast_seconds + module_seconds + collect_seconds,
                broadcast_seconds,
                module_seconds,
                collect_seconds,
                energy_mj,
            };

            if let Some(sink) = &self.telemetry {
                let link_seconds = broadcast_seconds + collect_wire_seconds;
                sink.record(self.cluster_record(qi, k, &module_results, &timing, link_seconds));
            }
            out.push((top.into_sorted(), timing));
        }
        Ok(out)
    }

    /// Builds the checked telemetry record for query `qi`: one
    /// [`VaultAccount`] per *module*, with each module's end-to-end time
    /// standing in for the roofline term its own classification came
    /// from (so [`telemetry::critical_path`] over the accounts reproduces
    /// both the slowest-module span and its memory-vs-compute verdict).
    fn cluster_record(
        &self,
        qi: usize,
        k: usize,
        module_results: &[Vec<(Vec<Neighbor>, QueryTiming)>],
        timing: &ClusterTiming,
        link_seconds: f64,
    ) -> QueryRecord {
        let mut accounts = Vec::with_capacity(module_results.len());
        let mut total_cycles = 0u64;
        let mut total_bytes = 0u64;
        let mut pus_per_vault = 1usize;
        for (mi, per_query) in module_results.iter().enumerate() {
            let t = &per_query[qi].1;
            accounts.push(VaultAccount {
                vault: mi,
                cycles: t.total_cycles,
                bytes: t.total_bytes,
                instructions: 0,
                pqueue_ops: 0,
                stack_ops: 0,
                scratchpad_accesses: 0,
                mem_seconds: if t.compute_bound { 0.0 } else { t.seconds },
                comp_seconds: if t.compute_bound { t.seconds } else { 0.0 },
                compute_bound: t.compute_bound,
                energy_mj: t.energy_mj,
            });
            total_cycles += t.total_cycles;
            total_bytes += t.total_bytes;
            pus_per_vault = pus_per_vault.max(t.pus_per_vault);
        }
        let (_, _, compute_bound) = telemetry::critical_path(&accounts).unwrap_or((0, 0.0, false));
        QueryRecord {
            seq: 0,
            kind: RecordKind::Cluster,
            label: format!("cluster[{}]", self.modules.len()),
            batch: 1,
            k,
            pus_per_vault,
            vaults: accounts,
            phases: Phases {
                stage_seconds: 0.0,
                simulate_seconds: timing.module_seconds,
                link_seconds,
                merge_seconds: (self.modules.len() * k) as f64 * 1e-9,
            },
            seconds: timing.seconds,
            compute_bound,
            total_cycles,
            total_bytes,
            energy_mj: timing.energy_mj,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssam_knn::linear::knn_exact;
    use ssam_knn::Metric;

    use rand::rngs::StdRng;
    use rand::RngExt;
    use rand::SeedableRng;

    fn random_store(n: usize, dims: usize, seed: u64) -> VectorStore {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut s = VectorStore::with_capacity(dims, n);
        for _ in 0..n {
            let v: Vec<f32> = (0..dims).map(|_| rng.random_range(-1.0..1.0)).collect();
            s.push(&v);
        }
        s
    }

    #[test]
    fn cluster_matches_exact_search() {
        let store = random_store(600, 8, 1);
        let mut cluster = SsamCluster::build(SsamConfig::default(), 4, &store);
        let q: Vec<f32> = store.get(222).to_vec();
        let (ns, _) = cluster.query(&q, 7).expect("runs");
        let expect: Vec<u32> = knn_exact(&store, &q, 7, Metric::Euclidean)
            .iter()
            .map(|n| n.id)
            .collect();
        let got: Vec<u32> = ns.iter().map(|n| n.id).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn cluster_matches_single_module() {
        let store = random_store(300, 6, 2);
        let q = [0.1f32; 6];
        let mut one = SsamCluster::build(SsamConfig::default(), 1, &store);
        let mut four = SsamCluster::build(SsamConfig::default(), 4, &store);
        let (n1, _) = one.query(&q, 5).expect("runs");
        let (n4, _) = four.query(&q, 5).expect("runs");
        assert_eq!(
            n1.iter().map(|n| n.id).collect::<Vec<_>>(),
            n4.iter().map(|n| n.id).collect::<Vec<_>>()
        );
    }

    #[test]
    fn modules_split_capacity() {
        let store = random_store(500, 4, 3);
        let cluster = SsamCluster::build(SsamConfig::default(), 4, &store);
        assert_eq!(cluster.num_modules(), 4);
        assert_eq!(cluster.len(), 500);
        let held: usize = cluster.modules.iter().map(|m| m.len()).sum();
        assert_eq!(held, 500);
    }

    #[test]
    fn more_modules_cut_per_module_time() {
        let store = random_store(1000, 16, 4);
        let q = [0.0f32; 16];
        let mut one = SsamCluster::build(SsamConfig::default(), 1, &store);
        let mut four = SsamCluster::build(SsamConfig::default(), 4, &store);
        let (_, t1) = one.query(&q, 5).expect("runs");
        let (_, t4) = four.query(&q, 5).expect("runs");
        assert!(
            t4.module_seconds < t1.module_seconds,
            "sharding across modules must shrink per-module scan time"
        );
    }

    #[test]
    fn link_terms_grow_with_chain_depth() {
        let store = random_store(400, 8, 5);
        let q = [0.0f32; 8];
        let mut two = SsamCluster::build(SsamConfig::default(), 2, &store);
        let mut eight = SsamCluster::build(SsamConfig::default(), 8, &store);
        let (_, t2) = two.query(&q, 5).expect("runs");
        let (_, t8) = eight.query(&q, 5).expect("runs");
        assert!(t8.broadcast_seconds > t2.broadcast_seconds);
        assert!(t8.collect_seconds > t2.collect_seconds);
    }

    #[test]
    fn result_traffic_is_tiny_relative_to_data() {
        // The paper's claim that external links never bottleneck: result
        // volume is modules × k tuples vs the full dataset streamed
        // internally.
        let store = random_store(800, 32, 6);
        let q = [0.0f32; 32];
        let mut cluster = SsamCluster::build(SsamConfig::default(), 4, &store);
        let (_, t) = cluster.query(&q, 10).expect("runs");
        assert!(t.broadcast_seconds + t.collect_seconds < 0.15 * t.seconds);
    }

    #[test]
    fn cluster_batch_matches_serial_loop() {
        let store = random_store(400, 6, 8);
        let mut cluster = SsamCluster::build(SsamConfig::default(), 3, &store);
        let qs: Vec<Vec<f32>> = (0..4)
            .map(|i| (0..6).map(|j| ((i + 2 * j) as f32 * 0.4).cos()).collect())
            .collect();
        let refs: Vec<&[f32]> = qs.iter().map(Vec::as_slice).collect();
        let batch = cluster.query_batch(&refs, 5).expect("batch runs");
        assert_eq!(batch.len(), 4);
        for (q, (neighbors, timing)) in refs.iter().zip(&batch) {
            let (sn, st) = cluster.query(q, 5).expect("serial runs");
            assert_eq!(&sn, neighbors);
            assert_eq!(&st, timing);
        }
    }

    /// Vectors on a line: vector `i` is `[0.1·i, 0, …]`, so nearest
    /// neighbors of a point are the ids around it and module boundaries
    /// fall at known ids.
    fn line_store(n: usize, dims: usize) -> VectorStore {
        let mut s = VectorStore::with_capacity(dims, n);
        for i in 0..n {
            let mut v = vec![0.0f32; dims];
            v[0] = i as f32 * 0.1;
            s.push(&v);
        }
        s
    }

    #[test]
    fn topk_straddling_a_module_boundary_remaps_global_ids() {
        let store = line_store(100, 4);
        let mut cluster = SsamCluster::build(SsamConfig::default(), 2, &store);
        // The module boundary is at id 50; a query at 4.96 pulls its
        // top-6 from both sides, so every id from module 1 must come back
        // offset by its base (a module-local id would collide with
        // module 0's range).
        let q = [4.96f32, 0.0, 0.0, 0.0];
        let (ns, _) = cluster.query(&q, 6).expect("runs");
        let got: Vec<u32> = ns.iter().map(|n| n.id).collect();
        let expect: Vec<u32> = knn_exact(&store, &q, 6, Metric::Euclidean)
            .iter()
            .map(|n| n.id)
            .collect();
        assert_eq!(got, expect);
        assert!(
            got.iter().any(|&id| id < 50) && got.iter().any(|&id| id >= 50),
            "top-k must straddle the boundary: {got:?}"
        );
        let unique: std::collections::HashSet<u32> = got.iter().copied().collect();
        assert_eq!(unique.len(), got.len(), "global ids must not collide");
    }

    #[test]
    fn batched_boundary_queries_remap_global_ids() {
        let store = line_store(100, 4);
        let mut cluster = SsamCluster::build(SsamConfig::default(), 4, &store);
        // Boundaries at ids 25, 50, 75 — one query lands on each.
        let centers = [(2.46f32, 25u32), (4.96, 50), (7.46, 75)];
        let qs: Vec<Vec<f32>> = centers
            .iter()
            .map(|&(x, _)| vec![x, 0.0, 0.0, 0.0])
            .collect();
        let refs: Vec<&[f32]> = qs.iter().map(Vec::as_slice).collect();
        let batch = cluster.query_batch(&refs, 4).expect("runs");
        assert_eq!(batch.len(), 3);
        for ((q, &(_, boundary)), (ns, _)) in refs.iter().zip(&centers).zip(&batch) {
            let got: Vec<u32> = ns.iter().map(|n| n.id).collect();
            let expect: Vec<u32> = knn_exact(&store, q, 4, Metric::Euclidean)
                .iter()
                .map(|n| n.id)
                .collect();
            assert_eq!(got, expect, "boundary {boundary}");
            assert!(
                got.iter().any(|&id| id < boundary) && got.iter().any(|&id| id >= boundary),
                "top-k must straddle boundary {boundary}: {got:?}"
            );
            let unique: std::collections::HashSet<u32> = got.iter().copied().collect();
            assert_eq!(unique.len(), got.len(), "global ids must not collide");
        }
    }

    #[test]
    fn telemetry_records_checked_cluster_accounts() {
        let store = random_store(400, 6, 9);
        let mut cluster = SsamCluster::build(SsamConfig::default(), 3, &store);
        let sink = Telemetry::default();
        cluster.attach_telemetry(&sink);
        let qs: Vec<Vec<f32>> = (0..2)
            .map(|i| (0..6).map(|j| ((i + 3 * j) as f32 * 0.3).sin()).collect())
            .collect();
        let refs: Vec<&[f32]> = qs.iter().map(Vec::as_slice).collect();
        let batch = cluster.query_batch(&refs, 5).expect("runs");
        assert_eq!(sink.len(), 2);
        assert!(
            sink.violations().is_empty(),
            "cluster accounts must self-check clean: {:?}",
            sink.violations()
        );
        for (r, (_, t)) in sink.records().iter().zip(&batch) {
            assert_eq!(r.kind, RecordKind::Cluster);
            assert_eq!(r.vaults.len(), 3, "one account per module");
            assert_eq!(r.seconds, t.seconds);
            assert_eq!(r.energy_mj, t.energy_mj);
            assert_eq!(r.phases.simulate_seconds, t.module_seconds);
            telemetry::verify_record(r).expect("record passes verification");
        }
    }

    #[test]
    fn degenerate_batches_return_typed_errors() {
        // Regression: the cluster entry point used to panic on an empty
        // batch or k == 0; both are now typed rejections.
        let store = random_store(60, 4, 10);
        let mut cluster = SsamCluster::build(SsamConfig::default(), 2, &store);
        let empty: [&[f32]; 0] = [];
        assert_eq!(
            cluster.query_batch(&empty, 3).unwrap_err(),
            SimError::EmptyBatch
        );
        let q = [0.0f32; 4];
        assert_eq!(cluster.query_batch(&[&q], 0).unwrap_err(), SimError::ZeroK);
        assert_eq!(cluster.query(&q, 0).unwrap_err(), SimError::ZeroK);
        assert_eq!(cluster.query_len(), Some(4));
    }

    #[test]
    fn more_modules_than_vectors_is_clamped() {
        let store = random_store(3, 4, 7);
        let mut cluster = SsamCluster::build(SsamConfig::default(), 8, &store);
        assert!(cluster.num_modules() <= 3);
        let (ns, _) = cluster.query(&[0.0; 4], 2).expect("runs");
        assert_eq!(ns.len(), 2);
    }
}
