//! Multi-module SSAM scaling (paper Section III-A / Fig. 3).
//!
//! "Since HMC modules can be composed together, these additional links
//! and SSAM modules allows us to scale up the capacity of the system. …
//! These external data links allow one or more HMC modules to be composed
//! to effectively form a larger network of SSAMs if data exceeds the
//! capacity of a single SSAM module. … If a kNN query must touch multiple
//! vaults, the host processor broadcasts the search across SSAM
//! processing units and performs the final set of global top-k reductions
//! on the host processor."
//!
//! The cluster splits the dataset across modules by capacity, broadcasts
//! each query over the link fabric (a daisy chain, as in Fig. 3), runs
//! every module concurrently, and reduces the per-module top-k on the
//! host. Query latency is therefore
//! `broadcast + max(module time) + collection`, where the link terms grow
//! with chain depth and the result volume is `modules × k` tuples — "a
//! fraction of the original dataset size".

use std::sync::Arc;

use rayon::prelude::*;
use ssam_faults::{FaultPlan, FaultRecord};
use ssam_knn::topk::{Neighbor, TopK};
use ssam_knn::VectorStore;

use crate::sim::pu::SimError;
use crate::telemetry::{self, Phases, QueryRecord, RecordKind, Telemetry, VaultAccount};

use super::{DeviceQuery, QueryTiming, SsamConfig, SsamDevice};

/// Per-module health bookkeeping for fault-tolerant dispatch.
#[derive(Debug, Clone, Default)]
struct ModuleHealth {
    /// Batches in a row that needed a retry (or died outright).
    consecutive_faults: u32,
    /// A degraded module is skipped except for periodic probes.
    degraded: bool,
    /// Batches skipped since the last live probe of a degraded module.
    batches_since_probe: u64,
}

/// What happened to one module during a fault-tolerant batch.
enum ModuleOutcome {
    /// The module produced results, possibly after `retries` failovers to
    /// a standby replica.
    Ran {
        per_query: Vec<(Vec<Neighbor>, QueryTiming, FaultRecord)>,
        retries: u64,
    },
    /// Degraded module skipped without dispatch (awaiting its next probe).
    Skipped,
    /// Every dispatch attempt hit a module outage; its shard is
    /// uncovered for this batch.
    Dead { attempts: u64 },
}

/// A daisy chain of SSAM modules behind one host.
#[derive(Debug, Clone)]
pub struct SsamCluster {
    modules: Vec<SsamDevice>,
    /// First global id held by each module.
    first_ids: Vec<u32>,
    vectors: usize,
    config: SsamConfig,
    telemetry: Option<Telemetry>,
    faults: Option<Arc<FaultPlan>>,
    /// Monotonic batch counter keying module-outage fault decisions.
    batch_seq: u64,
    health: Vec<ModuleHealth>,
}

/// Timing for one cluster query.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterTiming {
    /// End-to-end seconds (broadcast + slowest module + collection,
    /// plus failover backoff when faults forced retries).
    pub seconds: f64,
    /// Seconds spent broadcasting the query down the chain.
    pub broadcast_seconds: f64,
    /// Slowest module's query time.
    pub module_seconds: f64,
    /// Seconds collecting per-module results back up the chain.
    pub collect_seconds: f64,
    /// Seconds of failover backoff (module-outage retries) every query in
    /// the batch waited on. Zero on the fault-free path.
    pub recovery_seconds: f64,
    /// Total energy across modules, millijoules.
    pub energy_mj: f64,
    /// Cluster-level fault accounting for this query (module outages plus
    /// the member modules' own vault-level records). Trivial without a
    /// fault plan.
    pub faults: FaultRecord,
}

impl ClusterTiming {
    /// Fraction of the dataset actually scanned for this query.
    pub fn coverage(&self) -> f64 {
        self.faults.coverage()
    }
}

impl SsamCluster {
    /// Builds a cluster of `modules` identical devices and shards `store`
    /// evenly across them.
    ///
    /// # Panics
    /// Panics if `modules == 0` or the store is empty.
    pub fn build(config: SsamConfig, modules: usize, store: &VectorStore) -> Self {
        assert!(modules > 0, "need at least one module");
        assert!(!store.is_empty(), "cannot load an empty dataset");
        let modules = modules.min(store.len());
        let per = store.len().div_ceil(modules);
        let mut devs = Vec::with_capacity(modules);
        let mut first_ids = Vec::with_capacity(modules);
        let mut next = 0usize;
        while next < store.len() {
            let count = per.min(store.len() - next);
            let ids: Vec<u32> = (next as u32..(next + count) as u32).collect();
            let sub = store.subset(&ids);
            let mut dev = SsamDevice::new(config);
            dev.load_vectors(&sub);
            devs.push(dev);
            first_ids.push(next as u32);
            next += count;
        }
        let n = devs.len();
        Self {
            modules: devs,
            first_ids,
            vectors: store.len(),
            config,
            telemetry: None,
            faults: None,
            batch_seq: 0,
            health: vec![ModuleHealth::default(); n],
        }
    }

    /// Attaches (or clears) a fault-injection plan across the whole
    /// chain. Each member module samples a decorrelated fault stream
    /// (its index is the key scope); module-outage decisions are made
    /// here, per batch, with failover to a standby replica under the
    /// plan's [`RecoveryPolicy`](ssam_faults::RecoveryPolicy). Health
    /// state resets.
    pub fn set_fault_plan(&mut self, plan: Option<Arc<FaultPlan>>) {
        for (mi, dev) in self.modules.iter_mut().enumerate() {
            dev.set_fault_plan(plan.clone());
            dev.set_fault_scope(mi as u64);
            dev.set_fault_attempt(0);
        }
        self.faults = plan;
        self.health = vec![ModuleHealth::default(); self.modules.len()];
    }

    /// The attached fault plan, if any.
    pub fn fault_plan(&self) -> Option<&Arc<FaultPlan>> {
        self.faults.as_ref()
    }

    /// Per-module degraded flags (true = health-aware dispatch is
    /// routing around the module, pending a recovery probe).
    pub fn degraded_modules(&self) -> Vec<bool> {
        self.health.iter().map(|h| h.degraded).collect()
    }

    /// Attaches a telemetry sink; every subsequent query records a
    /// checked [`RecordKind::Cluster`] account (one [`VaultAccount`] per
    /// *module* — the cluster treats each module the way a module treats
    /// a vault). The member modules are not attached; attach them
    /// individually for per-vault depth.
    pub fn attach_telemetry(&mut self, sink: &Telemetry) {
        self.telemetry = Some(sink.clone());
    }

    /// Stops recording telemetry.
    pub fn detach_telemetry(&mut self) {
        self.telemetry = None;
    }

    /// Number of modules in the chain.
    pub fn num_modules(&self) -> usize {
        self.modules.len()
    }

    /// Total vectors held.
    pub fn len(&self) -> usize {
        self.vectors
    }

    /// Whether the cluster holds no data.
    pub fn is_empty(&self) -> bool {
        self.vectors == 0
    }

    /// Expected query length (feature dimensionality) for the loaded
    /// dataset — the cluster-level twin of
    /// [`SsamDevice::query_len`](super::SsamDevice::query_len), used by
    /// the serving runtime's admission control.
    pub fn query_len(&self) -> Option<usize> {
        self.modules.first().and_then(|m| m.query_len())
    }

    /// Executes one Euclidean query across the whole cluster — the
    /// single-query special case of [`SsamCluster::query_batch`].
    ///
    /// # Errors
    /// Returns [`SimError::ZeroK`] when `k == 0`.
    pub fn query(
        &mut self,
        query: &[f32],
        k: usize,
    ) -> Result<(Vec<Neighbor>, ClusterTiming), SimError> {
        let mut out = self.query_batch(&[query], k)?;
        Ok(out.pop().expect("one result per query"))
    }

    /// Executes a batch of Euclidean queries across the whole cluster:
    /// every module runs the batch through its batched engine
    /// ([`SsamDevice::query_batch`]), then each query's per-module top-k
    /// sets are reduced on the host and charged the chain's broadcast and
    /// collection link terms.
    ///
    /// # Errors
    /// Returns [`SimError::EmptyBatch`] for an empty query slice and
    /// [`SimError::ZeroK`] for `k == 0` (typed rejections for online
    /// callers, matching
    /// [`SsamDevice::query_batch`](super::SsamDevice::query_batch)).
    pub fn query_batch(
        &mut self,
        queries: &[&[f32]],
        k: usize,
    ) -> Result<Vec<(Vec<Neighbor>, ClusterTiming)>, SimError> {
        if queries.is_empty() {
            return Err(SimError::EmptyBatch);
        }
        if k == 0 {
            return Err(SimError::ZeroK);
        }
        let first_ids = self.first_ids.clone();
        let plan = self.faults.clone();
        let batch_seq = self.batch_seq;
        self.batch_seq += 1;
        // Health-aware dispatch: a degraded module is routed around,
        // except every `probe_interval` batches when it gets a live probe
        // to detect recovery.
        let dispatch: Vec<bool> = self
            .health
            .iter()
            .map(|h| {
                !h.degraded
                    || plan
                        .as_ref()
                        .is_some_and(|p| h.batches_since_probe + 1 >= p.policy.probe_interval)
            })
            .collect();
        let outcomes: Result<Vec<ModuleOutcome>, SimError> = self
            .modules
            .par_iter_mut()
            .enumerate()
            .map(|(mi, dev)| {
                let dq: Vec<DeviceQuery<'_>> =
                    queries.iter().map(|q| DeviceQuery::Euclidean(q)).collect();
                let per_query = |batch: super::BatchResult| {
                    batch
                        .results
                        .into_iter()
                        .map(|r| (r.neighbors, r.timing, r.faults))
                        .collect()
                };
                let Some(plan) = &plan else {
                    let batch = dev.query_batch(&dq, k)?;
                    return Ok(ModuleOutcome::Ran {
                        per_query: per_query(batch),
                        retries: 0,
                    });
                };
                if !dispatch[mi] {
                    return Ok(ModuleOutcome::Skipped);
                }
                let mut attempt = 0u64;
                loop {
                    if plan.module_outage(0, batch_seq, mi as u64, attempt) {
                        attempt += 1;
                        if attempt > u64::from(plan.policy.max_module_retries) {
                            return Ok(ModuleOutcome::Dead { attempts: attempt });
                        }
                        continue;
                    }
                    let batch = if attempt == 0 {
                        dev.query_batch(&dq, k)?
                    } else {
                        // Failover: re-dispatch the batch on a standby
                        // replica (a clone of the module), then promote
                        // the replica to primary. The bumped attempt
                        // gives the replica a fresh — but still
                        // deterministic — fault sample.
                        let mut replica = dev.clone();
                        replica.set_fault_attempt(attempt);
                        let b = replica.query_batch(&dq, k)?;
                        *dev = replica;
                        dev.set_fault_attempt(0);
                        b
                    };
                    return Ok(ModuleOutcome::Ran {
                        per_query: per_query(batch),
                        retries: attempt,
                    });
                }
            })
            .collect();
        let outcomes = outcomes?;

        // Health bookkeeping from this batch's outcomes.
        if plan.is_some() {
            let degrade_after = plan.as_ref().map_or(u32::MAX, |p| p.policy.degrade_after);
            for (out, h) in outcomes.iter().zip(&mut self.health) {
                match out {
                    ModuleOutcome::Skipped => h.batches_since_probe += 1,
                    ModuleOutcome::Dead { .. } => {
                        h.consecutive_faults += 1;
                        h.batches_since_probe = 0;
                        if h.consecutive_faults >= degrade_after {
                            h.degraded = true;
                        }
                    }
                    ModuleOutcome::Ran { retries, .. } => {
                        h.batches_since_probe = 0;
                        if *retries > 0 {
                            h.consecutive_faults += 1;
                            if h.consecutive_faults >= degrade_after {
                                h.degraded = true;
                            }
                        } else {
                            h.consecutive_faults = 0;
                            h.degraded = false;
                        }
                    }
                }
            }
        }

        // Failover backoff (and the module-outage event tally) every
        // query in this batch waited on.
        let mut backoff_total = 0.0f64;
        let mut module_outage_events = 0u64;
        let mut failed_over = 0u64;
        if let Some(plan) = &plan {
            for out in &outcomes {
                let (retries, died) = match out {
                    ModuleOutcome::Ran { retries, .. } => (*retries, false),
                    ModuleOutcome::Dead { attempts } => (attempts - 1, true),
                    ModuleOutcome::Skipped => continue,
                };
                module_outage_events += retries + u64::from(died);
                if !died {
                    failed_over += retries;
                }
                for a in 1..=retries {
                    backoff_total += plan.policy.backoff(a as u32);
                }
            }
        }

        let depth = self.modules.len() as u64;
        let link_bw = self.config.hmc.external_bandwidth;
        let result_bytes = (self.modules.len() * k * 8) as u64;

        let mut out = Vec::with_capacity(queries.len());
        for (qi, query) in queries.iter().enumerate() {
            let mut top = TopK::new(k);
            let mut module_seconds = 0.0f64;
            let mut energy_mj = 0.0;
            let mut rec = FaultRecord::default();
            if plan.is_some() {
                rec.module_outages = module_outage_events;
                rec.failed_over = failed_over;
                rec.recovery_seconds = backoff_total;
            }
            for (mi, outcome) in outcomes.iter().enumerate() {
                let module_len = self.modules[mi].len() as u64;
                match outcome {
                    ModuleOutcome::Ran { per_query, .. } => {
                        let (neighbors, timing, mrec) = &per_query[qi];
                        for n in neighbors {
                            top.offer(first_ids[mi] + n.id, n.dist);
                        }
                        module_seconds = module_seconds.max(timing.seconds);
                        energy_mj += timing.energy_mj;
                        if plan.is_some() {
                            if mrec.is_trivial() {
                                rec.total_vectors += module_len;
                                rec.covered_vectors += module_len;
                            } else {
                                // Module-internal recovery time already
                                // sits inside `timing.seconds` (the
                                // simulate span); the cluster-level fault
                                // span is the failover backoff alone.
                                let cluster_recovery = rec.recovery_seconds;
                                rec.accumulate(mrec);
                                rec.recovery_seconds = cluster_recovery;
                            }
                        }
                    }
                    ModuleOutcome::Skipped | ModuleOutcome::Dead { .. } => {
                        rec.lost_module += 1;
                        rec.lost_units.push(mi as u32);
                        rec.total_vectors += module_len;
                    }
                }
            }

            // Link fabric: the query travels down the chain (depth hops),
            // the per-module k-tuple results travel back up; the host
            // then merges modules × k tuples.
            let query_bytes = (query.len() * 4) as u64;
            let broadcast_seconds =
                depth as f64 * ssam_hmc::packet::bulk_wire_bytes(query_bytes) as f64 / link_bw;
            let collect_wire_seconds =
                depth as f64 * ssam_hmc::packet::bulk_wire_bytes(result_bytes) as f64 / link_bw;
            let merge_seconds = (self.modules.len() * k) as f64 * 1e-9;
            let collect_seconds = collect_wire_seconds + merge_seconds;

            let timing = ClusterTiming {
                seconds: broadcast_seconds + module_seconds + collect_seconds + backoff_total,
                broadcast_seconds,
                module_seconds,
                collect_seconds,
                recovery_seconds: backoff_total,
                energy_mj,
                faults: rec,
            };

            if let Some(sink) = &self.telemetry {
                let link_seconds = broadcast_seconds + collect_wire_seconds;
                sink.record(self.cluster_record(qi, k, &outcomes, &timing, link_seconds));
            }
            out.push((top.into_sorted(), timing));
        }
        Ok(out)
    }

    /// Builds the checked telemetry record for query `qi`: one
    /// [`VaultAccount`] per *module*, with each module's end-to-end time
    /// standing in for the roofline term its own classification came
    /// from (so [`telemetry::critical_path`] over the accounts reproduces
    /// both the slowest-module span and its memory-vs-compute verdict).
    fn cluster_record(
        &self,
        qi: usize,
        k: usize,
        outcomes: &[ModuleOutcome],
        timing: &ClusterTiming,
        link_seconds: f64,
    ) -> QueryRecord {
        let mut accounts = Vec::with_capacity(outcomes.len());
        let mut total_cycles = 0u64;
        let mut total_bytes = 0u64;
        let mut pus_per_vault = 1usize;
        for (mi, outcome) in outcomes.iter().enumerate() {
            // A module that never ran (skipped or dead) contributes an
            // empty account: zero work, zero span.
            let mut account = VaultAccount {
                vault: mi,
                cycles: 0,
                bytes: 0,
                instructions: 0,
                pqueue_ops: 0,
                stack_ops: 0,
                scratchpad_accesses: 0,
                mem_seconds: 0.0,
                comp_seconds: 0.0,
                compute_bound: false,
                energy_mj: 0.0,
            };
            if let ModuleOutcome::Ran { per_query, .. } = outcome {
                let t = &per_query[qi].1;
                account.cycles = t.total_cycles;
                account.bytes = t.total_bytes;
                account.mem_seconds = if t.compute_bound { 0.0 } else { t.seconds };
                account.comp_seconds = if t.compute_bound { t.seconds } else { 0.0 };
                account.compute_bound = t.compute_bound;
                account.energy_mj = t.energy_mj;
                total_cycles += t.total_cycles;
                total_bytes += t.total_bytes;
                pus_per_vault = pus_per_vault.max(t.pus_per_vault);
            }
            accounts.push(account);
        }
        let (_, _, compute_bound) = telemetry::critical_path(&accounts).unwrap_or((0, 0.0, false));
        QueryRecord {
            seq: 0,
            kind: RecordKind::Cluster,
            label: format!("cluster[{}]", self.modules.len()),
            batch: 1,
            k,
            pus_per_vault,
            vaults: accounts,
            phases: Phases {
                stage_seconds: 0.0,
                simulate_seconds: timing.module_seconds,
                link_seconds,
                merge_seconds: (self.modules.len() * k) as f64 * 1e-9,
                fault_seconds: timing.recovery_seconds,
            },
            seconds: timing.seconds,
            compute_bound,
            total_cycles,
            total_bytes,
            energy_mj: timing.energy_mj,
            faults: timing.faults.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssam_knn::linear::knn_exact;
    use ssam_knn::Metric;

    use rand::rngs::StdRng;
    use rand::RngExt;
    use rand::SeedableRng;

    fn random_store(n: usize, dims: usize, seed: u64) -> VectorStore {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut s = VectorStore::with_capacity(dims, n);
        for _ in 0..n {
            let v: Vec<f32> = (0..dims).map(|_| rng.random_range(-1.0..1.0)).collect();
            s.push(&v);
        }
        s
    }

    #[test]
    fn cluster_matches_exact_search() {
        let store = random_store(600, 8, 1);
        let mut cluster = SsamCluster::build(SsamConfig::default(), 4, &store);
        let q: Vec<f32> = store.get(222).to_vec();
        let (ns, _) = cluster.query(&q, 7).expect("runs");
        let expect: Vec<u32> = knn_exact(&store, &q, 7, Metric::Euclidean)
            .iter()
            .map(|n| n.id)
            .collect();
        let got: Vec<u32> = ns.iter().map(|n| n.id).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn cluster_matches_single_module() {
        let store = random_store(300, 6, 2);
        let q = [0.1f32; 6];
        let mut one = SsamCluster::build(SsamConfig::default(), 1, &store);
        let mut four = SsamCluster::build(SsamConfig::default(), 4, &store);
        let (n1, _) = one.query(&q, 5).expect("runs");
        let (n4, _) = four.query(&q, 5).expect("runs");
        assert_eq!(
            n1.iter().map(|n| n.id).collect::<Vec<_>>(),
            n4.iter().map(|n| n.id).collect::<Vec<_>>()
        );
    }

    #[test]
    fn modules_split_capacity() {
        let store = random_store(500, 4, 3);
        let cluster = SsamCluster::build(SsamConfig::default(), 4, &store);
        assert_eq!(cluster.num_modules(), 4);
        assert_eq!(cluster.len(), 500);
        let held: usize = cluster.modules.iter().map(|m| m.len()).sum();
        assert_eq!(held, 500);
    }

    #[test]
    fn more_modules_cut_per_module_time() {
        let store = random_store(1000, 16, 4);
        let q = [0.0f32; 16];
        let mut one = SsamCluster::build(SsamConfig::default(), 1, &store);
        let mut four = SsamCluster::build(SsamConfig::default(), 4, &store);
        let (_, t1) = one.query(&q, 5).expect("runs");
        let (_, t4) = four.query(&q, 5).expect("runs");
        assert!(
            t4.module_seconds < t1.module_seconds,
            "sharding across modules must shrink per-module scan time"
        );
    }

    #[test]
    fn link_terms_grow_with_chain_depth() {
        let store = random_store(400, 8, 5);
        let q = [0.0f32; 8];
        let mut two = SsamCluster::build(SsamConfig::default(), 2, &store);
        let mut eight = SsamCluster::build(SsamConfig::default(), 8, &store);
        let (_, t2) = two.query(&q, 5).expect("runs");
        let (_, t8) = eight.query(&q, 5).expect("runs");
        assert!(t8.broadcast_seconds > t2.broadcast_seconds);
        assert!(t8.collect_seconds > t2.collect_seconds);
    }

    #[test]
    fn result_traffic_is_tiny_relative_to_data() {
        // The paper's claim that external links never bottleneck: result
        // volume is modules × k tuples vs the full dataset streamed
        // internally.
        let store = random_store(800, 32, 6);
        let q = [0.0f32; 32];
        let mut cluster = SsamCluster::build(SsamConfig::default(), 4, &store);
        let (_, t) = cluster.query(&q, 10).expect("runs");
        assert!(t.broadcast_seconds + t.collect_seconds < 0.15 * t.seconds);
    }

    #[test]
    fn cluster_batch_matches_serial_loop() {
        let store = random_store(400, 6, 8);
        let mut cluster = SsamCluster::build(SsamConfig::default(), 3, &store);
        let qs: Vec<Vec<f32>> = (0..4)
            .map(|i| (0..6).map(|j| ((i + 2 * j) as f32 * 0.4).cos()).collect())
            .collect();
        let refs: Vec<&[f32]> = qs.iter().map(Vec::as_slice).collect();
        let batch = cluster.query_batch(&refs, 5).expect("batch runs");
        assert_eq!(batch.len(), 4);
        for (q, (neighbors, timing)) in refs.iter().zip(&batch) {
            let (sn, st) = cluster.query(q, 5).expect("serial runs");
            assert_eq!(&sn, neighbors);
            assert_eq!(&st, timing);
        }
    }

    /// Vectors on a line: vector `i` is `[0.1·i, 0, …]`, so nearest
    /// neighbors of a point are the ids around it and module boundaries
    /// fall at known ids.
    fn line_store(n: usize, dims: usize) -> VectorStore {
        let mut s = VectorStore::with_capacity(dims, n);
        for i in 0..n {
            let mut v = vec![0.0f32; dims];
            v[0] = i as f32 * 0.1;
            s.push(&v);
        }
        s
    }

    #[test]
    fn topk_straddling_a_module_boundary_remaps_global_ids() {
        let store = line_store(100, 4);
        let mut cluster = SsamCluster::build(SsamConfig::default(), 2, &store);
        // The module boundary is at id 50; a query at 4.96 pulls its
        // top-6 from both sides, so every id from module 1 must come back
        // offset by its base (a module-local id would collide with
        // module 0's range).
        let q = [4.96f32, 0.0, 0.0, 0.0];
        let (ns, _) = cluster.query(&q, 6).expect("runs");
        let got: Vec<u32> = ns.iter().map(|n| n.id).collect();
        let expect: Vec<u32> = knn_exact(&store, &q, 6, Metric::Euclidean)
            .iter()
            .map(|n| n.id)
            .collect();
        assert_eq!(got, expect);
        assert!(
            got.iter().any(|&id| id < 50) && got.iter().any(|&id| id >= 50),
            "top-k must straddle the boundary: {got:?}"
        );
        let unique: std::collections::HashSet<u32> = got.iter().copied().collect();
        assert_eq!(unique.len(), got.len(), "global ids must not collide");
    }

    #[test]
    fn batched_boundary_queries_remap_global_ids() {
        let store = line_store(100, 4);
        let mut cluster = SsamCluster::build(SsamConfig::default(), 4, &store);
        // Boundaries at ids 25, 50, 75 — one query lands on each.
        let centers = [(2.46f32, 25u32), (4.96, 50), (7.46, 75)];
        let qs: Vec<Vec<f32>> = centers
            .iter()
            .map(|&(x, _)| vec![x, 0.0, 0.0, 0.0])
            .collect();
        let refs: Vec<&[f32]> = qs.iter().map(Vec::as_slice).collect();
        let batch = cluster.query_batch(&refs, 4).expect("runs");
        assert_eq!(batch.len(), 3);
        for ((q, &(_, boundary)), (ns, _)) in refs.iter().zip(&centers).zip(&batch) {
            let got: Vec<u32> = ns.iter().map(|n| n.id).collect();
            let expect: Vec<u32> = knn_exact(&store, q, 4, Metric::Euclidean)
                .iter()
                .map(|n| n.id)
                .collect();
            assert_eq!(got, expect, "boundary {boundary}");
            assert!(
                got.iter().any(|&id| id < boundary) && got.iter().any(|&id| id >= boundary),
                "top-k must straddle boundary {boundary}: {got:?}"
            );
            let unique: std::collections::HashSet<u32> = got.iter().copied().collect();
            assert_eq!(unique.len(), got.len(), "global ids must not collide");
        }
    }

    #[test]
    fn telemetry_records_checked_cluster_accounts() {
        let store = random_store(400, 6, 9);
        let mut cluster = SsamCluster::build(SsamConfig::default(), 3, &store);
        let sink = Telemetry::default();
        cluster.attach_telemetry(&sink);
        let qs: Vec<Vec<f32>> = (0..2)
            .map(|i| (0..6).map(|j| ((i + 3 * j) as f32 * 0.3).sin()).collect())
            .collect();
        let refs: Vec<&[f32]> = qs.iter().map(Vec::as_slice).collect();
        let batch = cluster.query_batch(&refs, 5).expect("runs");
        assert_eq!(sink.len(), 2);
        assert!(
            sink.violations().is_empty(),
            "cluster accounts must self-check clean: {:?}",
            sink.violations()
        );
        for (r, (_, t)) in sink.records().iter().zip(&batch) {
            assert_eq!(r.kind, RecordKind::Cluster);
            assert_eq!(r.vaults.len(), 3, "one account per module");
            assert_eq!(r.seconds, t.seconds);
            assert_eq!(r.energy_mj, t.energy_mj);
            assert_eq!(r.phases.simulate_seconds, t.module_seconds);
            telemetry::verify_record(r).expect("record passes verification");
        }
    }

    #[test]
    fn degenerate_batches_return_typed_errors() {
        // Regression: the cluster entry point used to panic on an empty
        // batch or k == 0; both are now typed rejections.
        let store = random_store(60, 4, 10);
        let mut cluster = SsamCluster::build(SsamConfig::default(), 2, &store);
        let empty: [&[f32]; 0] = [];
        assert_eq!(
            cluster.query_batch(&empty, 3).unwrap_err(),
            SimError::EmptyBatch
        );
        let q = [0.0f32; 4];
        assert_eq!(cluster.query_batch(&[&q], 0).unwrap_err(), SimError::ZeroK);
        assert_eq!(cluster.query(&q, 0).unwrap_err(), SimError::ZeroK);
        assert_eq!(cluster.query_len(), Some(4));
    }

    #[test]
    fn more_modules_than_vectors_is_clamped() {
        let store = random_store(3, 4, 7);
        let mut cluster = SsamCluster::build(SsamConfig::default(), 8, &store);
        assert!(cluster.num_modules() <= 3);
        let (ns, _) = cluster.query(&[0.0; 4], 2).expect("runs");
        assert_eq!(ns.len(), 2);
    }
}
