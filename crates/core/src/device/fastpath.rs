//! Analytic fast-path executor for the linear hardware-queue kernels.
//!
//! The cycle simulator interprets ~9 instructions per vector-length
//! chunk of every candidate vector. But for the straight-line scan
//! kernels (Euclidean / Manhattan / Hamming with the hardware priority
//! queue) nothing about the run is data-dependent *except the distance
//! values themselves*:
//!
//! * every [`crate::sim::RunStats`] counter is a pure function of
//!   `(program, vl, n)` — the scan loop trips exactly `n` times, the
//!   chunk loop `dims/vl` times, `PQUEUE_INSERT` retires in one cycle
//!   whether or not the candidate is accepted, and the `MEM_FETCH`
//!   window makes every chunk load a prefetch hit. The static cost
//!   model proves this by synthesizing the counters exactly
//!   ([`crate::analysis::cost::CostEstimate::stats`], cross-checked
//!   bit-for-bit against real runs in its tests);
//! * the distance arithmetic is Q16.16 over wrapping `i32`, which the
//!   host replicates exactly ([`raw_distance`]);
//! * candidate selection is the hardware shift-register queue, which
//!   the host reuses *directly* ([`crate::sim::HardwarePriorityQueue`]
//!   is the same type the simulated PU embeds), so insertion-order tie
//!   behavior is identical by construction.
//!
//! So the fast path computes each candidate's raw distance host-side,
//! feeds it through the same priority queue, and takes the counters
//! from the cost model — producing bit-identical neighbors, stats,
//! timing, fault accounting, and telemetry at a fraction of the cost
//! (no per-instruction interpretation). The cosine kernel's software
//! division and the software-queue variants have data-dependent control
//! flow, so their counters are *not* static functions of `(program, vl,
//! n)`; those queries fall back to the cycle simulator (see
//! [`supported`]), as does anything whose synthesized counters fail to
//! resolve exactly.
//!
//! The `fastpath_equivalence` integration suite drives both executors
//! over random batches — with and without chaos fault plans — and
//! asserts bit-identity on every observable.

use super::DeviceMetric;
use crate::analysis::cost::{estimate_with, CostParams};
use crate::isa::inst::Instruction;
use crate::sim::pu::RunStats;
use crate::sim::HardwarePriorityQueue;

/// Whether `metric`'s hardware-queue kernel has an analytic fast path.
///
/// Cosine is excluded: its restoring-division tail branches on data, so
/// its cycle/branch counters cannot be synthesized exactly (the value
/// *could* be replicated, but the run account could not).
pub(super) fn supported(metric: DeviceMetric) -> bool {
    matches!(
        metric,
        DeviceMetric::Euclidean | DeviceMetric::Manhattan | DeviceMetric::Hamming
    )
}

/// Synthesizes the full counter set one simulated run of `program` over
/// `n` vectors would report, or `None` when any counter is not a static
/// function of `(program, vl, n)` — the caller must fall back to the
/// cycle simulator in that case.
pub(super) fn synthesize_stats(program: &[Instruction], vl: usize, n: u64) -> Option<RunStats> {
    estimate_with(program, vl, n, &CostParams::default()).stats
}

/// Q16.16 multiply, exactly as [`crate::isa::inst::AluOp::Mult`]
/// evaluates it on the vector datapath.
#[inline]
fn q16_mult(a: i32, b: i32) -> i32 {
    (((a as i64) * (b as i64)) >> 16) as i32
}

/// The raw distance word the kernel would leave in `s7` for one
/// candidate: Q16.16 squared Euclidean / Manhattan distance, or the
/// plain popcount for Hamming.
///
/// The kernels accumulate per-element terms into `vl` lane accumulators
/// with wrapping adds, then reduce the lanes sequentially
/// (`reduce_lanes`). Wrapping `i32` addition is arithmetic mod 2³², so
/// it is associative and commutative and *any* summation order — here, a
/// flat index-order loop the compiler can vectorize — yields the same
/// bits. Per-element terms replicate the vector datapath exactly:
/// wrapping subtract, Q16.16 multiply, the `(d ^ (d >> 31)) - (d >> 31)`
/// branch-free absolute value, and xor-popcount. Zero padding (applied
/// to both the staged query and the stored vectors) contributes
/// zero-valued terms, just as the padded lanes do on the device.
///
/// # Panics
/// Panics if the slices differ in length (staging guarantees both are
/// `vec_words` long).
///
/// Public (re-exported as [`crate::device::raw_distance`]): the mutable
/// store's memtable scan computes candidate distances through this exact
/// function so host-resident vectors rank bit-identically to vault-staged
/// ones.
pub fn raw_distance(metric: DeviceMetric, query: &[i32], cand: &[i32]) -> i32 {
    assert_eq!(query.len(), cand.len(), "candidate/query width mismatch");
    let mut acc = 0i32;
    match metric {
        DeviceMetric::Euclidean => {
            for (&x, &y) in cand.iter().zip(query) {
                let d = x.wrapping_sub(y);
                acc = acc.wrapping_add(q16_mult(d, d));
            }
        }
        DeviceMetric::Manhattan => {
            for (&x, &y) in cand.iter().zip(query) {
                let d = x.wrapping_sub(y);
                let m = d >> 31;
                acc = acc.wrapping_add((d ^ m).wrapping_sub(m));
            }
        }
        DeviceMetric::Hamming => {
            for (&x, &y) in cand.iter().zip(query) {
                acc = acc.wrapping_add((x ^ y).count_ones() as i32);
            }
        }
        DeviceMetric::Cosine => unreachable!("cosine has no analytic fast path"),
    }
    acc
}

/// Scans one shard for one query, exactly as the hardware-queue kernel
/// would: local ids in scan order, raw Q16.16/popcount distances, and
/// the real shift-register priority queue for selection. Returns the
/// queue's best `k` `(local_id, raw_distance)` pairs, best first — the
/// same tuples the device reads back from a simulated PU's queue.
pub(super) fn scan_shard(
    metric: DeviceMetric,
    query: &[i32],
    shard_words: &[i32],
    vec_words: usize,
    k: usize,
    pq_chain: usize,
) -> Vec<(i32, i32)> {
    let mut pq = HardwarePriorityQueue::chained(pq_chain);
    for (local, cand) in shard_words.chunks_exact(vec_words).enumerate() {
        pq.insert(local as i32, raw_distance(metric, query, cand));
    }
    pq.entries()
        .iter()
        .take(k)
        .map(|e| (e.id, e.value))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::DRAM_BASE;
    use crate::kernels::linear;
    use crate::sim::ProcessingUnit;
    use std::sync::Arc;

    fn lcg_words(n: usize, seed: u64) -> Vec<i32> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 33) as i32
            })
            .collect()
    }

    /// The host replication of the distance pipeline and queue must equal
    /// a real simulated kernel run: same queue ids, same raw values, same
    /// counters — for every vector length and supported metric, including
    /// values that exercise wrapping.
    #[test]
    fn scan_matches_a_simulated_kernel_run_bit_for_bit() {
        for &vl in &crate::isa::VECTOR_LENGTHS {
            for metric in [
                DeviceMetric::Euclidean,
                DeviceMetric::Manhattan,
                DeviceMetric::Hamming,
            ] {
                let kernel = match metric {
                    DeviceMetric::Euclidean => linear::euclidean(10, vl),
                    DeviceMetric::Manhattan => linear::manhattan(10, vl),
                    DeviceMetric::Hamming => linear::hamming(10, vl),
                    DeviceMetric::Cosine => unreachable!(),
                };
                let vw = kernel.layout.vec_words;
                let n = 23usize;
                let k = 7usize;
                let dram = lcg_words(n * vw, 5 + vl as u64);
                let query = lcg_words(vw, 99 + vl as u64);

                let mut pu = ProcessingUnit::new(vl, Arc::new(dram.clone()));
                pu.chain_pqueue(1);
                pu.load_program(kernel.program.clone());
                pu.scratchpad_mut()
                    .write_block(kernel.layout.query_addr, &query)
                    .expect("query fits");
                pu.set_sreg(1, DRAM_BASE as i32);
                pu.set_sreg(2, DRAM_BASE as i32 + (n * vw * 4) as i32);
                pu.set_sreg(3, 0);
                let stats = pu.run(1_000_000).expect("runs");
                let sim: Vec<(i32, i32)> = pu
                    .pqueue()
                    .entries()
                    .iter()
                    .take(k)
                    .map(|e| (e.id, e.value))
                    .collect();

                let fast = scan_shard(metric, &query, &dram, vw, k, 1);
                assert_eq!(fast, sim, "{} vl={vl}", kernel.name);
                assert_eq!(
                    synthesize_stats(&kernel.program, vl, n as u64),
                    Some(stats),
                    "{} vl={vl}",
                    kernel.name
                );
            }
        }
    }

    #[test]
    fn cosine_is_not_supported() {
        assert!(!supported(DeviceMetric::Cosine));
        assert!(supported(DeviceMetric::Euclidean));
    }
}
