//! Query-scoped telemetry: structured, *self-checking* accounting.
//!
//! PRs 1–2 each fixed a silent accounting bug by hand (the Q16.16
//! `as f32` readout, the software-queue kernel fallthrough, the
//! `compute_bound`-from-last-vault classification). This module turns
//! that recurring bug class into machinery: every device execution path
//! ([`crate::device::SsamDevice::query_batch`],
//! [`crate::device::indexed::IndexedSsamDevice::query`],
//! [`crate::device::cluster::SsamCluster::query_batch`]) builds a
//! [`QueryRecord`] — per-vault counters, roofline terms, span-style phase
//! timings — and [`verify_record`] cross-checks the record against the
//! summary numbers the device reports ([`crate::device::QueryTiming`] /
//! [`crate::device::BatchTiming`]) *at collection time*:
//!
//! * Σ per-vault bytes == `total_bytes`, Σ per-vault cycles ==
//!   `total_cycles` (exact);
//! * `seconds == simulate + link + merge` and `simulate == max` vault
//!   critical time (within [`REL_TOL`]);
//! * `compute_bound` agrees with the **argmax** vault's own
//!   classification (first strict argmax on ties — the exact invariant
//!   the PR 2 / PR 3 bugs violated);
//! * energy finite and non-negative, per-vault terms reconciling with
//!   the total;
//! * batch counters ≡ the serial-loop sum ([`verify_batch`]).
//!
//! In debug builds a violated invariant panics at the collection site;
//! release builds retain the violation for inspection
//! ([`Telemetry::violations`]). Records export as JSONL
//! ([`Telemetry::write_jsonl`]) and as summary-table rows
//! ([`Telemetry::summary_rows`]) for the bench binaries' `--telemetry`
//! flag.

use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

pub use ssam_faults::FaultRecord;

use crate::sim::pu::RunStats;

/// Relative tolerance for floating-point reconciliation. The bench
/// acceptance bar is 1e-9; the checks run at 1e-9 relative (plus a tiny
/// absolute floor for quantities that are legitimately zero).
pub const REL_TOL: f64 = 1e-9;

/// Which execution path produced a record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// One query through `SsamDevice::query_batch` (serial-equivalent
    /// account).
    Query,
    /// The batch-level pipelined account of one `query_batch` call.
    Batch,
    /// One query through the on-device-index path
    /// (`IndexedSsamDevice::query`).
    Indexed,
    /// One query through `SsamCluster::query_batch` (accounts are
    /// per-module, not per-vault).
    Cluster,
    /// A record synthesized from a roofline model rather than full
    /// simulation (the Fig. 7 extrapolation path).
    Modeled,
}

impl RecordKind {
    /// Stable lowercase name used in the JSONL export.
    pub fn name(&self) -> &'static str {
        match self {
            RecordKind::Query => "query",
            RecordKind::Batch => "batch",
            RecordKind::Indexed => "indexed",
            RecordKind::Cluster => "cluster",
            RecordKind::Modeled => "modeled",
        }
    }
}

/// One vault's (or, for cluster records, one module's) account of a
/// query: raw counters from the simulator plus the roofline terms the
/// timing model derived from them.
#[derive(Debug, Clone, PartialEq)]
pub struct VaultAccount {
    /// Vault (or module) index, 0-based.
    pub vault: usize,
    /// Simulated cycles.
    pub cycles: u64,
    /// DRAM bytes streamed.
    pub bytes: u64,
    /// Instructions retired.
    pub instructions: u64,
    /// Priority-queue operations.
    pub pqueue_ops: u64,
    /// Stack operations.
    pub stack_ops: u64,
    /// Scratchpad accesses.
    pub scratchpad_accesses: u64,
    /// Memory-roofline time: `bytes / vault_bandwidth`.
    pub mem_seconds: f64,
    /// Compute-roofline time: `cycles / (pus · freq)`.
    pub comp_seconds: f64,
    /// This vault's own classification: `comp_seconds > mem_seconds`.
    pub compute_bound: bool,
    /// Energy charged to this vault over the query window, millijoules.
    pub energy_mj: f64,
}

impl VaultAccount {
    /// Builds an account from a kernel run's statistics and the roofline
    /// parameters. Energy is left at zero — it depends on the full query
    /// window, which the caller knows only after the critical path is
    /// found; fill it afterwards.
    pub fn from_stats(vault: usize, s: &RunStats, vault_bw: f64, freq: f64, pus: usize) -> Self {
        let mem_seconds = s.dram.bytes_read as f64 / vault_bw;
        let comp_seconds = s.cycles as f64 / (pus as f64 * freq);
        Self {
            vault,
            cycles: s.cycles,
            bytes: s.dram.bytes_read,
            instructions: s.instructions,
            pqueue_ops: s.pqueue_ops,
            stack_ops: s.stack_ops,
            scratchpad_accesses: s.scratchpad_accesses,
            mem_seconds,
            comp_seconds,
            compute_bound: comp_seconds > mem_seconds,
            energy_mj: 0.0,
        }
    }

    /// The vault's critical time: `max(mem_seconds, comp_seconds)`.
    pub fn critical_seconds(&self) -> f64 {
        self.mem_seconds.max(self.comp_seconds)
    }
}

/// The vault that sets a record's critical path: the **first strict
/// argmax** over per-vault critical time. Returns
/// `(vault index into the slice, critical seconds, compute_bound)`.
///
/// This is the single place the memory-vs-compute classification is
/// defined; both device timing derivations and the [`verify_record`]
/// cross-check use it, so a reimplementation drifting (the PR 2 and PR 3
/// `compute_bound` bugs) now trips an invariant instead of shipping.
pub fn critical_path(vaults: &[VaultAccount]) -> Option<(usize, f64, bool)> {
    let mut out: Option<(usize, f64, bool)> = None;
    for (i, v) in vaults.iter().enumerate() {
        let t = v.critical_seconds();
        // Strictly-greater keeps the first argmax on ties.
        if out.is_none_or(|(_, worst, _)| t > worst) {
            out = Some((i, t, v.compute_bound));
        }
    }
    out
}

/// Span-style phase timings for one record. `stage_seconds` is measured
/// host wall-clock (staging queries, writing scratchpad images) and is
/// informational; the other three are *modeled* device time and must sum
/// to the record's `seconds`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Phases {
    /// Host-side staging wall-clock (measured, not modeled).
    pub stage_seconds: f64,
    /// Modeled simulate phase: the slowest vault's critical time.
    pub simulate_seconds: f64,
    /// Modeled external-link transfer time (for cluster records: the
    /// broadcast plus collection wire time).
    pub link_seconds: f64,
    /// Modeled host merge/reduce allowance.
    pub merge_seconds: f64,
    /// Modeled fault-recovery time: link retransmissions and failover
    /// backoff. Zero on every fault-free path; must equal the record's
    /// [`FaultRecord::recovery_seconds`].
    pub fault_seconds: f64,
}

impl Phases {
    /// The modeled end-to-end time: `simulate + link + merge + fault`.
    pub fn modeled_seconds(&self) -> f64 {
        self.simulate_seconds + self.link_seconds + self.merge_seconds + self.fault_seconds
    }
}

/// One query's (or one batch's) complete, checkable account.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRecord {
    /// Sequence number, assigned by the [`Telemetry`] sink at collection.
    pub seq: u64,
    /// Which execution path produced this record.
    pub kind: RecordKind,
    /// Free-form label (kernel name, dataset, experiment row).
    pub label: String,
    /// Queries covered (1 for per-query records, B for batch records).
    pub batch: usize,
    /// Neighbors requested per query.
    pub k: usize,
    /// Processing units provisioned per vault.
    pub pus_per_vault: usize,
    /// Per-vault accounts (vault 0 first).
    pub vaults: Vec<VaultAccount>,
    /// Phase spans.
    pub phases: Phases,
    /// The summary seconds the device reported (must reconcile with
    /// `phases`).
    pub seconds: f64,
    /// The summary classification the device reported (must agree with
    /// the argmax vault).
    pub compute_bound: bool,
    /// The summary cycle total the device reported (must equal Σ vaults).
    pub total_cycles: u64,
    /// The summary byte total the device reported (must equal Σ vaults).
    pub total_bytes: u64,
    /// The summary energy the device reported (must reconcile with
    /// Σ vault energies).
    pub energy_mj: f64,
    /// Fault-injection accounting for the record's window. Trivial (all
    /// zeros, full coverage) on fault-free paths; when faults were
    /// injected, [`verify_record`] checks the closure invariants — every
    /// injected fault must be corrected, retried, or surfaced as lost
    /// coverage.
    pub faults: FaultRecord,
}

impl QueryRecord {
    /// Fraction of the candidate set this record actually scanned.
    pub fn coverage(&self) -> f64 {
        self.faults.coverage()
    }
}

/// A violated accounting invariant.
#[derive(Debug, Clone, PartialEq)]
pub enum AccountingError {
    /// Σ per-vault bytes differs from the reported total.
    BytesMismatch {
        /// Σ over [`QueryRecord::vaults`].
        vault_sum: u64,
        /// [`QueryRecord::total_bytes`].
        total: u64,
    },
    /// Σ per-vault cycles differs from the reported total.
    CyclesMismatch {
        /// Σ over [`QueryRecord::vaults`].
        vault_sum: u64,
        /// [`QueryRecord::total_cycles`].
        total: u64,
    },
    /// `seconds` does not reconcile with `simulate + link + merge`.
    SecondsMismatch {
        /// `phases.modeled_seconds()`.
        modeled: f64,
        /// [`QueryRecord::seconds`].
        reported: f64,
    },
    /// The simulate span does not match the slowest vault.
    SimulateMismatch {
        /// `max` critical time over the vault accounts.
        critical: f64,
        /// [`Phases::simulate_seconds`].
        reported: f64,
    },
    /// The record's `compute_bound` disagrees with the argmax vault's own
    /// classification.
    ClassificationMismatch {
        /// Index of the critical vault.
        vault: usize,
        /// That vault's classification.
        vault_compute_bound: bool,
        /// [`QueryRecord::compute_bound`].
        reported: bool,
    },
    /// An energy term is NaN, infinite, or negative, or the per-vault
    /// terms do not reconcile with the total.
    BadEnergy {
        /// Human-readable description of which term is bad.
        detail: String,
    },
    /// A record with no vault accounts (nothing to check against).
    Empty,
    /// Fault accounting does not close: an injected fault vanished
    /// without being corrected, retried, or surfaced as lost coverage —
    /// or the recovery time disagrees with the fault phase span.
    FaultMismatch {
        /// Human-readable description of the broken closure invariant.
        detail: String,
    },
    /// A mutable-store account violated a lifecycle invariant
    /// ([`verify_store_account`]).
    StoreMismatch {
        /// Human-readable description of the broken invariant.
        detail: String,
    },
    /// A sharded-store account violated a placement or replication
    /// invariant ([`verify_shard_account`]).
    ShardMismatch {
        /// Human-readable description of the broken invariant.
        detail: String,
    },
    /// Batch totals differ from the serial-loop sum ([`verify_batch`]).
    BatchCounterMismatch {
        /// Which counter disagreed (`"cycles"` or `"bytes"`).
        counter: &'static str,
        /// Σ over the per-query records.
        serial_sum: u64,
        /// The batch record's total.
        batch_total: u64,
    },
}

impl std::fmt::Display for AccountingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AccountingError::BytesMismatch { vault_sum, total } => write!(
                f,
                "per-vault bytes sum {vault_sum} != reported total_bytes {total}"
            ),
            AccountingError::CyclesMismatch { vault_sum, total } => write!(
                f,
                "per-vault cycles sum {vault_sum} != reported total_cycles {total}"
            ),
            AccountingError::SecondsMismatch { modeled, reported } => write!(
                f,
                "seconds {reported} does not reconcile with simulate+link+merge {modeled}"
            ),
            AccountingError::SimulateMismatch { critical, reported } => write!(
                f,
                "simulate span {reported} does not match max vault critical time {critical}"
            ),
            AccountingError::ClassificationMismatch {
                vault,
                vault_compute_bound,
                reported,
            } => write!(
                f,
                "compute_bound={reported} but critical vault {vault} classifies \
                 compute_bound={vault_compute_bound}"
            ),
            AccountingError::BadEnergy { detail } => write!(f, "bad energy account: {detail}"),
            AccountingError::StoreMismatch { detail } => {
                write!(f, "store accounting does not close: {detail}")
            }
            AccountingError::ShardMismatch { detail } => {
                write!(f, "shard accounting does not close: {detail}")
            }
            AccountingError::FaultMismatch { detail } => {
                write!(f, "fault accounting does not close: {detail}")
            }
            AccountingError::Empty => write!(f, "record has no vault accounts"),
            AccountingError::BatchCounterMismatch {
                counter,
                serial_sum,
                batch_total,
            } => write!(
                f,
                "batch {counter} total {batch_total} != serial-loop sum {serial_sum}"
            ),
        }
    }
}

impl std::error::Error for AccountingError {}

fn close(a: f64, b: f64) -> bool {
    let scale = a.abs().max(b.abs());
    (a - b).abs() <= REL_TOL * scale + 1e-18
}

/// Checks every accounting invariant of one record. The first violated
/// invariant is returned; a fully consistent record returns `Ok(())`.
pub fn verify_record(r: &QueryRecord) -> Result<(), AccountingError> {
    if r.vaults.is_empty() {
        return Err(AccountingError::Empty);
    }

    let vault_bytes: u64 = r.vaults.iter().map(|v| v.bytes).sum();
    if vault_bytes != r.total_bytes {
        return Err(AccountingError::BytesMismatch {
            vault_sum: vault_bytes,
            total: r.total_bytes,
        });
    }
    let vault_cycles: u64 = r.vaults.iter().map(|v| v.cycles).sum();
    if vault_cycles != r.total_cycles {
        return Err(AccountingError::CyclesMismatch {
            vault_sum: vault_cycles,
            total: r.total_cycles,
        });
    }

    let (argmax, critical, vault_cb) = critical_path(&r.vaults).expect("non-empty");
    if !close(r.phases.simulate_seconds, critical) {
        return Err(AccountingError::SimulateMismatch {
            critical,
            reported: r.phases.simulate_seconds,
        });
    }
    if !close(r.seconds, r.phases.modeled_seconds()) {
        return Err(AccountingError::SecondsMismatch {
            modeled: r.phases.modeled_seconds(),
            reported: r.seconds,
        });
    }
    if r.compute_bound != vault_cb {
        return Err(AccountingError::ClassificationMismatch {
            vault: argmax,
            vault_compute_bound: vault_cb,
            reported: r.compute_bound,
        });
    }

    if !r.energy_mj.is_finite() || r.energy_mj < 0.0 {
        return Err(AccountingError::BadEnergy {
            detail: format!("total energy_mj = {}", r.energy_mj),
        });
    }
    let mut vault_energy = 0.0;
    for v in &r.vaults {
        if !v.energy_mj.is_finite() || v.energy_mj < 0.0 {
            return Err(AccountingError::BadEnergy {
                detail: format!("vault {} energy_mj = {}", v.vault, v.energy_mj),
            });
        }
        vault_energy += v.energy_mj;
    }
    if !close(vault_energy, r.energy_mj) {
        return Err(AccountingError::BadEnergy {
            detail: format!(
                "per-vault energy sum {vault_energy} != reported total {}",
                r.energy_mj
            ),
        });
    }

    if let Err(detail) = r.faults.check_closure() {
        return Err(AccountingError::FaultMismatch { detail });
    }
    if !close(r.phases.fault_seconds, r.faults.recovery_seconds) {
        return Err(AccountingError::FaultMismatch {
            detail: format!(
                "fault phase span {} != fault-record recovery_seconds {}",
                r.phases.fault_seconds, r.faults.recovery_seconds
            ),
        });
    }
    Ok(())
}

/// Checks the batch-vs-serial counter identity: the batch record's
/// aggregate cycles and bytes must equal the sums over the per-query
/// records it covers (the batched engine is bit-identical to a serial
/// loop, so the counters must be too).
pub fn verify_batch(batch: &QueryRecord, queries: &[QueryRecord]) -> Result<(), AccountingError> {
    let serial_cycles: u64 = queries.iter().map(|q| q.total_cycles).sum();
    if serial_cycles != batch.total_cycles {
        return Err(AccountingError::BatchCounterMismatch {
            counter: "cycles",
            serial_sum: serial_cycles,
            batch_total: batch.total_cycles,
        });
    }
    let serial_bytes: u64 = queries.iter().map(|q| q.total_bytes).sum();
    if serial_bytes != batch.total_bytes {
        return Err(AccountingError::BatchCounterMismatch {
            counter: "bytes",
            serial_sum: serial_bytes,
            batch_total: batch.total_bytes,
        });
    }
    Ok(())
}

/// One immutable segment's share of a mutable-store account.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentAccount {
    /// Store-wide segment id (monotonic across seals and compactions).
    pub id: u64,
    /// Compaction level the segment currently sits on (0 = freshest).
    pub level: usize,
    /// Vectors resident in the segment (live at seal time).
    pub entries: usize,
    /// Resident vectors since superseded by a newer version or tombstone
    /// (the store's over-fetch margin for this segment).
    pub stale: usize,
    /// Bytes staged into this segment's vault shards.
    pub bytes: u64,
}

impl SegmentAccount {
    /// Resident vectors still visible to queries.
    pub fn live(&self) -> usize {
        self.entries - self.stale
    }
}

/// A mutable store's complete lifecycle account: WAL, memtable, segment,
/// and compaction counters, cross-checked by [`verify_store_account`] at
/// collection time exactly like query records are by [`verify_record`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreAccount {
    /// Sequence number, assigned by the [`Telemetry`] sink at collection.
    pub seq: u64,
    /// Free-form label (which lifecycle event produced the account).
    pub label: String,
    /// Bytes per padded stored vector (`vec_words * 4`).
    pub vec_bytes: u64,
    /// Vectors resident in the memtable (all visible by construction).
    pub memtable_entries: usize,
    /// Index entries pointing at a live location (memtable or segment).
    pub index_live: usize,
    /// Index entries that are tombstones.
    pub index_dead: usize,
    /// WAL records appended so far.
    pub wal_records: u64,
    /// WAL bytes appended so far (framing + payload).
    pub wal_bytes: u64,
    /// Caller payload bytes accepted (insert vectors, pre-quantization).
    pub payload_bytes: u64,
    /// Bytes written into segment devices across every seal + compaction.
    pub staged_bytes: u64,
    /// Memtable seals performed.
    pub seals: u64,
    /// Compactions performed.
    pub compactions: u64,
    /// Level fanout: a level holding more than this many segments owes
    /// compaction work.
    pub fanout: usize,
    /// Per-segment accounts, level order then segment order.
    pub segments: Vec<SegmentAccount>,
}

impl StoreAccount {
    /// Vectors resident across every segment (live + stale).
    pub fn resident(&self) -> usize {
        self.segments.iter().map(|s| s.entries).sum()
    }

    /// Visible vectors: live segment entries plus the memtable.
    pub fn live(&self) -> usize {
        self.segments
            .iter()
            .map(SegmentAccount::live)
            .sum::<usize>()
            + self.memtable_entries
    }

    /// Fraction of segment-resident vectors that are dead weight
    /// (superseded or tombstoned); `0.0` with no resident vectors.
    pub fn dead_ratio(&self) -> f64 {
        let resident = self.resident();
        if resident == 0 {
            return 0.0;
        }
        self.segments.iter().map(|s| s.stale).sum::<usize>() as f64 / resident as f64
    }

    /// Write amplification: total bytes durably written (WAL + staging)
    /// per accepted payload byte; `0.0` before any payload arrived.
    pub fn write_amp(&self) -> f64 {
        if self.payload_bytes == 0 {
            return 0.0;
        }
        (self.wal_bytes + self.staged_bytes) as f64 / self.payload_bytes as f64
    }

    /// Compaction debt: segments beyond the fanout on each level (how
    /// many merges the background compactor owes).
    pub fn compaction_debt(&self) -> u64 {
        let mut per_level: std::collections::BTreeMap<usize, usize> = Default::default();
        for s in &self.segments {
            *per_level.entry(s.level).or_insert(0) += 1;
        }
        per_level
            .values()
            .map(|&n| n.saturating_sub(self.fanout) as u64)
            .sum()
    }
}

/// Checks a mutable-store account's lifecycle invariants. Like
/// [`verify_record`], the first violated invariant is returned.
///
/// The load-bearing cross-check is visibility closure: the per-segment
/// `stale` counters (maintained incrementally as writes supersede
/// resident vectors) and the index's live count (maintained as a map of
/// latest versions) are independent bookkeeping, and
/// `Σ segment live + memtable == index_live` catches either side
/// drifting.
pub fn verify_store_account(a: &StoreAccount) -> Result<(), AccountingError> {
    for s in &a.segments {
        if s.entries == 0 {
            return Err(AccountingError::StoreMismatch {
                detail: format!("segment {} is resident but empty", s.id),
            });
        }
        if s.stale > s.entries {
            return Err(AccountingError::StoreMismatch {
                detail: format!(
                    "segment {}: stale {} exceeds entries {}",
                    s.id, s.stale, s.entries
                ),
            });
        }
        if s.bytes != s.entries as u64 * a.vec_bytes {
            return Err(AccountingError::StoreMismatch {
                detail: format!(
                    "segment {}: staged bytes {} != entries {} x vec_bytes {}",
                    s.id, s.bytes, s.entries, a.vec_bytes
                ),
            });
        }
    }
    let seg_live: usize = a.segments.iter().map(SegmentAccount::live).sum();
    if seg_live + a.memtable_entries != a.index_live {
        return Err(AccountingError::StoreMismatch {
            detail: format!(
                "segment live {} + memtable {} != index live {}",
                seg_live, a.memtable_entries, a.index_live
            ),
        });
    }
    if a.wal_bytes < a.payload_bytes {
        return Err(AccountingError::StoreMismatch {
            detail: format!(
                "WAL bytes {} below accepted payload bytes {} (records are framed supersets)",
                a.wal_bytes, a.payload_bytes
            ),
        });
    }
    let resident_bytes: u64 = a.segments.iter().map(|s| s.bytes).sum();
    if a.staged_bytes < resident_bytes {
        return Err(AccountingError::StoreMismatch {
            detail: format!(
                "cumulative staged bytes {} below currently resident bytes {}",
                a.staged_bytes, resident_bytes
            ),
        });
    }
    if !a.segments.is_empty() && a.seals == 0 {
        return Err(AccountingError::StoreMismatch {
            detail: "segments are resident but no seal was ever recorded".into(),
        });
    }
    Ok(())
}

/// Serializes one store account as a single-line JSON object
/// (`"kind":"store"`, interleaved with query records in the JSONL
/// export).
pub fn store_account_json(a: &StoreAccount) -> String {
    let mut o = String::with_capacity(256 + 96 * a.segments.len());
    o.push('{');
    let _ = write!(o, "\"seq\":{},\"kind\":\"store\",\"label\":", a.seq);
    json_escape(&a.label, &mut o);
    let _ = write!(
        o,
        ",\"vec_bytes\":{},\"memtable_entries\":{},\"index_live\":{},\"index_dead\":{},\
         \"wal_records\":{},\"wal_bytes\":{},\"payload_bytes\":{},\"staged_bytes\":{},\
         \"seals\":{},\"compactions\":{},\"fanout\":{},\"live\":{},\"resident\":{},",
        a.vec_bytes,
        a.memtable_entries,
        a.index_live,
        a.index_dead,
        a.wal_records,
        a.wal_bytes,
        a.payload_bytes,
        a.staged_bytes,
        a.seals,
        a.compactions,
        a.fanout,
        a.live(),
        a.resident(),
    );
    o.push_str("\"dead_ratio\":");
    json_f64(a.dead_ratio(), &mut o);
    o.push_str(",\"write_amp\":");
    json_f64(a.write_amp(), &mut o);
    let _ = write!(
        o,
        ",\"compaction_debt\":{},\"segments\":[",
        a.compaction_debt()
    );
    for (i, s) in a.segments.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        let _ = write!(
            o,
            "{{\"id\":{},\"level\":{},\"entries\":{},\"stale\":{},\"live\":{},\"bytes\":{}}}",
            s.id,
            s.level,
            s.entries,
            s.stale,
            s.live(),
            s.bytes
        );
    }
    o.push_str("]}");
    o
}

/// One replica module's slice of a [`ShardAccount`]: placement
/// coordinates, failover state, and the module's full store account.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModuleShardAccount {
    /// Module index (`shard * replicas + replica`).
    pub module: usize,
    /// Shard this module replicates.
    pub shard: usize,
    /// Replica slot within the shard (0 = primary).
    pub replica: usize,
    /// Writes this module missed while unreachable and has not yet
    /// replayed.
    pub behind: usize,
    /// Whether reads currently route around this module.
    pub degraded: bool,
    /// Whether the module is forced down by a drill.
    pub down: bool,
    /// The module's own lifecycle account (verified independently).
    pub store: StoreAccount,
}

/// A sharded store's accounting snapshot: per-module store accounts plus
/// the placement/replication bookkeeping that ties them together,
/// cross-checked by [`verify_shard_account`] at collection time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardAccount {
    /// Sequence number, assigned by the [`Telemetry`] sink at collection.
    pub seq: u64,
    /// Free-form label.
    pub label: String,
    /// Shard count.
    pub shards: usize,
    /// Replicas per shard.
    pub replicas: usize,
    /// Acknowledged-live vectors across all shards.
    pub live: usize,
    /// Acknowledged-live vectors per shard (length `shards`).
    pub shard_live: Vec<usize>,
    /// One entry per module, module order.
    pub modules: Vec<ModuleShardAccount>,
}

impl ShardAccount {
    /// Total missed writes still pending catch-up across all modules.
    pub fn behind_total(&self) -> usize {
        self.modules.iter().map(|m| m.behind).sum()
    }
}

/// Checks a sharded-store account. Every module's store account must
/// close on its own ([`verify_store_account`]); on top of that, the
/// placement bookkeeping must agree with the per-module views: module
/// numbering is dense (`module = shard * replicas + replica`), the
/// per-shard live counts sum to the global live count, every caught-up
/// replica's visible set matches its shard's acknowledged live count,
/// and every shard keeps at least one caught-up replica (the one that
/// acked its last write).
pub fn verify_shard_account(a: &ShardAccount) -> Result<(), AccountingError> {
    if a.shards == 0 || a.replicas == 0 {
        return Err(AccountingError::ShardMismatch {
            detail: format!(
                "degenerate topology: {} shards x {} replicas",
                a.shards, a.replicas
            ),
        });
    }
    if a.modules.len() != a.shards * a.replicas {
        return Err(AccountingError::ShardMismatch {
            detail: format!(
                "{} module accounts for {} shards x {} replicas",
                a.modules.len(),
                a.shards,
                a.replicas
            ),
        });
    }
    if a.shard_live.len() != a.shards {
        return Err(AccountingError::ShardMismatch {
            detail: format!(
                "{} shard_live entries for {} shards",
                a.shard_live.len(),
                a.shards
            ),
        });
    }
    if a.shard_live.iter().sum::<usize>() != a.live {
        return Err(AccountingError::ShardMismatch {
            detail: format!(
                "per-shard live sum {} != global live {}",
                a.shard_live.iter().sum::<usize>(),
                a.live
            ),
        });
    }
    for (i, m) in a.modules.iter().enumerate() {
        if m.module != i || m.shard != i / a.replicas || m.replica != i % a.replicas {
            return Err(AccountingError::ShardMismatch {
                detail: format!(
                    "module {i} reports (module {}, shard {}, replica {})",
                    m.module, m.shard, m.replica
                ),
            });
        }
        verify_store_account(&m.store)?;
        if m.behind == 0 && m.store.live() != a.shard_live[m.shard] {
            return Err(AccountingError::ShardMismatch {
                detail: format!(
                    "caught-up module {i} holds {} live vectors but shard {} acknowledges {}",
                    m.store.live(),
                    m.shard,
                    a.shard_live[m.shard]
                ),
            });
        }
    }
    for shard in 0..a.shards {
        let caught_up = a.modules.iter().any(|m| m.shard == shard && m.behind == 0);
        if !caught_up {
            return Err(AccountingError::ShardMismatch {
                detail: format!("shard {shard} has no caught-up replica"),
            });
        }
    }
    Ok(())
}

/// Serializes one sharded-store account as a single-line JSON object
/// (`"kind":"sharded_store"`; per-module store accounts are embedded).
pub fn shard_account_json(a: &ShardAccount) -> String {
    let mut o = String::with_capacity(256 + 128 * a.modules.len());
    o.push('{');
    let _ = write!(o, "\"seq\":{},\"kind\":\"sharded_store\",\"label\":", a.seq);
    json_escape(&a.label, &mut o);
    let _ = write!(
        o,
        ",\"shards\":{},\"replicas\":{},\"live\":{},\"behind_total\":{},\"shard_live\":[",
        a.shards,
        a.replicas,
        a.live,
        a.behind_total(),
    );
    for (i, n) in a.shard_live.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        let _ = write!(o, "{n}");
    }
    o.push_str("],\"modules\":[");
    for (i, m) in a.modules.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        let _ = write!(
            o,
            "{{\"module\":{},\"shard\":{},\"replica\":{},\"behind\":{},\"degraded\":{},\
             \"down\":{},\"live\":{},\"resident\":{},\"wal_records\":{}}}",
            m.module,
            m.shard,
            m.replica,
            m.behind,
            m.degraded,
            m.down,
            m.store.live(),
            m.store.resident(),
            m.store.wal_records,
        );
    }
    o.push_str("]}");
    o
}

#[derive(Debug, Default)]
struct TelemetryInner {
    records: Vec<QueryRecord>,
    store_accounts: Vec<StoreAccount>,
    shard_accounts: Vec<ShardAccount>,
    violations: Vec<String>,
    next_seq: u64,
}

/// A query-scoped telemetry sink. Cheap to clone (`Arc`-shared), so one
/// handle can be attached to many devices and drained once; interior
/// mutability lets `&self` query paths record into it.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Arc<Mutex<TelemetryInner>>,
}

impl Telemetry {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Verifies and stores one record, assigning its sequence number.
    ///
    /// # Panics
    /// In debug builds, panics if the record violates an accounting
    /// invariant (release builds retain the violation — see
    /// [`Telemetry::violations`]).
    pub fn record(&self, mut r: QueryRecord) {
        let verdict = verify_record(&r);
        let mut inner = self.inner.lock().expect("telemetry lock");
        r.seq = inner.next_seq;
        inner.next_seq += 1;
        if let Err(e) = verdict {
            let msg = format!("record {} ({}): {e}", r.seq, r.label);
            debug_assert!(false, "telemetry invariant violated: {msg}");
            inner.violations.push(msg);
        }
        inner.records.push(r);
    }

    /// Verifies the batch-vs-serial counter identity and stores the batch
    /// record. `queries` are the per-query records the batch covers (they
    /// are *not* stored here — record them individually).
    ///
    /// # Panics
    /// In debug builds, panics on a violated invariant.
    pub fn record_batch(&self, batch: QueryRecord, queries: &[QueryRecord]) {
        if let Err(e) = verify_batch(&batch, queries) {
            let msg = format!("batch ({}): {e}", batch.label);
            debug_assert!(false, "telemetry invariant violated: {msg}");
            self.inner
                .lock()
                .expect("telemetry lock")
                .violations
                .push(msg);
        }
        self.record(batch);
    }

    /// Verifies and stores one mutable-store account, assigning its
    /// sequence number from the same counter as query records.
    ///
    /// # Panics
    /// In debug builds, panics if the account violates a lifecycle
    /// invariant (release builds retain the violation — see
    /// [`Telemetry::violations`]).
    pub fn record_store(&self, mut a: StoreAccount) {
        let verdict = verify_store_account(&a);
        let mut inner = self.inner.lock().expect("telemetry lock");
        a.seq = inner.next_seq;
        inner.next_seq += 1;
        if let Err(e) = verdict {
            let msg = format!("store account {} ({}): {e}", a.seq, a.label);
            debug_assert!(false, "telemetry invariant violated: {msg}");
            inner.violations.push(msg);
        }
        inner.store_accounts.push(a);
    }

    /// Verifies and stores one sharded-store account, assigning its
    /// sequence number from the same counter as query records.
    ///
    /// # Panics
    /// In debug builds, panics if the account violates a placement or
    /// replication invariant (release builds retain the violation — see
    /// [`Telemetry::violations`]).
    pub fn record_shard(&self, mut a: ShardAccount) {
        let verdict = verify_shard_account(&a);
        let mut inner = self.inner.lock().expect("telemetry lock");
        a.seq = inner.next_seq;
        inner.next_seq += 1;
        if let Err(e) = verdict {
            let msg = format!("shard account {} ({}): {e}", a.seq, a.label);
            debug_assert!(false, "telemetry invariant violated: {msg}");
            inner.violations.push(msg);
        }
        inner.shard_accounts.push(a);
    }

    /// Snapshot of the collected sharded-store accounts.
    pub fn shard_accounts(&self) -> Vec<ShardAccount> {
        self.inner
            .lock()
            .expect("telemetry lock")
            .shard_accounts
            .clone()
    }

    /// Snapshot of the collected store accounts.
    pub fn store_accounts(&self) -> Vec<StoreAccount> {
        self.inner
            .lock()
            .expect("telemetry lock")
            .store_accounts
            .clone()
    }

    /// Number of records collected.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("telemetry lock").records.len()
    }

    /// Whether no records have been collected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the collected records.
    pub fn records(&self) -> Vec<QueryRecord> {
        self.inner.lock().expect("telemetry lock").records.clone()
    }

    /// Invariant violations retained in release builds (debug builds
    /// panic at the collection site instead).
    pub fn violations(&self) -> Vec<String> {
        self.inner
            .lock()
            .expect("telemetry lock")
            .violations
            .clone()
    }

    /// Renders every record as one JSON object per line.
    pub fn to_jsonl(&self) -> String {
        let inner = self.inner.lock().expect("telemetry lock");
        let mut out = String::new();
        for r in &inner.records {
            out.push_str(&record_json(r));
            out.push('\n');
        }
        for a in &inner.store_accounts {
            out.push_str(&store_account_json(a));
            out.push('\n');
        }
        for a in &inner.shard_accounts {
            out.push_str(&shard_account_json(a));
            out.push('\n');
        }
        out
    }

    /// Writes the JSONL export to a file.
    pub fn write_jsonl(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_jsonl())
    }

    /// Aggregated fault counters over every non-batch record (batch
    /// records re-accumulate their member queries' faults, so including
    /// them would double-count). The result still satisfies
    /// [`FaultRecord::check_closure`].
    pub fn fault_totals(&self) -> FaultRecord {
        let inner = self.inner.lock().expect("telemetry lock");
        let mut total = FaultRecord::default();
        for r in &inner.records {
            if r.kind != RecordKind::Batch {
                total.accumulate(&r.faults);
            }
        }
        total
    }

    /// Summary-table rows (one per record) for the bench binaries:
    /// `[seq, kind, label, batch, vaults, seconds, bound, cycles, bytes,
    /// energy mJ, coverage]`.
    pub fn summary_rows(&self) -> Vec<Vec<String>> {
        let inner = self.inner.lock().expect("telemetry lock");
        inner
            .records
            .iter()
            .map(|r| {
                vec![
                    r.seq.to_string(),
                    r.kind.name().into(),
                    r.label.clone(),
                    r.batch.to_string(),
                    r.vaults.len().to_string(),
                    format!("{:.3e}", r.seconds),
                    if r.compute_bound { "compute" } else { "memory" }.into(),
                    r.total_cycles.to_string(),
                    r.total_bytes.to_string(),
                    format!("{:.3e}", r.energy_mj),
                    format!("{:.3}", r.coverage()),
                ]
            })
            .collect()
    }

    /// Column headers matching [`Telemetry::summary_rows`].
    pub fn summary_headers() -> &'static [&'static str] {
        &[
            "seq",
            "kind",
            "label",
            "batch",
            "vaults",
            "seconds",
            "bound",
            "cycles",
            "bytes",
            "energy mJ",
            "coverage",
        ]
    }
}

fn json_escape(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// `f64` as a JSON number: Rust's shortest-roundtrip formatting, with
/// non-finite values (never produced by a verified record) mapped to
/// `null` so the output stays parseable.
fn json_f64(x: f64, out: &mut String) {
    if x.is_finite() {
        let _ = write!(out, "{x}");
    } else {
        out.push_str("null");
    }
}

/// Serializes one record as a single-line JSON object.
pub fn record_json(r: &QueryRecord) -> String {
    let mut o = String::with_capacity(256 + 200 * r.vaults.len());
    o.push('{');
    let _ = write!(o, "\"seq\":{},", r.seq);
    o.push_str("\"kind\":");
    json_escape(r.kind.name(), &mut o);
    o.push_str(",\"label\":");
    json_escape(&r.label, &mut o);
    let _ = write!(
        o,
        ",\"batch\":{},\"k\":{},\"pus_per_vault\":{},",
        r.batch, r.k, r.pus_per_vault
    );
    o.push_str("\"seconds\":");
    json_f64(r.seconds, &mut o);
    let _ = write!(
        o,
        ",\"compute_bound\":{},\"total_cycles\":{},\"total_bytes\":{},",
        r.compute_bound, r.total_cycles, r.total_bytes
    );
    o.push_str("\"energy_mj\":");
    json_f64(r.energy_mj, &mut o);
    o.push_str(",\"phases\":{\"stage_seconds\":");
    json_f64(r.phases.stage_seconds, &mut o);
    o.push_str(",\"simulate_seconds\":");
    json_f64(r.phases.simulate_seconds, &mut o);
    o.push_str(",\"link_seconds\":");
    json_f64(r.phases.link_seconds, &mut o);
    o.push_str(",\"merge_seconds\":");
    json_f64(r.phases.merge_seconds, &mut o);
    o.push_str(",\"fault_seconds\":");
    json_f64(r.phases.fault_seconds, &mut o);
    o.push_str("},\"coverage\":");
    json_f64(r.coverage(), &mut o);
    if !r.faults.is_trivial() {
        let fr = &r.faults;
        let _ = write!(
            o,
            ",\"faults\":{{\"bit_flip_events\":{},\"ecc_corrected\":{},\
             \"ecc_uncorrectable\":{},\"crc_corruptions\":{},\"link_retries_ok\":{},\
             \"link_failed_attempts\":{},\"link_failures\":{},\"vault_outages\":{},\
             \"module_outages\":{},\"stragglers\":{},\"failed_over\":{},\
             \"lost_units\":{:?},\"covered_vectors\":{},\"total_vectors\":{},",
            fr.bit_flip_events,
            fr.ecc_corrected,
            fr.ecc_uncorrectable,
            fr.crc_corruptions,
            fr.link_retries_ok,
            fr.link_failed_attempts,
            fr.link_failures,
            fr.vault_outages,
            fr.module_outages,
            fr.stragglers,
            fr.failed_over,
            fr.lost_units,
            fr.covered_vectors,
            fr.total_vectors,
        );
        o.push_str("\"recovery_seconds\":");
        json_f64(fr.recovery_seconds, &mut o);
        o.push('}');
    }
    o.push_str(",\"vaults\":[");
    for (i, v) in r.vaults.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        let _ = write!(
            o,
            "{{\"vault\":{},\"cycles\":{},\"bytes\":{},\"instructions\":{},\
             \"pqueue_ops\":{},\"stack_ops\":{},\"scratchpad_accesses\":{},",
            v.vault,
            v.cycles,
            v.bytes,
            v.instructions,
            v.pqueue_ops,
            v.stack_ops,
            v.scratchpad_accesses
        );
        o.push_str("\"mem_seconds\":");
        json_f64(v.mem_seconds, &mut o);
        o.push_str(",\"comp_seconds\":");
        json_f64(v.comp_seconds, &mut o);
        let _ = write!(o, ",\"compute_bound\":{},", v.compute_bound);
        o.push_str("\"energy_mj\":");
        json_f64(v.energy_mj, &mut o);
        o.push('}');
    }
    o.push_str("]}");
    o
}

#[cfg(test)]
mod tests {
    use super::*;

    fn account(vault: usize, bytes: u64, cycles: u64, bw: f64, freq: f64) -> VaultAccount {
        VaultAccount::from_stats(
            vault,
            &RunStats {
                cycles,
                instructions: cycles,
                dram: crate::sim::memif::DramStats {
                    bytes_read: bytes,
                    ..Default::default()
                },
                ..Default::default()
            },
            bw,
            freq,
            1,
        )
    }

    fn valid_record() -> QueryRecord {
        let bw = 10.0e9;
        let freq = 1.0e9;
        let mut vaults = vec![
            account(0, 80_000, 800, bw, freq),
            account(1, 1_000, 1_000, bw, freq),
        ];
        let (argmax, critical, cb) = critical_path(&vaults).unwrap();
        assert_eq!(argmax, 0, "vault 0 sets the path in this fixture");
        let window = critical + 2e-7 + 3e-8;
        for v in &mut vaults {
            v.energy_mj = 1.5 * window;
        }
        QueryRecord {
            seq: 0,
            kind: RecordKind::Query,
            label: "test".into(),
            batch: 1,
            k: 4,
            pus_per_vault: 1,
            seconds: window,
            compute_bound: cb,
            total_cycles: vaults.iter().map(|v| v.cycles).sum(),
            total_bytes: vaults.iter().map(|v| v.bytes).sum(),
            energy_mj: vaults.iter().map(|v| v.energy_mj).sum(),
            phases: Phases {
                stage_seconds: 1e-6,
                simulate_seconds: critical,
                link_seconds: 2e-7,
                merge_seconds: 3e-8,
                fault_seconds: 0.0,
            },
            vaults,
            faults: FaultRecord::default(),
        }
    }

    #[test]
    fn valid_record_passes() {
        assert_eq!(verify_record(&valid_record()), Ok(()));
    }

    #[test]
    fn corrupted_bytes_sum_fires() {
        let mut r = valid_record();
        r.total_bytes += 1;
        assert!(matches!(
            verify_record(&r),
            Err(AccountingError::BytesMismatch { .. })
        ));
    }

    #[test]
    fn corrupted_cycles_sum_fires() {
        let mut r = valid_record();
        r.vaults[1].cycles += 7;
        assert!(matches!(
            verify_record(&r),
            Err(AccountingError::CyclesMismatch { .. })
        ));
    }

    #[test]
    fn corrupted_classification_fires() {
        // The fixture's critical vault (0) is memory-bound; claiming the
        // record is compute-bound is exactly the PR 2 / PR 3 bug shape.
        let mut r = valid_record();
        r.compute_bound = true;
        assert!(matches!(
            verify_record(&r),
            Err(AccountingError::ClassificationMismatch { vault: 0, .. })
        ));
    }

    #[test]
    fn negative_energy_fires() {
        let mut r = valid_record();
        r.vaults[0].energy_mj = -1.0;
        r.energy_mj = r.vaults.iter().map(|v| v.energy_mj).sum();
        assert!(matches!(
            verify_record(&r),
            Err(AccountingError::BadEnergy { .. })
        ));
    }

    #[test]
    fn non_finite_energy_fires() {
        let mut r = valid_record();
        r.energy_mj = f64::NAN;
        assert!(matches!(
            verify_record(&r),
            Err(AccountingError::BadEnergy { .. })
        ));
    }

    #[test]
    fn seconds_drift_fires() {
        let mut r = valid_record();
        r.seconds *= 1.0 + 1e-6;
        assert!(matches!(
            verify_record(&r),
            Err(AccountingError::SecondsMismatch { .. })
        ));
    }

    #[test]
    fn simulate_span_drift_fires() {
        let mut r = valid_record();
        r.phases.simulate_seconds *= 0.5;
        assert!(matches!(
            verify_record(&r),
            Err(AccountingError::SimulateMismatch { .. })
        ));
    }

    #[test]
    fn argmax_ties_resolve_to_first_vault() {
        let bw = 10.0e9;
        let freq = 1.0e9;
        // Vault 0 memory-bound, vault 1 compute-bound, identical critical
        // times (1e-5 s each).
        let vaults = vec![account(0, 100_000, 100, bw, freq), {
            let mut v = account(1, 1_000, 10_000, bw, freq);
            assert!(v.compute_bound);
            v.vault = 1;
            v
        }];
        assert_eq!(
            vaults[0].critical_seconds(),
            vaults[1].critical_seconds(),
            "fixture must tie"
        );
        let (argmax, _, cb) = critical_path(&vaults).unwrap();
        assert_eq!(argmax, 0);
        assert!(!cb, "first argmax (memory-bound) wins the tie");
    }

    #[test]
    fn batch_counter_mismatch_fires() {
        let q1 = valid_record();
        let q2 = valid_record();
        let mut batch = valid_record();
        batch.kind = RecordKind::Batch;
        batch.batch = 2;
        // Correct totals pass…
        batch.total_cycles = q1.total_cycles + q2.total_cycles;
        batch.total_bytes = q1.total_bytes + q2.total_bytes;
        assert_eq!(verify_batch(&batch, &[q1.clone(), q2.clone()]), Ok(()));
        // …a dropped vault's worth of bytes fires.
        batch.total_bytes -= q2.vaults[0].bytes;
        assert!(matches!(
            verify_batch(&batch, &[q1, q2]),
            Err(AccountingError::BatchCounterMismatch {
                counter: "bytes",
                ..
            })
        ));
    }

    #[test]
    #[should_panic(expected = "telemetry invariant violated")]
    #[cfg(debug_assertions)]
    fn sink_panics_on_violation_in_debug() {
        let t = Telemetry::new();
        let mut r = valid_record();
        r.total_bytes += 1;
        t.record(r);
    }

    #[test]
    fn sink_collects_and_exports() {
        let t = Telemetry::new();
        t.record(valid_record());
        t.record(valid_record());
        assert_eq!(t.len(), 2);
        assert!(t.violations().is_empty());
        let jsonl = t.to_jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        for line in jsonl.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'));
            assert!(line.contains("\"kind\":\"query\""));
            assert!(line.contains("\"total_bytes\":81000"));
        }
        // Sequence numbers are assigned at collection.
        let recs = t.records();
        assert_eq!(recs[0].seq, 0);
        assert_eq!(recs[1].seq, 1);
        let rows = t.summary_rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].len(), Telemetry::summary_headers().len());
    }

    #[test]
    fn fault_leak_fires() {
        let mut r = valid_record();
        // An injected flip with no corrected/uncorrectable trace.
        r.faults.bit_flip_events = 1;
        assert!(matches!(
            verify_record(&r),
            Err(AccountingError::FaultMismatch { .. })
        ));
    }

    #[test]
    fn consistent_fault_record_passes_and_exports() {
        let mut r = valid_record();
        r.faults.bit_flip_events = 2;
        r.faults.ecc_corrected = 1;
        r.faults.ecc_uncorrectable = 1;
        r.faults.lost_ecc = 1;
        r.faults.lost_units = vec![1];
        r.faults.covered_vectors = 80;
        r.faults.total_vectors = 100;
        assert_eq!(verify_record(&r), Ok(()));
        assert!((r.coverage() - 0.8).abs() < 1e-12);
        let json = record_json(&r);
        assert!(json.contains("\"coverage\":0.8"));
        assert!(json.contains("\"ecc_corrected\":1"));
        assert!(json.contains("\"lost_units\":[1]"));
    }

    #[test]
    fn recovery_time_drift_fires() {
        let mut r = valid_record();
        r.faults.crc_corruptions = 1;
        r.faults.link_retries_ok = 1;
        r.faults.recovery_seconds = 1e-6;
        // Phase span left at zero: the retry time vanished from timing.
        assert!(matches!(
            verify_record(&r),
            Err(AccountingError::FaultMismatch { .. })
        ));
        r.phases.fault_seconds = 1e-6;
        r.seconds += 1e-6;
        assert_eq!(verify_record(&r), Ok(()));
    }

    #[test]
    fn fault_totals_skip_batch_records() {
        let t = Telemetry::new();
        let mut q = valid_record();
        q.faults.stragglers = 1;
        q.faults.covered_vectors = 10;
        q.faults.total_vectors = 10;
        t.record(q.clone());
        let mut b = q;
        b.kind = RecordKind::Batch;
        t.record(b);
        assert_eq!(t.fault_totals().stragglers, 1);
    }

    fn valid_store_account() -> StoreAccount {
        StoreAccount {
            seq: 0,
            label: "seal".into(),
            vec_bytes: 32,
            memtable_entries: 3,
            index_live: 3 + (10 - 2) + (4 - 1),
            index_dead: 2,
            wal_records: 20,
            wal_bytes: 2_000,
            payload_bytes: 1_000,
            staged_bytes: (10 + 4 + 6) * 32,
            seals: 2,
            compactions: 1,
            fanout: 4,
            segments: vec![
                SegmentAccount {
                    id: 0,
                    level: 0,
                    entries: 10,
                    stale: 2,
                    bytes: 10 * 32,
                },
                SegmentAccount {
                    id: 1,
                    level: 1,
                    entries: 4,
                    stale: 1,
                    bytes: 4 * 32,
                },
            ],
        }
    }

    #[test]
    fn valid_store_account_passes_and_derives() {
        let a = valid_store_account();
        assert_eq!(verify_store_account(&a), Ok(()));
        assert_eq!(a.resident(), 14);
        assert_eq!(a.live(), 14 - 3 + 3);
        assert!((a.dead_ratio() - 3.0 / 14.0).abs() < 1e-12);
        assert!((a.write_amp() - (2_000.0 + 640.0) / 1_000.0).abs() < 1e-12);
        assert_eq!(a.compaction_debt(), 0);
        let json = store_account_json(&a);
        assert!(json.contains("\"kind\":\"store\""));
        assert!(json.contains("\"compactions\":1"));
        assert!(json.contains("\"stale\":2"));
    }

    #[test]
    fn store_visibility_closure_fires() {
        // The index claims one more live entry than the segments +
        // memtable can account for: stale-counter or index drift.
        let mut a = valid_store_account();
        a.index_live += 1;
        assert!(matches!(
            verify_store_account(&a),
            Err(AccountingError::StoreMismatch { .. })
        ));
    }

    #[test]
    fn store_stale_overflow_fires() {
        let mut a = valid_store_account();
        a.segments[0].stale = a.segments[0].entries + 1;
        assert!(matches!(
            verify_store_account(&a),
            Err(AccountingError::StoreMismatch { .. })
        ));
    }

    #[test]
    fn store_wal_below_payload_fires() {
        let mut a = valid_store_account();
        a.wal_bytes = a.payload_bytes - 1;
        assert!(matches!(
            verify_store_account(&a),
            Err(AccountingError::StoreMismatch { .. })
        ));
    }

    #[test]
    fn store_compaction_debt_counts_overflow() {
        let mut a = valid_store_account();
        a.fanout = 1;
        // Two segments on distinct levels: each level holds exactly one,
        // so no debt; move both onto level 0 and one merge is owed.
        assert_eq!(a.compaction_debt(), 0);
        a.segments[1].level = 0;
        assert_eq!(a.compaction_debt(), 1);
    }

    #[test]
    fn sink_collects_store_accounts() {
        let t = Telemetry::new();
        t.record(valid_record());
        t.record_store(valid_store_account());
        assert_eq!(t.store_accounts().len(), 1);
        assert_eq!(t.store_accounts()[0].seq, 1, "shared seq counter");
        assert!(t.violations().is_empty());
        let jsonl = t.to_jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        assert!(jsonl.lines().nth(1).unwrap().contains("\"kind\":\"store\""));
    }

    #[test]
    #[should_panic(expected = "telemetry invariant violated")]
    #[cfg(debug_assertions)]
    fn store_sink_panics_on_violation_in_debug() {
        let t = Telemetry::new();
        let mut a = valid_store_account();
        a.index_live += 1;
        t.record_store(a);
    }

    #[test]
    fn json_escapes_label() {
        let mut r = valid_record();
        r.label = "a\"b\\c\nd".into();
        let json = record_json(&r);
        assert!(json.contains(r#""label":"a\"b\\c\nd""#));
    }
}
