//! # ssam-core — the SSAM accelerator
//!
//! The paper's primary contribution (Lee et al., IPDPS 2018, Section III):
//! a near-data similarity-search accelerator instantiated on the logic
//! layer of a Hybrid Memory Cube. This crate implements the full stack:
//!
//! * [`isa`] — the processing-unit instruction set of Table II: a fully
//!   integrated scalar/vector ISA extended with priority-queue
//!   instructions (`PQUEUE_INSERT` / `PQUEUE_LOAD` / `PQUEUE_RESET`),
//!   the fused xor-popcount `FXP` / `VFXP` for Hamming distance, stack
//!   instructions for index backtracking, and the `MEM_FETCH` prefetch.
//! * [`asm`] — a two-pass assembler from textual assembly (labels,
//!   comments, immediates) to instruction words, plus a disassembler.
//! * [`sim`] — the processing-unit microarchitecture simulator of
//!   Fig. 5d: in-order scalar+vector pipeline with chaining, the 16-entry
//!   shift-register hardware priority queue, the hardware stack unit, the
//!   32 KB scratchpad, and a streaming DRAM interface with bandwidth
//!   accounting (roofline-style stall model).
//! * [`kernels`] — hand-written kNN kernels in SSAM assembly, one per
//!   distance metric and vector length, including the software-priority-
//!   queue ablation variant of Section V-B.
//! * [`device`] — the module-level engine: dataset sharding across HMC
//!   vaults, processing-unit replication to saturate vault bandwidth,
//!   batch query execution with host-side global top-k reduction, and the
//!   Fig. 4 SSAM-enabled memory-region API (`nmalloc` / `nwrite_query` /
//!   `nexec` / `nread_result`).
//! * [`energy`] / [`area`] — the per-module power and area models
//!   calibrated to the paper's post-place-and-route Tables III and IV.
//! * [`analysis`] — `ssam-lint`: sound static verification of assembled
//!   kernels (control flow, register def-use, stack depth, priority-queue
//!   protocol, scratchpad bounds) with machine-readable diagnostics.
//! * [`telemetry`] — query-scoped observability: per-vault accounting
//!   records with collection-time invariant checks (byte/cycle sums,
//!   critical-path classification, energy sanity), span-style phase
//!   timings, and JSONL export for the bench binaries' `--telemetry`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod area;
pub mod asm;
pub mod device;
pub mod energy;
pub mod isa;
pub mod kernels;
pub mod sim;
pub mod telemetry;

pub use device::{SsamConfig, SsamDevice};
pub use isa::inst::Instruction;
pub use sim::pu::ProcessingUnit;
