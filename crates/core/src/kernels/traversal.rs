//! On-accelerator kd-tree traversal using the hardware stack unit.
//!
//! Section III-C motivates the stack unit with hierarchical index
//! traversals: "The stack unit is a natural choice to facilitate
//! backtracking when traversing hierarchical index structures." This
//! module provides the full path: a host-side builder that lays a
//! median-split kd-tree into the scratchpad (the paper's "top half of the
//! hierarchy resides in scratchpad") with bucket-contiguous vectors in
//! DRAM, and a kernel that walks the tree depth-first with `PUSH`/`POP`
//! backtracking, descending the near side first and scanning up to a
//! leaf-budget's worth of buckets — the same budget knob the software
//! indexes expose.
//!
//! ## Scratchpad node layout (4 words each)
//!
//! ```text
//! interior: [ dim | split (Q16.16) | left addr | right addr ]
//! leaf:     [ -1  | count          | dram addr | first id   ]
//! ```
//!
//! ## Driver contract (in addition to the linear-kernel contract)
//!
//! | where  | meaning |
//! |--------|---------|
//! | `s20`  | leaf budget (buckets to scan before halting) |
//! | `s21`  | scratchpad byte address of the root node |
//! | spad `TREE_ADDR..` | node records |

use ssam_knn::fixed::Fix32;
use ssam_knn::VectorStore;

use super::{Kernel, KernelLayout};

/// Scratchpad byte address where the tree image begins. The query region
/// occupies `0..TREE_ADDR` (2048 words — traversal kernels target the
/// low-to-mid dimensionalities whose trees fit on-scratchpad), leaving
/// 24 KB for node records and centroid blocks.
pub const TREE_ADDR: u32 = 8 * 1024;

/// A kd-tree staged for the traversal kernel.
#[derive(Debug, Clone)]
pub struct TreeImage {
    /// Node records, to be written at [`TREE_ADDR`].
    pub spad_words: Vec<i32>,
    /// Scratchpad byte address of the root node.
    pub root_addr: u32,
    /// Bucket-contiguous Q16.16 dataset image for DRAM (vectors padded to
    /// a VL multiple).
    pub dram_words: Vec<i32>,
    /// Number of leaves.
    pub leaves: usize,
    /// Words per padded vector.
    pub vec_words: usize,
}

/// Builds a median-split kd-tree over `store` and lays it out for the
/// kernel: interior nodes split the widest-spread dimension at the
/// median; leaves hold at most `leaf_size` vectors stored contiguously in
/// DRAM so each bucket scan is one stream.
///
/// # Panics
/// Panics if the store is empty or the tree image exceeds the scratchpad
/// region (use small datasets / larger leaves; this kernel demonstrates
/// the in-scratchpad top of the hierarchy).
pub fn build_tree_image(store: &VectorStore, leaf_size: usize, vl: usize) -> TreeImage {
    assert!(!store.is_empty(), "cannot build a tree over an empty store");
    let leaf_size = leaf_size.max(1);
    let vec_words = store.dims().div_ceil(vl) * vl;
    assert!(
        vec_words * 4 <= TREE_ADDR as usize,
        "query of {vec_words} words would overlap the tree region at {TREE_ADDR:#x}"
    );

    struct Builder<'a> {
        store: &'a VectorStore,
        leaf_size: usize,
        vec_words: usize,
        nodes: Vec<[i32; 4]>,
        dram_words: Vec<i32>,
        leaves: usize,
    }

    impl Builder<'_> {
        fn build(&mut self, mut ids: Vec<u32>) -> usize {
            if ids.len() <= self.leaf_size {
                // Emit bucket data contiguously; record its DRAM address.
                let dram_addr = crate::isa::DRAM_BASE as i64 + (self.dram_words.len() as i64) * 4;
                let first_local = (self.dram_words.len() / self.vec_words) as i32;
                for &id in &ids {
                    let v = self.store.get(id);
                    for &x in v {
                        self.dram_words.push(Fix32::from_f32(x).0);
                    }
                    for _ in v.len()..self.vec_words {
                        self.dram_words.push(0);
                    }
                }
                self.leaves += 1;
                self.nodes
                    .push([-1, ids.len() as i32, dram_addr as i32, first_local]);
                return self.nodes.len() - 1;
            }
            // Widest-spread dimension, split at median.
            let dims = self.store.dims();
            let (mut best_dim, mut best_spread) = (0usize, -1.0f32);
            for d in 0..dims {
                let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
                for &id in &ids {
                    let x = self.store.get(id)[d];
                    lo = lo.min(x);
                    hi = hi.max(x);
                }
                if hi - lo > best_spread {
                    best_spread = hi - lo;
                    best_dim = d;
                }
            }
            let mid = ids.len() / 2;
            ids.sort_unstable_by(|&a, &b| {
                self.store.get(a)[best_dim].total_cmp(&self.store.get(b)[best_dim])
            });
            let split = self.store.get(ids[mid])[best_dim];
            let right_ids = ids.split_off(mid);
            let left = self.build(ids);
            let right = self.build(right_ids);
            self.nodes.push([
                best_dim as i32,
                Fix32::from_f32(split).0,
                TREE_ADDR as i32 + 16 * left as i32,
                TREE_ADDR as i32 + 16 * right as i32,
            ]);
            self.nodes.len() - 1
        }
    }

    let mut b = Builder {
        store,
        leaf_size,
        vec_words,
        nodes: Vec::new(),
        dram_words: Vec::new(),
        leaves: 0,
    };
    let root = b.build((0..store.len() as u32).collect());

    let spad_words: Vec<i32> = b.nodes.iter().flatten().copied().collect();
    assert!(
        TREE_ADDR as usize + spad_words.len() * 4 <= crate::isa::SCRATCHPAD_BYTES,
        "tree image ({} nodes) exceeds the scratchpad region",
        b.nodes.len()
    );
    // Leaf records hold local first-vector indices; convert to global ids
    // (ids are bucket-local positions in the reordered DRAM image).
    TreeImage {
        spad_words,
        root_addr: TREE_ADDR + 16 * root as u32,
        dram_words: b.dram_words,
        leaves: b.leaves,
        vec_words,
    }
}

/// Mapping from the kernel's DRAM-position ids back to original store ids.
///
/// The tree image reorders vectors bucket-by-bucket; position `p` in the
/// image corresponds to original id `order[p]`.
pub fn image_id_order(store: &VectorStore, leaf_size: usize) -> Vec<u32> {
    // Re-run the same deterministic partition to recover the order.
    fn go(store: &VectorStore, leaf_size: usize, mut ids: Vec<u32>, out: &mut Vec<u32>) {
        if ids.len() <= leaf_size {
            out.extend_from_slice(&ids);
            return;
        }
        let dims = store.dims();
        let (mut best_dim, mut best_spread) = (0usize, -1.0f32);
        for d in 0..dims {
            let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
            for &id in &ids {
                let x = store.get(id)[d];
                lo = lo.min(x);
                hi = hi.max(x);
            }
            if hi - lo > best_spread {
                best_spread = hi - lo;
                best_dim = d;
            }
        }
        let mid = ids.len() / 2;
        ids.sort_unstable_by(|&a, &b| store.get(a)[best_dim].total_cmp(&store.get(b)[best_dim]));
        let right = ids.split_off(mid);
        go(store, leaf_size, ids, out);
        go(store, leaf_size, right, out);
    }
    let mut out = Vec::with_capacity(store.len());
    go(
        store,
        leaf_size.max(1),
        (0..store.len() as u32).collect(),
        &mut out,
    );
    out
}

/// Generates the kd-tree traversal kernel (Euclidean buckets).
///
/// The traversal pushes the far child, then the near child, so `POP`
/// yields near-first depth-first order; a leaf budget in `s20` bounds the
/// buckets scanned; a sentinel under the root makes stack exhaustion
/// observable.
pub fn kdtree_euclidean(dims: usize, vl: usize, max_bucket: usize) -> Kernel {
    let dp = dims.div_ceil(vl) * vl;
    let chunks = dp / vl;
    let vlb = vl * 4;
    let max_bucket_bytes = max_bucket.max(1) * dp * 4;

    let mut src = format!(
        "; kd-tree traversal with hardware-stack backtracking\n\
         ; driver contract: s20 = leaf budget, s21 = root node addr,\n\
         ;                  query at spad 0, tree at spad {TREE_ADDR}\n\
         start:\n\
         \x20   pqueue_reset\n\
         \x20   addi s6, s0, {chunks}\n\
         \x20   push s0                 ; sentinel (addr 0 terminates)\n\
         \x20   push s21                ; root\n\
         walk:\n\
         \x20   pop  s22\n\
         \x20   be   s22, s0, done      ; stack exhausted\n\
         \x20   load s23, s22, 0        ; tag / split dimension\n\
         \x20   addi s24, s0, -1\n\
         \x20   be   s23, s24, leaf\n\
         \x20   sl   s25, s23, 2\n\
         \x20   load s25, s25, 0        ; q[dim] (query at spad 0)\n\
         \x20   load s26, s22, 4        ; split value\n\
         \x20   load s27, s22, 8        ; left child\n\
         \x20   load s28, s22, 12       ; right child\n\
         \x20   blt  s25, s26, goleft\n\
         \x20   push s27                ; far = left\n\
         \x20   push s28                ; near = right (popped first)\n\
         \x20   j    walk\n\
         goleft:\n\
         \x20   push s28                ; far = right\n\
         \x20   push s27                ; near = left\n\
         \x20   j    walk\n\
         leaf:\n\
         \x20   be   s20, s0, done      ; leaf budget exhausted\n\
         \x20   subi s20, s20, 1\n\
         \x20   load s29, s22, 4        ; bucket count\n\
         \x20   load s1,  s22, 8        ; bucket DRAM address\n\
         \x20   load s3,  s22, 12       ; first id\n\
         \x20   sl   s29, s29, 16       ; count → Q16.16 integer\n\
         \x20   addi s30, s0, {vec_bytes}\n\
         \x20   mult s29, s29, s30      ; count * vec_bytes\n\
         \x20   add  s2, s1, s29\n\
         \x20   mem_fetch s1, {max_bucket_bytes}\n\
         scan:\n\
         \x20   be   s1, s2, walk       ; bucket done, backtrack\n\
         \x20   svmove v2, s0, -1\n\
         \x20   addi s4, s0, 0\n\
         \x20   addi s5, s0, 0\n\
         inner:\n\
         \x20   vload v0, s1, 0\n\
         \x20   vload v1, s4, 0\n\
         \x20   vsub  v0, v0, v1\n\
         \x20   vmult v0, v0, v0\n\
         \x20   vadd  v2, v2, v0\n\
         \x20   addi  s1, s1, {vlb}\n\
         \x20   addi  s4, s4, {vlb}\n\
         \x20   addi  s5, s5, 1\n\
         \x20   blt   s5, s6, inner\n",
        vec_bytes = dp * 4,
    );
    src.push_str(&super::linear::reduce_lanes("v2", vl));
    src.push_str(
        "    pqueue_insert s3, s7\n\
         \x20   addi s3, s3, 1\n\
         \x20   j    scan\n\
         done:\n\
         \x20   halt\n",
    );
    Kernel::build(
        format!("kdtree_euclidean_vl{vl}"),
        src,
        KernelLayout {
            vec_words: dp,
            vl,
            query_addr: 0,
            swqueue_addr: 0,
            driver_sregs: super::sreg_mask(&[20, 21]),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::RngExt;
    use rand::SeedableRng;

    #[test]
    fn kdtree_kernels_verify_error_free() {
        // Data-dependent push loops legitimately warn (STK004); the
        // traversal budget bounds them at runtime. Errors are bugs.
        for &vl in &crate::isa::VECTOR_LENGTHS {
            for dims in [16, 100] {
                let k = kdtree_euclidean(dims, vl, 64);
                let errors: Vec<_> = crate::analysis::verify(&k)
                    .into_iter()
                    .filter(|d| d.is_error())
                    .collect();
                assert!(errors.is_empty(), "{}: {errors:?}", k.name);
            }
        }
    }

    fn random_store(n: usize, dims: usize, seed: u64) -> VectorStore {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut s = VectorStore::with_capacity(dims, n);
        for _ in 0..n {
            let v: Vec<f32> = (0..dims).map(|_| rng.random_range(-1.0..1.0)).collect();
            s.push(&v);
        }
        s
    }

    #[test]
    fn tree_image_covers_every_vector_once() {
        let s = random_store(100, 4, 1);
        let img = build_tree_image(&s, 8, 4);
        assert_eq!(img.dram_words.len(), 100 * img.vec_words);
        let order = image_id_order(&s, 8);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 100);
    }

    #[test]
    fn image_order_matches_dram_contents() {
        let s = random_store(40, 3, 2);
        let img = build_tree_image(&s, 4, 4);
        let order = image_id_order(&s, 4);
        for (pos, &orig) in order.iter().enumerate() {
            let words = &img.dram_words[pos * img.vec_words..pos * img.vec_words + 3];
            let expect: Vec<i32> = s.get(orig).iter().map(|&x| Fix32::from_f32(x).0).collect();
            assert_eq!(words, expect.as_slice(), "position {pos}");
        }
    }

    #[test]
    fn kernel_assembles() {
        for vl in [2, 4, 8, 16] {
            let k = kdtree_euclidean(10, vl, 16);
            assert!(!k.program.is_empty());
            assert!(k.source.contains("push"));
            assert!(k.source.contains("pop"));
        }
    }

    #[test]
    fn leaf_count_matches_partition() {
        let s = random_store(64, 2, 3);
        let img = build_tree_image(&s, 8, 2);
        // 64 points, median split, leaves of ≤8: exactly 8 leaves.
        assert_eq!(img.leaves, 8);
    }

    #[test]
    fn single_leaf_tree() {
        let s = random_store(5, 2, 4);
        let img = build_tree_image(&s, 8, 2);
        assert_eq!(img.leaves, 1);
        assert_eq!(img.root_addr, TREE_ADDR);
    }

    #[test]
    fn optimizer_shrinks_kdtree_kernels_without_new_diagnostics() {
        for &vl in &crate::isa::VECTOR_LENGTHS {
            let k = kdtree_euclidean(100, vl, 64);
            assert!(
                k.opt.instructions_after < k.opt.instructions_before,
                "{}: optimizer found nothing to remove",
                k.name
            );
            let errors: Vec<_> = crate::analysis::verify(&k)
                .into_iter()
                .filter(|d| d.is_error())
                .collect();
            assert!(errors.is_empty(), "{}: {errors:?}", k.name);
        }
    }
}
