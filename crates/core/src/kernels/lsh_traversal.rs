//! On-accelerator hyperplane LSH.
//!
//! The third index family running natively on the PU (Section III-B's
//! "multiple different indexing kernels can coexist"): the kernel hashes
//! the query against scratchpad-resident hyperplanes on the vector
//! datapath ("the performance of HP-MPLSH is dominated mostly by hashing
//! rate", Section V-C), sorts the bit margins on the scalar datapath,
//! and probes buckets in increasing single-bit-perturbation cost — the
//! first `1 + hash_bits` entries of the Lv et al. multi-probe sequence,
//! which is the regime the paper's probe sweeps start from.
//!
//! ## Scratchpad layout (addresses from [`lsh_layout`])
//!
//! ```text
//! 0..            query (vec_words Q16.16 words)
//! hp..           hash_bits × vec_words hyperplane words
//! abs..          hash_bits |activation| words (written by the kernel)
//! idx..          hash_bits bit indices, sorted by |activation| (kernel)
//! tbl..          n_buckets × 4 words: [code | count | dram addr | first id]
//! ```
//!
//! ## Driver contract
//!
//! | reg   | meaning |
//! |-------|---------|
//! | `s15` | number of bucket-table entries |
//! | `s20` | probe budget (1 = exact-code bucket only) |

use ssam_knn::fixed::Fix32;
use ssam_knn::VectorStore;

use crate::isa::inst::AluOp;

use super::traversal::TREE_ADDR;
use super::{Kernel, KernelLayout};

/// Scratchpad addresses for the LSH image at `(dims, vl, hash_bits)`.
///
/// Returns `(hyperplanes, abs_buf, idx_buf, table)` byte addresses.
pub fn lsh_layout(dims: usize, vl: usize, hash_bits: usize) -> (u32, u32, u32, u32) {
    let vec_words = dims.div_ceil(vl) * vl;
    let hp = TREE_ADDR;
    let abs = hp + (hash_bits * vec_words * 4) as u32;
    let idx = abs + (hash_bits * 4) as u32;
    let tbl = idx + (hash_bits * 4) as u32;
    (hp, abs, idx, tbl)
}

/// An LSH table staged for the kernel.
#[derive(Debug, Clone)]
pub struct LshImage {
    /// Scratchpad words, to be written at [`TREE_ADDR`] (hyperplanes,
    /// zeroed work buffers, bucket table).
    pub spad_words: Vec<i32>,
    /// Bucket-table entry count (driver sets `s15` to this).
    pub buckets: usize,
    /// Bucket-contiguous Q16.16 dataset image for DRAM.
    pub dram_words: Vec<i32>,
    /// Image position → original row id.
    pub id_order: Vec<u32>,
    /// Words per padded vector.
    pub vec_words: usize,
    /// Largest bucket, in vectors (sizes the kernel's prefetch window).
    pub max_bucket: usize,
}

/// Q16.16 dot product with the PU's truncating multiply — the exact
/// arithmetic the kernel's hash loop performs (used by the host builder
/// so bucket codes match the kernel's query codes).
pub fn fixed_dot(a: &[i32], b: &[i32]) -> i32 {
    a.iter()
        .zip(b)
        .map(|(&x, &y)| AluOp::Mult.eval(x, y))
        .fold(0i32, |acc, v| acc.wrapping_add(v))
}

/// Builds the hyperplanes + bucket table over `store` and lays them out.
///
/// Hyperplanes are Gaussian (seeded); every vector is hashed with the
/// same fixed-point arithmetic the kernel uses, then buckets are emitted
/// contiguously into the DRAM image.
///
/// # Panics
/// Panics if the store is empty, `hash_bits` is outside `1..=20`, or the
/// image exceeds the scratchpad.
pub fn build_lsh_image(store: &VectorStore, hash_bits: usize, vl: usize, seed: u64) -> LshImage {
    assert!(!store.is_empty(), "cannot index an empty store");
    assert!((1..=20).contains(&hash_bits), "hash_bits must be in 1..=20");
    let dims = store.dims();
    let vec_words = dims.div_ceil(vl) * vl;
    assert!(
        vec_words * 4 <= TREE_ADDR as usize,
        "query of {vec_words} words would overlap the LSH region"
    );

    // Gaussian hyperplanes, quantized.
    use rand::rngs::StdRng;
    use rand::RngExt;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed);
    let gaussian = |rng: &mut StdRng| -> f32 {
        let u1: f64 = rng.random_range(f64::EPSILON..1.0);
        let u2: f64 = rng.random_range(0.0..1.0);
        ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
    };
    let mut planes: Vec<Vec<i32>> = Vec::with_capacity(hash_bits);
    for _ in 0..hash_bits {
        let mut p: Vec<i32> = (0..dims)
            .map(|_| Fix32::from_f32(gaussian(&mut rng)).0)
            .collect();
        p.resize(vec_words, 0);
        planes.push(p);
    }

    // Hash every vector with the kernel's arithmetic.
    let quantize = |v: &[f32]| -> Vec<i32> {
        let mut q: Vec<i32> = v.iter().map(|&x| Fix32::from_f32(x).0).collect();
        q.resize(vec_words, 0);
        q
    };
    let code_of = |q: &[i32]| -> i32 {
        let mut code = 0i32;
        for (i, p) in planes.iter().enumerate() {
            if fixed_dot(q, p) >= 0 {
                code |= 1 << i;
            }
        }
        code
    };
    let mut buckets: std::collections::BTreeMap<i32, Vec<u32>> = std::collections::BTreeMap::new();
    for (id, v) in store.iter() {
        buckets.entry(code_of(&quantize(v))).or_default().push(id);
    }

    // Emit buckets contiguously; build the table.
    let mut dram_words = Vec::new();
    let mut id_order = Vec::new();
    let mut table = Vec::new();
    let mut max_bucket = 1usize;
    for (code, members) in &buckets {
        let dram_addr = crate::isa::DRAM_BASE as i64 + dram_words.len() as i64 * 4;
        let first_local = (dram_words.len() / vec_words) as i32;
        for &id in members {
            dram_words.extend_from_slice(&quantize(store.get(id)));
            id_order.push(id);
        }
        max_bucket = max_bucket.max(members.len());
        table.extend_from_slice(&[*code, members.len() as i32, dram_addr as i32, first_local]);
    }

    // Assemble the scratchpad image: planes | abs | idx | table.
    let mut spad_words = Vec::new();
    for p in &planes {
        spad_words.extend_from_slice(p);
    }
    spad_words.resize(spad_words.len() + 2 * hash_bits, 0); // abs + idx work buffers
    spad_words.extend_from_slice(&table);
    assert!(
        TREE_ADDR as usize + spad_words.len() * 4 <= crate::isa::SCRATCHPAD_BYTES,
        "LSH image ({} words) exceeds the scratchpad region",
        spad_words.len()
    );
    LshImage {
        spad_words,
        buckets: buckets.len(),
        dram_words,
        id_order,
        vec_words,
        max_bucket,
    }
}

/// Generates the LSH probe kernel.
pub fn lsh_euclidean(dims: usize, vl: usize, hash_bits: usize, max_bucket: usize) -> Kernel {
    let dp = dims.div_ceil(vl) * vl;
    let chunks = dp / vl;
    let vlb = vl * 4;
    let vec_bytes = dp * 4;
    let max_bucket_bytes = max_bucket.max(1) * vec_bytes;
    let (hp, abs_buf, idx_buf, tbl) = lsh_layout(dims, vl, hash_bits);

    let mut src = format!(
        "; hyperplane LSH with single-bit multi-probe\n\
         ; driver contract: s15 = bucket-table entries, s20 = probe budget,\n\
         ;                  query at spad 0, image at spad {hp}\n\
         .equ BITS, {hash_bits}\n\
         .equ HP, {hp}\n\
         .equ ABSBUF, {abs_buf}\n\
         .equ IDXBUF, {idx_buf}\n\
         .equ TBL, {tbl}\n\
         start:\n\
         \x20   pqueue_reset\n\
         \x20   addi s6, s0, {chunks}\n\
         \x20   addi s11, s0, BITS\n\
         ; ---- phase 1: hash the query, recording |activation| per bit ----\n\
         \x20   addi s10, s0, 0         ; bit index\n\
         \x20   addi s12, s0, 0         ; code\n\
         \x20   addi s9, s0, HP         ; hyperplane cursor\n\
         \x20   addi s13, s0, ABSBUF\n\
         hashloop:\n\
         \x20   be   s10, s11, hashdone\n\
         \x20   svmove v2, s0, -1\n\
         \x20   addi s4, s0, 0\n\
         \x20   addi s5, s0, 0\n\
         hinner:\n\
         \x20   vload v0, s9, 0\n\
         \x20   vload v1, s4, 0\n\
         \x20   vmult v4, v0, v1\n\
         \x20   vadd  v2, v2, v4\n\
         \x20   addi  s9, s9, {vlb}\n\
         \x20   addi  s4, s4, {vlb}\n\
         \x20   addi  s5, s5, 1\n\
         \x20   blt   s5, s6, hinner\n"
    );
    src.push_str(&super::linear::reduce_lanes("v2", vl));
    src.push_str(
        "    ; |z| via sign mask; bit set when z >= 0\n\
         \x20   sra  s14, s7, 31\n\
         \x20   xor  s16, s7, s14\n\
         \x20   sub  s16, s16, s14\n\
         \x20   store s16, s13, 0       ; abs[i]\n\
         \x20   addi s13, s13, 4\n\
         \x20   blt  s7, s0, hnobit\n\
         \x20   addi s14, s0, 1\n\
         \x20   sl   s14, s14, s10\n\
         \x20   or   s12, s12, s14\n\
         hnobit:\n\
         \x20   addi s10, s10, 1\n\
         \x20   j    hashloop\n\
         hashdone:\n\
         ; ---- phase 2: selection-sort bit indices by |activation| ----\n\
         \x20   addi s10, s0, 0\n\
         \x20   addi s13, s0, IDXBUF\n\
         initidx:\n\
         \x20   be   s10, s11, initdone\n\
         \x20   store s10, s13, 0\n\
         \x20   addi s13, s13, 4\n\
         \x20   addi s10, s10, 1\n\
         \x20   j    initidx\n\
         initdone:\n\
         \x20   addi s10, s0, 0         ; i\n\
         sorti:\n\
         \x20   be   s10, s11, sortdone\n\
         \x20   add  s16, s10, s0       ; min position\n\
         \x20   addi s14, s10, 1        ; j\n\
         sortj:\n\
         \x20   be   s14, s11, sortswap\n\
         \x20   sl   s17, s14, 2\n\
         \x20   addi s18, s17, ABSBUF\n\
         \x20   load s17, s18, 0        ; abs[j]\n\
         \x20   sl   s18, s16, 2\n\
         \x20   addi s18, s18, ABSBUF\n\
         \x20   load s18, s18, 0        ; abs[min]\n\
         \x20   blt  s17, s18, newmin\n\
         \x20   j    nextj\n\
         newmin:\n\
         \x20   add  s16, s14, s0\n\
         nextj:\n\
         \x20   addi s14, s14, 1\n\
         \x20   j    sortj\n\
         sortswap:\n\
         \x20   ; swap abs[i]<->abs[min], idx[i]<->idx[min]\n\
         \x20   sl   s17, s10, 2\n\
         \x20   sl   s18, s16, 2\n\
         \x20   addi s19, s17, ABSBUF\n\
         \x20   addi s21, s18, ABSBUF\n\
         \x20   load s22, s19, 0\n\
         \x20   load s23, s21, 0\n\
         \x20   store s23, s19, 0\n\
         \x20   store s22, s21, 0\n\
         \x20   addi s19, s17, IDXBUF\n\
         \x20   addi s21, s18, IDXBUF\n\
         \x20   load s22, s19, 0\n\
         \x20   load s23, s21, 0\n\
         \x20   store s23, s19, 0\n\
         \x20   store s22, s21, 0\n\
         \x20   addi s10, s10, 1\n\
         \x20   j    sorti\n\
         sortdone:\n\
         ; ---- phase 3: probe buckets ----\n\
         \x20   addi s10, s0, 0         ; probe counter\n\
         probeloop:\n\
         \x20   be   s10, s20, done\n\
         \x20   be   s10, s0, basecode\n\
         \x20   subi s17, s10, 1\n\
         \x20   blt  s17, s11, flipok\n\
         \x20   j    done               ; out of single-bit perturbations\n\
         flipok:\n\
         \x20   sl   s18, s17, 2\n\
         \x20   addi s18, s18, IDXBUF\n\
         \x20   load s17, s18, 0        ; bit to flip\n\
         \x20   addi s14, s0, 1\n\
         \x20   sl   s14, s14, s17\n\
         \x20   xor  s14, s12, s14\n\
         \x20   j    lookup\n\
         basecode:\n\
         \x20   add  s14, s12, s0\n\
         lookup:\n\
         \x20   addi s16, s0, 0         ; table index\n\
         \x20   addi s18, s0, TBL\n\
         tblloop:\n\
         \x20   be   s16, s15, probenext\n\
         \x20   load s17, s18, 0\n\
         \x20   be   s17, s14, found\n\
         \x20   addi s16, s16, 1\n\
         \x20   addi s18, s18, 16\n\
         \x20   j    tblloop\n\
         found:\n",
    );
    src.push_str(&format!(
        "    load s29, s18, 4        ; bucket count\n\
         \x20   load s1,  s18, 8        ; bucket DRAM address\n\
         \x20   load s3,  s18, 12       ; first id\n\
         \x20   sl   s29, s29, 16\n\
         \x20   addi s30, s0, {vec_bytes}\n\
         \x20   mult s29, s29, s30\n\
         \x20   add  s2, s1, s29\n\
         \x20   mem_fetch s1, {max_bucket_bytes}\n\
         scan:\n\
         \x20   be   s1, s2, probenext\n\
         \x20   svmove v2, s0, -1\n\
         \x20   addi s4, s0, 0\n\
         \x20   addi s5, s0, 0\n\
         inner:\n\
         \x20   vload v0, s1, 0\n\
         \x20   vload v1, s4, 0\n\
         \x20   vsub  v0, v0, v1\n\
         \x20   vmult v0, v0, v0\n\
         \x20   vadd  v2, v2, v0\n\
         \x20   addi  s1, s1, {vlb}\n\
         \x20   addi  s4, s4, {vlb}\n\
         \x20   addi  s5, s5, 1\n\
         \x20   blt   s5, s6, inner\n"
    ));
    src.push_str(&super::linear::reduce_lanes("v2", vl));
    src.push_str(
        "    pqueue_insert s3, s7\n\
         \x20   addi s3, s3, 1\n\
         \x20   j    scan\n\
         probenext:\n\
         \x20   addi s10, s10, 1\n\
         \x20   j    probeloop\n\
         done:\n\
         \x20   halt\n",
    );
    Kernel::build(
        format!("lsh_euclidean_vl{vl}_b{hash_bits}"),
        src,
        KernelLayout {
            vec_words: dp,
            vl,
            query_addr: 0,
            swqueue_addr: 0,
            driver_sregs: super::sreg_mask(&[15, 20]),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::pu::ProcessingUnit;
    use std::sync::Arc;

    #[test]
    fn lsh_kernels_verify_error_free() {
        for &vl in &crate::isa::VECTOR_LENGTHS {
            for dims in [16, 100] {
                let k = lsh_euclidean(dims, vl, 8, 64);
                let errors: Vec<_> = crate::analysis::verify(&k)
                    .into_iter()
                    .filter(|d| d.is_error())
                    .collect();
                assert!(errors.is_empty(), "{}: {errors:?}", k.name);
            }
        }
    }

    use rand::rngs::StdRng;
    use rand::RngExt;
    use rand::SeedableRng;

    fn random_store(n: usize, dims: usize, seed: u64) -> VectorStore {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut s = VectorStore::with_capacity(dims, n);
        for _ in 0..n {
            let v: Vec<f32> = (0..dims).map(|_| rng.random_range(-1.0..1.0)).collect();
            s.push(&v);
        }
        s
    }

    fn run(
        store: &VectorStore,
        img: &LshImage,
        kernel: &Kernel,
        query: &[f32],
        k: usize,
        probes: i32,
    ) -> (Vec<u32>, crate::sim::pu::RunStats) {
        let mut pu = ProcessingUnit::new(4, Arc::new(img.dram_words.clone()));
        pu.chain_pqueue(k.div_ceil(16));
        pu.load_program(kernel.program.clone());
        let mut q: Vec<i32> = query.iter().map(|&x| Fix32::from_f32(x).0).collect();
        q.resize(img.vec_words, 0);
        pu.scratchpad_mut().write_block(0, &q).expect("query");
        pu.scratchpad_mut()
            .write_block(TREE_ADDR, &img.spad_words)
            .expect("image fits");
        pu.set_sreg(15, img.buckets as i32);
        pu.set_sreg(20, probes);
        let stats = pu.run(50_000_000).expect("halts");
        let ids = pu
            .pqueue()
            .entries()
            .iter()
            .take(k)
            .map(|e| img.id_order[e.id as usize])
            .collect();
        let _ = store;
        (ids, stats)
    }

    #[test]
    fn image_partitions_every_row_once() {
        let s = random_store(200, 8, 1);
        let img = build_lsh_image(&s, 6, 4, 3);
        let mut order = img.id_order.clone();
        order.sort_unstable();
        order.dedup();
        assert_eq!(order.len(), 200);
        assert_eq!(img.dram_words.len(), 200 * img.vec_words);
        assert!(img.buckets >= 2);
    }

    #[test]
    fn self_query_is_found_with_one_probe() {
        let s = random_store(150, 6, 2);
        let img = build_lsh_image(&s, 6, 4, 3);
        let kernel = lsh_euclidean(6, 4, 6, img.max_bucket);
        for id in [0u32, 70, 149] {
            let q: Vec<f32> = s.get(id).to_vec();
            let (ids, _) = run(&s, &img, &kernel, &q, 1, 1);
            assert_eq!(ids[0], id, "own bucket must contain the query");
        }
    }

    #[test]
    fn more_probes_scan_more_data() {
        let s = random_store(400, 6, 4);
        let img = build_lsh_image(&s, 8, 4, 5);
        let kernel = lsh_euclidean(6, 4, 8, img.max_bucket);
        let q: Vec<f32> = (0..6).map(|i| 0.1 * i as f32).collect();
        let (_, one) = run(&s, &img, &kernel, &q, 3, 1);
        let (_, many) = run(&s, &img, &kernel, &q, 3, 6);
        assert!(many.dram.bytes_read >= one.dram.bytes_read);
        assert!(many.cycles > one.cycles);
    }

    #[test]
    fn probe_budget_beyond_bits_halts_cleanly() {
        let s = random_store(60, 4, 6);
        let img = build_lsh_image(&s, 4, 4, 7);
        let kernel = lsh_euclidean(4, 4, 4, img.max_bucket);
        // budget 100 ≫ 1 + 4 single-bit probes: must halt, not loop.
        let (ids, _) = run(&s, &img, &kernel, &[0.1, 0.2, 0.3, 0.4], 3, 100);
        assert!(ids.len() <= 3);
    }

    #[test]
    fn kernel_probe_set_matches_host_model() {
        // Independent host model of the kernel's policy: hash with
        // fixed_dot, probe base + single-bit flips by ascending |z|,
        // collect all bucket members, take top-k by kernel arithmetic.
        let s = random_store(300, 5, 8);
        let bits = 6;
        let img = build_lsh_image(&s, bits, 4, 9);
        let kernel = lsh_euclidean(5, 4, bits, img.max_bucket);
        let mut rng = StdRng::seed_from_u64(10);
        let query: Vec<f32> = (0..5).map(|_| rng.random_range(-1.0f32..1.0)).collect();
        let probes = 4i32;
        let (got, _) = run(&s, &img, &kernel, &query, 5, probes);

        // Rebuild the host-side view.
        let vl = 4;
        let vec_words = img.vec_words;
        let quantize = |v: &[f32]| -> Vec<i32> {
            let mut q: Vec<i32> = v.iter().map(|&x| Fix32::from_f32(x).0).collect();
            q.resize(vec_words, 0);
            q
        };
        let qq = quantize(&query);
        let (hp, _, _, _) = lsh_layout(5, vl, bits);
        let plane = |i: usize| -> &[i32] {
            let off = ((hp - TREE_ADDR) / 4) as usize + i * vec_words;
            &img.spad_words[off..off + vec_words]
        };
        let mut code = 0i32;
        let mut margins: Vec<(i32, usize)> = Vec::new();
        for i in 0..bits {
            let z = fixed_dot(&qq, plane(i));
            if z >= 0 {
                code |= 1 << i;
            }
            margins.push((z.wrapping_abs(), i));
        }
        margins.sort_unstable();
        let mut probe_codes = vec![code];
        for &(_, bit) in margins.iter().take(probes as usize - 1) {
            probe_codes.push(code ^ (1 << bit));
        }
        // Collect candidates from the table.
        let tbl_off = ((lsh_layout(5, vl, bits).3 - TREE_ADDR) / 4) as usize;
        let mut cands: Vec<(i32, i32)> = Vec::new();
        for e in 0..img.buckets {
            let rec = &img.spad_words[tbl_off + 4 * e..tbl_off + 4 * e + 4];
            if probe_codes.contains(&rec[0]) {
                let count = rec[1] as usize;
                let first = rec[3] as usize;
                for p in first..first + count {
                    let cand = &img.dram_words[p * vec_words..(p + 1) * vec_words];
                    let d = qq
                        .iter()
                        .zip(cand)
                        .map(|(&a, &b)| {
                            let diff = b.wrapping_sub(a);
                            AluOp::Mult.eval(diff, diff)
                        })
                        .fold(0i32, |acc, x| acc.wrapping_add(x));
                    cands.push((d, p as i32));
                }
            }
        }
        cands.sort_unstable();
        cands.truncate(5);
        let expect: Vec<u32> = cands
            .iter()
            .map(|&(_, p)| img.id_order[p as usize])
            .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn works_across_vector_lengths() {
        let s = random_store(100, 6, 11);
        for vl in [2usize, 4, 8, 16] {
            let img = build_lsh_image(&s, 5, vl, 12);
            let kernel = lsh_euclidean(6, vl, 5, img.max_bucket);
            let q: Vec<f32> = s.get(42).to_vec();
            let mut pu = ProcessingUnit::new(vl, Arc::new(img.dram_words.clone()));
            pu.load_program(kernel.program.clone());
            let mut qq: Vec<i32> = q.iter().map(|&x| Fix32::from_f32(x).0).collect();
            qq.resize(img.vec_words, 0);
            pu.scratchpad_mut().write_block(0, &qq).expect("query");
            pu.scratchpad_mut()
                .write_block(TREE_ADDR, &img.spad_words)
                .expect("image");
            pu.set_sreg(15, img.buckets as i32);
            pu.set_sreg(20, 1);
            pu.run(50_000_000).expect("halts");
            let best = pu.pqueue().entries()[0];
            assert_eq!(img.id_order[best.id as usize], 42, "VL={vl}");
        }
    }

    #[test]
    fn optimizer_shrinks_lsh_kernels_without_new_diagnostics() {
        for &vl in &crate::isa::VECTOR_LENGTHS {
            let k = lsh_euclidean(100, vl, 8, 64);
            assert!(
                k.opt.instructions_after < k.opt.instructions_before,
                "{}: optimizer found nothing to remove",
                k.name
            );
            let errors: Vec<_> = crate::analysis::verify(&k)
                .into_iter()
                .filter(|d| d.is_error())
                .collect();
            assert!(errors.is_empty(), "{}: {errors:?}", k.name);
        }
    }
}
