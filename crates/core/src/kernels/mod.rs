//! Hand-written kNN kernels in SSAM assembly.
//!
//! The paper's methodology (Section IV): "Each benchmark is handwritten
//! using our instruction set defined in Table II." This module generates
//! those programs, parameterized by feature dimensionality and vector
//! length, for each distance metric of Section II-D/V-D:
//!
//! * [`linear::euclidean`] — squared-L2 scan (the canonical kernel),
//! * [`linear::manhattan`] — L1 scan,
//! * [`linear::cosine`] — cosine-distance scan with software fixed-point
//!   division ("performed in software using shifts and subtracts"),
//! * [`linear::hamming`] — binarized scan using the fused xor-popcount
//!   `VFXP` instruction,
//! * [`linear::euclidean_swqueue`] — the Section V-B ablation that keeps
//!   the top-k in a scratchpad-resident software priority queue instead
//!   of the hardware unit.
//!
//! ## Driver contract
//!
//! Every linear kernel shares one register/scratchpad convention, set up
//! by the device model before `nexec`:
//!
//! | where            | meaning |
//! |------------------|---------|
//! | scratchpad `0..` | query vector, padded to a vector-length multiple |
//! | `s1`             | shard base address (`DRAM_BASE`) |
//! | `s2`             | shard end address |
//! | `s3`             | id of the first vector in the shard |
//! | `s10`            | (cosine only) query squared norm, Q16.16 |
//!
//! On `HALT` the k best `(id, distance)` pairs are in the hardware
//! priority queue (or the scratchpad queue region for the software
//! variant).

pub mod kmeans_traversal;
pub mod linear;
pub mod lsh_traversal;
pub mod traversal;

use crate::analysis::opt::{optimize, OptConfig, OptReport};
use crate::asm::{assemble, AsmError};
use crate::isa::inst::Instruction;

/// A generated kernel: source text plus its assembled program and layout.
#[derive(Debug, Clone)]
pub struct Kernel {
    /// Human-readable kernel name (e.g. `linear_euclidean_vl4`).
    pub name: String,
    /// Assembly source.
    pub source: String,
    /// Optimized program (what the device stages by default).
    pub program: Vec<Instruction>,
    /// The program exactly as assembled, before optimization — kept for
    /// A/B comparison and the `optimize_kernels: false` escape hatch.
    pub raw_program: Vec<Instruction>,
    /// What the optimizer did to `raw_program`.
    pub opt: OptReport,
    /// Memory-layout contract between driver and kernel.
    pub layout: KernelLayout,
}

/// Layout constants the device model must honor when staging data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelLayout {
    /// Words per database vector after padding to a VL multiple.
    pub vec_words: usize,
    /// Vector length the kernel was generated for (lane count).
    pub vl: usize,
    /// Scratchpad byte address of the query vector.
    pub query_addr: u32,
    /// Scratchpad byte address of the software queue region (software-
    /// queue variant only; 0 otherwise).
    pub swqueue_addr: u32,
    /// Bitmask of scalar registers the driver initializes before `nexec`
    /// (bit `r` set ⇒ `sN` is part of the driver contract). The static
    /// verifier treats these as defined at kernel entry.
    pub driver_sregs: u32,
}

/// Builds a `driver_sregs` bitmask from a register list (e.g.
/// `sreg_mask(&[1, 2, 3])` for the linear-scan contract).
pub const fn sreg_mask(regs: &[u8]) -> u32 {
    let mut mask = 0u32;
    let mut i = 0;
    while i < regs.len() {
        mask |= 1 << regs[i];
        i += 1;
    }
    mask
}

impl Kernel {
    /// Builds a kernel from generated source.
    ///
    /// # Panics
    /// Panics if the generated source fails to assemble — generator bugs
    /// are programming errors, not runtime conditions.
    pub(crate) fn build(name: String, source: String, layout: KernelLayout) -> Self {
        let raw_program = match assemble(&source) {
            Ok(p) => p,
            Err(AsmError { line, message }) => panic!(
                "kernel generator `{name}` produced invalid assembly at line {line}: {message}\n{source}"
            ),
        };
        let (program, opt) = optimize(&raw_program, &OptConfig::default());
        let kernel = Self {
            name,
            source,
            program,
            raw_program,
            opt,
            layout,
        };
        #[cfg(debug_assertions)]
        {
            let errors: Vec<String> = crate::analysis::verify(&kernel)
                .into_iter()
                .filter(|d| d.severity == crate::analysis::Severity::Error)
                .map(|d| d.to_string())
                .collect();
            debug_assert!(
                errors.is_empty(),
                "kernel `{}` failed static verification:\n{}\n{}",
                kernel.name,
                errors.join("\n"),
                kernel.source
            );
        }
        kernel
    }
}
