//! On-accelerator hierarchical k-means traversal.
//!
//! Section III-B: "unlike GPU cores, processing units are not restricted
//! to operating in lockstep and multiple different indexing kernels can
//! coexist on each SSAM module." This is the second index family running
//! natively on the PU: interior nodes hold their children's centroids in
//! the scratchpad; the kernel computes the query's distance to every
//! child centroid on the vector datapath, descends into the nearest, and
//! pushes the far siblings onto the hardware stack for backtracking —
//! exactly the Section II-C hierarchical k-means search, in Table II
//! instructions.
//!
//! ## Scratchpad layout (addresses are spad-absolute)
//!
//! ```text
//! interior header (4 words): [ nchildren | centroid base | child-array base | 0 ]
//! centroid block:            nchildren × vec_words Q16.16 words
//! child array:               nchildren node addresses
//! leaf (4 words):            [ -1 | count | bucket DRAM addr | first id ]
//! ```

use ssam_knn::fixed::Fix32;
use ssam_knn::kmeans::{kmeans, KMeansParams};
use ssam_knn::VectorStore;

use super::traversal::TREE_ADDR;
use super::{Kernel, KernelLayout};

/// A k-means tree staged for the traversal kernel.
#[derive(Debug, Clone)]
pub struct KmTreeImage {
    /// Scratchpad words, to be written at [`TREE_ADDR`].
    pub spad_words: Vec<i32>,
    /// Scratchpad byte address of the root node.
    pub root_addr: u32,
    /// Bucket-contiguous Q16.16 dataset image for DRAM.
    pub dram_words: Vec<i32>,
    /// Image position → original row id.
    pub id_order: Vec<u32>,
    /// Leaves emitted.
    pub leaves: usize,
    /// Words per padded vector.
    pub vec_words: usize,
}

struct Builder<'a> {
    store: &'a VectorStore,
    branching: usize,
    leaf_size: usize,
    vec_words: usize,
    seed: u64,
    spad: Vec<i32>,
    dram: Vec<i32>,
    id_order: Vec<u32>,
    leaves: usize,
}

impl Builder<'_> {
    fn spad_addr(&self) -> u32 {
        TREE_ADDR + 4 * self.spad.len() as u32
    }

    fn push_vec_quantized(buf: &mut Vec<i32>, v: &[f32], vec_words: usize) {
        for &x in v {
            buf.push(Fix32::from_f32(x).0);
        }
        buf.resize(buf.len() + (vec_words - v.len()), 0);
    }

    fn emit(&mut self, ids: Vec<u32>, level: usize) -> u32 {
        if ids.len() <= self.leaf_size {
            let dram_addr = crate::isa::DRAM_BASE as i64 + self.dram.len() as i64 * 4;
            let first_local = (self.dram.len() / self.vec_words) as i32;
            for &id in &ids {
                Self::push_vec_quantized(&mut self.dram, self.store.get(id), self.vec_words);
                self.id_order.push(id);
            }
            self.leaves += 1;
            let addr = self.spad_addr();
            self.spad
                .extend_from_slice(&[-1, ids.len() as i32, dram_addr as i32, first_local]);
            return addr;
        }

        let km = kmeans(
            self.store,
            Some(&ids),
            KMeansParams {
                k: self.branching,
                max_iters: 8,
                seed: self
                    .seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(level as u64)
                    .wrapping_add(ids[0] as u64),
            },
        );
        let kk = km.centroids.len();
        let mut groups: Vec<Vec<u32>> = vec![Vec::new(); kk];
        for (slot, &id) in ids.iter().enumerate() {
            groups[km.assignments[slot] as usize].push(id);
        }
        // Degenerate split (duplicates): emit a leaf regardless of size so
        // the recursion terminates.
        if groups.iter().filter(|g| !g.is_empty()).count() <= 1 {
            let dram_addr = crate::isa::DRAM_BASE as i64 + self.dram.len() as i64 * 4;
            let first_local = (self.dram.len() / self.vec_words) as i32;
            for &id in &ids {
                Self::push_vec_quantized(&mut self.dram, self.store.get(id), self.vec_words);
                self.id_order.push(id);
            }
            self.leaves += 1;
            let addr = self.spad_addr();
            self.spad
                .extend_from_slice(&[-1, ids.len() as i32, dram_addr as i32, first_local]);
            return addr;
        }

        // Children first (their addresses are needed by the arrays).
        let mut children = Vec::new();
        let mut centroids = Vec::new();
        for (c, group) in groups.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let child = self.emit(group, level + 1);
            children.push(child as i32);
            centroids.push(km.centroids.get(c as u32).to_vec());
        }

        // Centroid block.
        let centroid_addr = self.spad_addr();
        for c in &centroids {
            Self::push_vec_quantized(&mut self.spad, c, self.vec_words);
        }
        // Child array.
        let children_addr = self.spad_addr();
        self.spad.extend_from_slice(&children);
        // Header.
        let addr = self.spad_addr();
        self.spad.extend_from_slice(&[
            children.len() as i32,
            centroid_addr as i32,
            children_addr as i32,
            0,
        ]);
        addr
    }
}

/// Builds a hierarchical k-means tree over `store` and lays it out for
/// the kernel.
///
/// # Panics
/// Panics if the store is empty, `branching < 2`, or the image (nodes +
/// per-node centroid blocks) exceeds the scratchpad region — keep
/// `dims × branching × nodes` modest, or raise `leaf_size`.
pub fn build_kmeans_tree_image(
    store: &VectorStore,
    branching: usize,
    leaf_size: usize,
    vl: usize,
    seed: u64,
) -> KmTreeImage {
    assert!(!store.is_empty(), "cannot index an empty store");
    assert!(branching >= 2, "branching factor must be at least 2");
    let vec_words = store.dims().div_ceil(vl) * vl;
    assert!(
        vec_words * 4 <= TREE_ADDR as usize,
        "query of {vec_words} words would overlap the tree region at {TREE_ADDR:#x}"
    );
    let mut b = Builder {
        store,
        branching,
        leaf_size: leaf_size.max(1),
        vec_words,
        seed,
        spad: Vec::new(),
        dram: Vec::new(),
        id_order: Vec::new(),
        leaves: 0,
    };
    let root_addr = b.emit((0..store.len() as u32).collect(), 0);
    assert!(
        TREE_ADDR as usize + b.spad.len() * 4 <= crate::isa::SCRATCHPAD_BYTES,
        "k-means tree image ({} words) exceeds the scratchpad region",
        b.spad.len()
    );
    KmTreeImage {
        spad_words: b.spad,
        root_addr,
        dram_words: b.dram,
        id_order: b.id_order,
        leaves: b.leaves,
        vec_words,
    }
}

/// Generates the hierarchical k-means traversal kernel.
///
/// Driver contract: query at spad 0, tree at [`TREE_ADDR`], `s20` = leaf
/// budget, `s21` = root node address.
pub fn kmeans_euclidean(dims: usize, vl: usize, max_bucket: usize) -> Kernel {
    let dp = dims.div_ceil(vl) * vl;
    let chunks = dp / vl;
    let vlb = vl * 4;
    let vec_bytes = dp * 4;
    let max_bucket_bytes = max_bucket.max(1) * vec_bytes;

    // The centroid-distance loop and the bucket-scan loop share the
    // chunked Euclidean body; they differ only in the data pointer
    // register (s9 = scratchpad centroid cursor, s1 = DRAM bucket cursor).
    let mut src = format!(
        "; hierarchical k-means traversal with hardware-stack backtracking\n\
         ; driver contract: s20 = leaf budget, s21 = root node addr,\n\
         ;                  query at spad 0, tree at spad {TREE_ADDR}\n\
         start:\n\
         \x20   pqueue_reset\n\
         \x20   addi s6, s0, {chunks}\n\
         \x20   push s0                 ; sentinel\n\
         \x20   push s21                ; root\n\
         walk:\n\
         \x20   pop  s22\n\
         \x20   be   s22, s0, done\n\
         \x20   load s23, s22, 0        ; tag / child count\n\
         \x20   addi s29, s0, -1\n\
         \x20   be   s23, s29, leaf\n\
         \x20   load s24, s22, 4        ; centroid base\n\
         \x20   load s25, s22, 8        ; child-array base\n\
         \x20   addi s26, s0, 0         ; child index\n\
         \x20   addi s27, s0, 0         ; best child\n\
         \x20   addi s28, s0, 0x7FFFFFFF ; best distance\n\
         \x20   add  s9, s24, s0        ; centroid cursor\n\
         selloop:\n\
         \x20   be   s26, s23, seldone\n\
         \x20   svmove v2, s0, -1\n\
         \x20   addi s4, s0, 0\n\
         \x20   addi s5, s0, 0\n\
         cinner:\n\
         \x20   vload v0, s9, 0\n\
         \x20   vload v1, s4, 0\n\
         \x20   vsub  v0, v0, v1\n\
         \x20   vmult v0, v0, v0\n\
         \x20   vadd  v2, v2, v0\n\
         \x20   addi  s9, s9, {vlb}\n\
         \x20   addi  s4, s4, {vlb}\n\
         \x20   addi  s5, s5, 1\n\
         \x20   blt   s5, s6, cinner\n"
    );
    src.push_str(&super::linear::reduce_lanes("v2", vl));
    src.push_str(
        "    blt  s7, s28, newbest\n\
         \x20   j    selnext\n\
         newbest:\n\
         \x20   add  s28, s7, s0\n\
         \x20   add  s27, s26, s0\n\
         selnext:\n\
         \x20   addi s26, s26, 1\n\
         \x20   j    selloop\n\
         seldone:\n\
         \x20   addi s26, s0, 0         ; push far children first\n\
         pushloop:\n\
         \x20   be   s26, s23, pushbest\n\
         \x20   be   s26, s27, skippush\n\
         \x20   sl   s29, s26, 2\n\
         \x20   add  s29, s29, s25\n\
         \x20   load s30, s29, 0\n\
         \x20   push s30\n\
         skippush:\n\
         \x20   addi s26, s26, 1\n\
         \x20   j    pushloop\n\
         pushbest:\n\
         \x20   sl   s29, s27, 2\n\
         \x20   add  s29, s29, s25\n\
         \x20   load s30, s29, 0\n\
         \x20   push s30                ; nearest child popped first\n\
         \x20   j    walk\n",
    );
    src.push_str(&format!(
        "leaf:\n\
         \x20   be   s20, s0, done\n\
         \x20   subi s20, s20, 1\n\
         \x20   load s29, s22, 4        ; bucket count\n\
         \x20   load s1,  s22, 8        ; bucket DRAM address\n\
         \x20   load s3,  s22, 12       ; first id\n\
         \x20   sl   s29, s29, 16\n\
         \x20   addi s30, s0, {vec_bytes}\n\
         \x20   mult s29, s29, s30\n\
         \x20   add  s2, s1, s29\n\
         \x20   mem_fetch s1, {max_bucket_bytes}\n\
         scan:\n\
         \x20   be   s1, s2, walk\n\
         \x20   svmove v2, s0, -1\n\
         \x20   addi s4, s0, 0\n\
         \x20   addi s5, s0, 0\n\
         inner:\n\
         \x20   vload v0, s1, 0\n\
         \x20   vload v1, s4, 0\n\
         \x20   vsub  v0, v0, v1\n\
         \x20   vmult v0, v0, v0\n\
         \x20   vadd  v2, v2, v0\n\
         \x20   addi  s1, s1, {vlb}\n\
         \x20   addi  s4, s4, {vlb}\n\
         \x20   addi  s5, s5, 1\n\
         \x20   blt   s5, s6, inner\n"
    ));
    src.push_str(&super::linear::reduce_lanes("v2", vl));
    src.push_str(
        "    pqueue_insert s3, s7\n\
         \x20   addi s3, s3, 1\n\
         \x20   j    scan\n\
         done:\n\
         \x20   halt\n",
    );
    Kernel::build(
        format!("kmeans_euclidean_vl{vl}"),
        src,
        KernelLayout {
            vec_words: dp,
            vl,
            query_addr: 0,
            swqueue_addr: 0,
            driver_sregs: super::sreg_mask(&[20, 21]),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::DRAM_BASE;
    use crate::sim::pu::ProcessingUnit;
    use rand::rngs::StdRng;
    use rand::RngExt;
    use rand::SeedableRng;

    #[test]
    fn kmeans_kernels_verify_error_free() {
        for &vl in &crate::isa::VECTOR_LENGTHS {
            for dims in [16, 100] {
                let k = kmeans_euclidean(dims, vl, 64);
                let errors: Vec<_> = crate::analysis::verify(&k)
                    .into_iter()
                    .filter(|d| d.is_error())
                    .collect();
                assert!(errors.is_empty(), "{}: {errors:?}", k.name);
            }
        }
    }
    use ssam_knn::linear::knn_exact;
    use ssam_knn::Metric;
    use std::sync::Arc;

    fn random_store(n: usize, dims: usize, seed: u64) -> VectorStore {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut s = VectorStore::with_capacity(dims, n);
        for _ in 0..n {
            let v: Vec<f32> = (0..dims).map(|_| rng.random_range(-1.0..1.0)).collect();
            s.push(&v);
        }
        s
    }

    fn run(
        store: &VectorStore,
        query: &[f32],
        k: usize,
        branching: usize,
        leaf_size: usize,
        vl: usize,
        budget: i32,
    ) -> (Vec<u32>, crate::sim::pu::RunStats) {
        let img = build_kmeans_tree_image(store, branching, leaf_size, vl, 7);
        let kernel = kmeans_euclidean(store.dims(), vl, leaf_size);
        let mut pu = ProcessingUnit::new(vl, Arc::new(img.dram_words.clone()));
        pu.chain_pqueue(k.div_ceil(16));
        pu.load_program(kernel.program.clone());
        let mut q: Vec<i32> = query.iter().map(|&x| Fix32::from_f32(x).0).collect();
        q.resize(img.vec_words, 0);
        pu.scratchpad_mut()
            .write_block(0, &q)
            .expect("query staged");
        pu.scratchpad_mut()
            .write_block(TREE_ADDR, &img.spad_words)
            .expect("tree staged");
        pu.set_sreg(20, budget);
        pu.set_sreg(21, img.root_addr as i32);
        pu.set_sreg(1, DRAM_BASE as i32);
        let stats = pu.run(20_000_000).expect("traversal halts");
        let ids: Vec<u32> = pu
            .pqueue()
            .entries()
            .iter()
            .take(k)
            .map(|e| img.id_order[e.id as usize])
            .collect();
        (ids, stats)
    }

    #[test]
    fn image_partitions_every_row_once() {
        let s = random_store(200, 6, 1);
        let img = build_kmeans_tree_image(&s, 4, 16, 4, 1);
        let mut order = img.id_order.clone();
        order.sort_unstable();
        order.dedup();
        assert_eq!(order.len(), 200);
        assert_eq!(img.dram_words.len(), 200 * img.vec_words);
        assert!(img.leaves >= 200 / 16);
    }

    #[test]
    fn full_budget_matches_exact_search() {
        let s = random_store(150, 5, 2);
        let q: Vec<f32> = vec![0.1, -0.2, 0.3, 0.0, 0.2];
        let (ids, stats) = run(&s, &q, 5, 3, 8, 4, 1_000);
        let expect: Vec<u32> = knn_exact(&s, &q, 5, Metric::Euclidean)
            .iter()
            .map(|n| n.id)
            .collect();
        assert_eq!(ids, expect);
        assert!(stats.stack_ops > 0);
    }

    #[test]
    fn near_first_descent_finds_home_bucket_with_one_leaf() {
        let s = random_store(300, 4, 3);
        let q: Vec<f32> = s.get(77).to_vec();
        let (ids, _) = run(&s, &q, 1, 4, 16, 4, 1);
        assert_eq!(ids[0], 77);
    }

    #[test]
    fn budget_bounds_bucket_scans() {
        let s = random_store(400, 4, 4);
        let (_, full) = run(&s, &[0.0; 4], 3, 4, 8, 4, 1_000);
        let (_, capped) = run(&s, &[0.0; 4], 3, 4, 8, 4, 2);
        assert!(capped.dram.bytes_read < full.dram.bytes_read / 4);
    }

    #[test]
    fn works_across_vector_lengths() {
        let s = random_store(120, 6, 5);
        let q = [0.2f32, -0.1, 0.0, 0.3, -0.2, 0.1];
        let expect: Vec<u32> = knn_exact(&s, &q, 4, Metric::Euclidean)
            .iter()
            .map(|n| n.id)
            .collect();
        for vl in [2usize, 4, 8, 16] {
            let (ids, _) = run(&s, &q, 4, 3, 8, vl, 1_000);
            assert_eq!(ids, expect, "VL={vl}");
        }
    }

    #[test]
    fn duplicate_points_terminate() {
        let mut s = VectorStore::new(3);
        for _ in 0..100 {
            s.push(&[2.0, 2.0, 2.0]);
        }
        let img = build_kmeans_tree_image(&s, 4, 8, 4, 6);
        assert_eq!(img.id_order.len(), 100);
    }

    #[test]
    fn kernel_assembles_for_high_dims() {
        let k = kmeans_euclidean(960, 8, 32);
        assert!(!k.program.is_empty());
        assert!(k.source.contains("selloop"));
    }

    #[test]
    fn optimizer_shrinks_kmeans_kernels_without_new_diagnostics() {
        for &vl in &crate::isa::VECTOR_LENGTHS {
            let k = kmeans_euclidean(100, vl, 64);
            assert!(
                k.opt.instructions_after < k.opt.instructions_before,
                "{}: optimizer found nothing to remove",
                k.name
            );
            let errors: Vec<_> = crate::analysis::verify(&k)
                .into_iter()
                .filter(|d| d.is_error())
                .collect();
            assert!(errors.is_empty(), "{}: {errors:?}", k.name);
        }
    }
}
