//! Linear-scan kNN kernels, one generator per distance metric.
//!
//! Every metric comes in two flavors: the canonical hardware-queue kernel
//! (single-cycle `PQUEUE_INSERT` per candidate) and a `_swqueue` variant
//! for the Section V-B ablation that keeps the top-k in a
//! scratchpad-resident software priority queue. The per-candidate
//! distance loops are shared between the two flavors (`*_inner` /
//! `cosine_tail` below), so the ablation measures exactly the queue cost
//! and nothing else.

use super::{sreg_mask, Kernel, KernelLayout};

/// Scratchpad byte address of the software-queue region (the query lives
/// at address 0; 16 KB leaves ample room for padded 4096-d queries).
pub const SWQUEUE_ADDR: u32 = 16 * 1024;

fn pad_to(dims: usize, vl: usize) -> usize {
    dims.div_ceil(vl) * vl
}

/// Emits the per-lane reduction of vector register `vreg` into scalar
/// `s7` (via the `VSMOVE` lane-extract path — the PU has no cross-lane
/// reduction network).
pub(crate) fn reduce_lanes(vreg: &str, vl: usize) -> String {
    let mut s = String::from("    addi s7, s0, 0\n");
    for l in 0..vl {
        s.push_str(&format!("    vsmove s8, {vreg}, {l}\n    add s7, s7, s8\n"));
    }
    s
}

/// Shared scan prologue: `s6` = chunks per vector; loop head streams one
/// candidate per iteration with a `MEM_FETCH` window over the whole
/// vector.
fn scan_prologue(chunks: usize, vec_bytes: usize, extra: &str) -> String {
    format!(
        "; driver contract: s1 = shard base, s2 = shard end, s3 = first id\n\
         start:\n\
         \x20   addi s6, s0, {chunks}\n\
         {extra}\
         outer:\n\
         \x20   be   s1, s2, done\n\
         \x20   mem_fetch s1, {vec_bytes}\n\
         \x20   addi s4, s0, 0          ; query pointer (scratchpad)\n\
         \x20   addi s5, s0, 0          ; chunk counter\n"
    )
}

/// Shared scan epilogue: advance the id and loop.
const SCAN_EPILOGUE: &str = "    addi s3, s3, 1\n    j outer\ndone:\n    halt\n";

/// Software-queue prologue line: `s19` = queue base address.
fn swqueue_prologue(qbase: u32) -> String {
    format!("    addi s19, s0, {qbase}     ; software queue base\n")
}

/// Chunked squared-Euclidean accumulation into `v2`.
fn euclidean_inner(vlb: usize) -> String {
    format!(
        "inner:\n\
         \x20   vload v0, s1, 0\n\
         \x20   vload v1, s4, 0\n\
         \x20   vsub  v0, v0, v1\n\
         \x20   vmult v0, v0, v0\n\
         \x20   vadd  v2, v2, v0\n\
         \x20   addi  s1, s1, {vlb}\n\
         \x20   addi  s4, s4, {vlb}\n\
         \x20   addi  s5, s5, 1\n\
         \x20   blt   s5, s6, inner\n"
    )
}

/// Chunked Manhattan accumulation into `v2`; `|d|` is computed
/// branch-free as `(d ^ (d >> 31)) - (d >> 31)` on the vector datapath.
fn manhattan_inner(vlb: usize) -> String {
    format!(
        "inner:\n\
         \x20   vload v0, s1, 0\n\
         \x20   vload v1, s4, 0\n\
         \x20   vsub  v0, v0, v1\n\
         \x20   vsra  v3, v0, 31\n\
         \x20   vxor  v0, v0, v3\n\
         \x20   vsub  v0, v0, v3\n\
         \x20   vadd  v2, v2, v0\n\
         \x20   addi  s1, s1, {vlb}\n\
         \x20   addi  s4, s4, {vlb}\n\
         \x20   addi  s5, s5, 1\n\
         \x20   blt   s5, s6, inner\n"
    )
}

/// Chunked xor-popcount accumulation into `v2` via the fused `VFXP`
/// instruction (32 binary dimensions per lane per instruction — the
/// Table V speedup).
fn hamming_inner(vlb: usize) -> String {
    format!(
        "inner:\n\
         \x20   vload v0, s1, 0\n\
         \x20   vload v1, s4, 0\n\
         \x20   vfxp  v2, v0, v1\n\
         \x20   addi  s1, s1, {vlb}\n\
         \x20   addi  s4, s4, {vlb}\n\
         \x20   addi  s5, s5, 1\n\
         \x20   blt   s5, s6, inner\n"
    )
}

/// Chunked one-pass dot/norm accumulation (`v2` = Σ a·b, `v3` = Σ b·b)
/// for the cosine kernel.
fn cosine_inner(vlb: usize) -> String {
    format!(
        "inner:\n\
         \x20   vload v0, s1, 0\n\
         \x20   vload v1, s4, 0\n\
         \x20   vmult v4, v0, v1\n\
         \x20   vadd  v2, v2, v4\n\
         \x20   vmult v4, v0, v0\n\
         \x20   vadd  v3, v3, v4\n\
         \x20   addi  s1, s1, {vlb}\n\
         \x20   addi  s4, s4, {vlb}\n\
         \x20   addi  s5, s5, 1\n\
         \x20   blt   s5, s6, inner\n"
    )
}

/// Cosine post-loop: lane-reduce dot (`s20`) and candidate norm (`s9`),
/// run the 17-step restoring software division, and leave the
/// sign-corrected distance `1 ∓ cos²` (Q16.16) in `s18` at label
/// `insert`. The caller appends the queue sink.
fn cosine_tail(vl: usize) -> String {
    let mut s = reduce_lanes("v2", vl);
    s.push_str("    add  s20, s7, s0        ; s20 = dot\n");
    s.push_str(&reduce_lanes("v3", vl));
    s.push_str("    add  s9, s7, s0         ; s9 = candidate norm\n");
    s.push_str(
        "    mult s12, s20, s20      ; dot^2 (Q16.16)\n\
         \x20   mult s13, s9, s10       ; denom = |a|^2 * |b|^2\n\
         \x20   addi s14, s0, 0         ; quotient\n\
         \x20   be   s13, s0, divdone   ; zero norm: cos = 0\n\
         \x20   add  s15, s12, s0       ; remainder = numerator\n\
         \x20   addi s16, s0, 0         ; step\n\
         divloop:\n\
         \x20   sl   s14, s14, 1\n\
         \x20   blt  s15, s13, divskip\n\
         \x20   sub  s15, s15, s13\n\
         \x20   ori  s14, s14, 1\n\
         divskip:\n\
         \x20   sl   s15, s15, 1\n\
         \x20   addi s16, s16, 1\n\
         \x20   blt  s16, s17, divloop\n\
         divdone:\n\
         \x20   addi s18, s0, 65536     ; 1.0 in Q16.16\n\
         \x20   blt  s20, s0, negdot\n\
         \x20   sub  s18, s18, s14      ; dist = 1 - cos^2\n\
         \x20   j    insert\n\
         negdot:\n\
         \x20   add  s18, s18, s14      ; dist = 1 + cos^2\n\
         insert:\n",
    );
    s
}

/// Emits the scratchpad software priority-queue insert for the Section
/// V-B ablation: the queue region at `s19` holds `k` `(value, id)` pairs
/// sorted ascending (driver-initialized to `(i32::MAX, -1)`). Each
/// candidate first compares against the cached worst entry; a retained
/// candidate pays a position scan plus an entry-shifting loop — "the
/// overhead of a priority queue insert becomes non-trivial for shorter
/// vectors" (Section III-C).
///
/// `dist` is the scalar register holding the candidate distance; the id
/// is always `s3`. Temporaries `s21`–`s27` are used so the emitter
/// composes with every metric's distance code (the cosine tail keeps
/// `s9`/`s10`/`s12`–`s18`/`s20` live across outer iterations).
fn swqueue_insert(dist: &str, k: usize) -> String {
    assert!(k > 0, "k must be positive");
    let worst_off = 8 * (k - 1);
    format!(
        "    ; software priority-queue insert: {dist} = dist, s3 = id\n\
         \x20   load s21, s19, {worst_off}\n\
         \x20   blt  {dist}, s21, swins\n\
         \x20   j    next\n\
         swins:\n\
         \x20   addi s22, s0, 0         ; scan position\n\
         findpos:\n\
         \x20   sl   s23, s22, 3\n\
         \x20   add  s23, s23, s19\n\
         \x20   load s24, s23, 0\n\
         \x20   blt  {dist}, s24, found\n\
         \x20   addi s22, s22, 1\n\
         \x20   j    findpos\n\
         found:\n\
         \x20   addi s25, s0, {last}    ; shift tail down from the back\n\
         shift:\n\
         \x20   be   s25, s22, place\n\
         \x20   subi s26, s25, 1\n\
         \x20   sl   s27, s26, 3\n\
         \x20   add  s27, s27, s19\n\
         \x20   load s24, s27, 0\n\
         \x20   load s23, s27, 4\n\
         \x20   sl   s21, s25, 3\n\
         \x20   add  s21, s21, s19\n\
         \x20   store s24, s21, 0\n\
         \x20   store s23, s21, 4\n\
         \x20   subi s25, s25, 1\n\
         \x20   j    shift\n\
         place:\n\
         \x20   sl   s21, s22, 3\n\
         \x20   add  s21, s21, s19\n\
         \x20   store {dist}, s21, 0\n\
         \x20   store s3, s21, 4\n\
         next:\n",
        last = k - 1,
    )
}

/// Exact linear scan under squared Euclidean distance (Q16.16).
///
/// The canonical SSAM kernel: per chunk it is load/load/sub/mult/add with
/// full vector chaining, then a lane reduction and a single-cycle
/// hardware-queue insert per candidate.
pub fn euclidean(dims: usize, vl: usize) -> Kernel {
    let dp = pad_to(dims, vl);
    let vlb = vl * 4;
    let mut src = scan_prologue(dp / vl, dp * 4, "    pqueue_reset\n");
    src.push_str("    svmove v2, s0, -1       ; acc = 0\n");
    src.push_str(&euclidean_inner(vlb));
    src.push_str(&reduce_lanes("v2", vl));
    src.push_str("    pqueue_insert s3, s7\n");
    src.push_str(SCAN_EPILOGUE);
    Kernel::build(
        format!("linear_euclidean_vl{vl}"),
        src,
        KernelLayout {
            vec_words: dp,
            vl,
            query_addr: 0,
            swqueue_addr: 0,
            driver_sregs: sreg_mask(&[1, 2, 3]),
        },
    )
}

/// Exact linear scan under Manhattan (L1) distance.
pub fn manhattan(dims: usize, vl: usize) -> Kernel {
    let dp = pad_to(dims, vl);
    let vlb = vl * 4;
    let mut src = scan_prologue(dp / vl, dp * 4, "    pqueue_reset\n");
    src.push_str("    svmove v2, s0, -1\n");
    src.push_str(&manhattan_inner(vlb));
    src.push_str(&reduce_lanes("v2", vl));
    src.push_str("    pqueue_insert s3, s7\n");
    src.push_str(SCAN_EPILOGUE);
    Kernel::build(
        format!("linear_manhattan_vl{vl}"),
        src,
        KernelLayout {
            vec_words: dp,
            vl,
            query_addr: 0,
            swqueue_addr: 0,
            driver_sregs: sreg_mask(&[1, 2, 3]),
        },
    )
}

/// Exact linear scan in Hamming space over binarized codes, using the
/// fused xor-popcount `VFXP` (32 binary dimensions per lane per
/// instruction — the Table V speedup).
///
/// `words` is the packed code length in 32-bit words (bits / 32).
pub fn hamming(words: usize, vl: usize) -> Kernel {
    let wp = pad_to(words, vl);
    let vlb = vl * 4;
    let mut src = scan_prologue(wp / vl, wp * 4, "    pqueue_reset\n");
    src.push_str("    svmove v2, s0, -1       ; per-lane popcount acc\n");
    src.push_str(&hamming_inner(vlb));
    src.push_str(&reduce_lanes("v2", vl));
    src.push_str("    pqueue_insert s3, s7\n");
    src.push_str(SCAN_EPILOGUE);
    Kernel::build(
        format!("linear_hamming_vl{vl}"),
        src,
        KernelLayout {
            vec_words: wp,
            vl,
            query_addr: 0,
            swqueue_addr: 0,
            driver_sregs: sreg_mask(&[1, 2, 3]),
        },
    )
}

/// Exact linear scan under cosine distance.
///
/// Per candidate the kernel accumulates both `Σ a·b` and `Σ b·b` in one
/// pass, then evaluates `cos² = dot² / (‖a‖²·‖b‖²)` with a 17-step
/// restoring software division ("fixed-point division for cosine
/// similarity is performed in software using shifts and subtracts",
/// Section V-D) and inserts the sign-corrected distance
/// `1 ∓ cos²` (Q16.16) — a rank-preserving transform of `1 − cos`.
///
/// Driver contract addition: `s10` = query squared norm (Q16.16).
pub fn cosine(dims: usize, vl: usize) -> Kernel {
    let dp = pad_to(dims, vl);
    let vlb = vl * 4;
    let mut src = scan_prologue(
        dp / vl,
        dp * 4,
        "    pqueue_reset\n    addi s17, s0, 17        ; division steps\n",
    );
    src.push_str("    svmove v2, s0, -1       ; dot acc\n    svmove v3, s0, -1       ; norm acc\n");
    src.push_str(&cosine_inner(vlb));
    src.push_str(&cosine_tail(vl));
    src.push_str("    pqueue_insert s3, s18\n");
    src.push_str(SCAN_EPILOGUE);
    Kernel::build(
        format!("linear_cosine_vl{vl}"),
        src,
        KernelLayout {
            vec_words: dp,
            vl,
            query_addr: 0,
            swqueue_addr: 0,
            driver_sregs: sreg_mask(&[1, 2, 3, 10]),
        },
    )
}

/// Section V-B ablation: Euclidean scan with a scratchpad-resident
/// *software* priority queue instead of the hardware unit (see
/// [`swqueue_insert`] for the queue protocol).
pub fn euclidean_swqueue(dims: usize, vl: usize, k: usize) -> Kernel {
    let dp = pad_to(dims, vl);
    let vlb = vl * 4;
    let mut src = scan_prologue(dp / vl, dp * 4, &swqueue_prologue(SWQUEUE_ADDR));
    src.push_str("    svmove v2, s0, -1\n");
    src.push_str(&euclidean_inner(vlb));
    src.push_str(&reduce_lanes("v2", vl));
    src.push_str(&swqueue_insert("s7", k));
    src.push_str(SCAN_EPILOGUE);
    Kernel::build(
        format!("linear_euclidean_swqueue_vl{vl}_k{k}"),
        src,
        KernelLayout {
            vec_words: dp,
            vl,
            query_addr: 0,
            swqueue_addr: SWQUEUE_ADDR,
            driver_sregs: sreg_mask(&[1, 2, 3]),
        },
    )
}

/// Manhattan scan with the software priority queue (Section V-B ablation
/// across metrics; the device selects this when `use_hw_queue` is off).
pub fn manhattan_swqueue(dims: usize, vl: usize, k: usize) -> Kernel {
    let dp = pad_to(dims, vl);
    let vlb = vl * 4;
    let mut src = scan_prologue(dp / vl, dp * 4, &swqueue_prologue(SWQUEUE_ADDR));
    src.push_str("    svmove v2, s0, -1\n");
    src.push_str(&manhattan_inner(vlb));
    src.push_str(&reduce_lanes("v2", vl));
    src.push_str(&swqueue_insert("s7", k));
    src.push_str(SCAN_EPILOGUE);
    Kernel::build(
        format!("linear_manhattan_swqueue_vl{vl}_k{k}"),
        src,
        KernelLayout {
            vec_words: dp,
            vl,
            query_addr: 0,
            swqueue_addr: SWQUEUE_ADDR,
            driver_sregs: sreg_mask(&[1, 2, 3]),
        },
    )
}

/// Hamming scan with the software priority queue.
pub fn hamming_swqueue(words: usize, vl: usize, k: usize) -> Kernel {
    let wp = pad_to(words, vl);
    let vlb = vl * 4;
    let mut src = scan_prologue(wp / vl, wp * 4, &swqueue_prologue(SWQUEUE_ADDR));
    src.push_str("    svmove v2, s0, -1       ; per-lane popcount acc\n");
    src.push_str(&hamming_inner(vlb));
    src.push_str(&reduce_lanes("v2", vl));
    src.push_str(&swqueue_insert("s7", k));
    src.push_str(SCAN_EPILOGUE);
    Kernel::build(
        format!("linear_hamming_swqueue_vl{vl}_k{k}"),
        src,
        KernelLayout {
            vec_words: wp,
            vl,
            query_addr: 0,
            swqueue_addr: SWQUEUE_ADDR,
            driver_sregs: sreg_mask(&[1, 2, 3]),
        },
    )
}

/// Cosine scan with the software priority queue. The distance lands in
/// `s18` (see [`cosine_tail`]), so the insert emitter is pointed there.
pub fn cosine_swqueue(dims: usize, vl: usize, k: usize) -> Kernel {
    let dp = pad_to(dims, vl);
    let vlb = vl * 4;
    let extra = format!(
        "{}    addi s17, s0, 17        ; division steps\n",
        swqueue_prologue(SWQUEUE_ADDR)
    );
    let mut src = scan_prologue(dp / vl, dp * 4, &extra);
    src.push_str("    svmove v2, s0, -1       ; dot acc\n    svmove v3, s0, -1       ; norm acc\n");
    src.push_str(&cosine_inner(vlb));
    src.push_str(&cosine_tail(vl));
    src.push_str(&swqueue_insert("s18", k));
    src.push_str(SCAN_EPILOGUE);
    Kernel::build(
        format!("linear_cosine_swqueue_vl{vl}_k{k}"),
        src,
        KernelLayout {
            vec_words: dp,
            vl,
            query_addr: 0,
            swqueue_addr: SWQUEUE_ADDR,
            driver_sregs: sreg_mask(&[1, 2, 3, 10]),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::VECTOR_LENGTHS;

    #[test]
    fn all_generators_assemble_across_the_design_sweep() {
        for &vl in &VECTOR_LENGTHS {
            for dims in [vl, 100, 960] {
                assert!(!euclidean(dims, vl).program.is_empty());
                assert!(!manhattan(dims, vl).program.is_empty());
                assert!(!cosine(dims, vl).program.is_empty());
                assert!(!manhattan_swqueue(dims, vl, 10).program.is_empty());
                assert!(!cosine_swqueue(dims, vl, 10).program.is_empty());
            }
            assert!(!hamming(32, vl).program.is_empty());
            assert!(!hamming_swqueue(32, vl, 10).program.is_empty());
            assert!(!euclidean_swqueue(64, vl, 10).program.is_empty());
        }
    }

    #[test]
    fn all_linear_kernels_verify_completely_clean() {
        // Linear scans have fully static control flow and layout: the
        // verifier must find nothing at all, warnings included.
        for &vl in &VECTOR_LENGTHS {
            for dims in [vl, 100, 960] {
                for k in [euclidean(dims, vl), manhattan(dims, vl), cosine(dims, vl)] {
                    let diags = crate::analysis::verify(&k);
                    assert!(diags.is_empty(), "{}: {diags:?}", k.name);
                }
                for k in [
                    manhattan_swqueue(dims, vl, 10),
                    cosine_swqueue(dims, vl, 10),
                ] {
                    let diags = crate::analysis::verify(&k);
                    assert!(diags.is_empty(), "{}: {diags:?}", k.name);
                }
            }
            for k in [
                hamming(32, vl),
                hamming_swqueue(32, vl, 10),
                euclidean_swqueue(64, vl, 10),
            ] {
                let diags = crate::analysis::verify(&k);
                assert!(diags.is_empty(), "{}: {diags:?}", k.name);
            }
        }
    }

    #[test]
    fn padding_rounds_up_to_vector_length() {
        let k = euclidean(100, 8);
        assert_eq!(k.layout.vec_words, 104);
        let k = euclidean(96, 8);
        assert_eq!(k.layout.vec_words, 96);
    }

    #[test]
    fn hamming_kernel_uses_vfxp() {
        let k = hamming(30, 4);
        assert!(k.source.contains("vfxp"));
        assert!(!k.source.contains("vmult"));
    }

    #[test]
    fn cosine_kernel_contains_software_division() {
        let k = cosine(100, 4);
        assert!(k.source.contains("divloop"));
        assert!(k.source.contains("mult s13, s9, s10"));
    }

    #[test]
    fn swqueue_kernels_avoid_hardware_queue() {
        for k in [
            euclidean_swqueue(100, 4, 10),
            manhattan_swqueue(100, 4, 10),
            cosine_swqueue(100, 4, 10),
            hamming_swqueue(4, 4, 10),
        ] {
            assert!(!k.source.contains("pqueue_insert"), "{}", k.name);
            assert_eq!(k.layout.swqueue_addr, SWQUEUE_ADDR, "{}", k.name);
        }
    }

    #[test]
    fn hw_queue_kernels_are_shorter_than_sw_queue() {
        let hw = euclidean(100, 4).program.len();
        let sw = euclidean_swqueue(100, 4, 10).program.len();
        assert!(sw > hw);
    }

    #[test]
    fn swqueue_variants_share_the_metric_distance_loop() {
        // The ablation must isolate the queue: the inner distance loops of
        // the HW- and SW-queue flavors are textually identical.
        let inner = |src: &str| {
            let start = src.find("inner:").expect("inner loop");
            let end = src.find("blt   s5, s6, inner").expect("loop branch");
            src[start..end].to_string()
        };
        assert_eq!(
            inner(&euclidean(64, 4).source),
            inner(&euclidean_swqueue(64, 4, 10).source)
        );
        assert_eq!(
            inner(&manhattan(64, 4).source),
            inner(&manhattan_swqueue(64, 4, 10).source)
        );
        assert_eq!(
            inner(&cosine(64, 4).source),
            inner(&cosine_swqueue(64, 4, 10).source)
        );
        assert_eq!(
            inner(&hamming(8, 4).source),
            inner(&hamming_swqueue(8, 4, 10).source)
        );
    }

    #[test]
    fn kernel_names_encode_parameters() {
        assert_eq!(euclidean(10, 8).name, "linear_euclidean_vl8");
        assert_eq!(
            euclidean_swqueue(10, 2, 6).name,
            "linear_euclidean_swqueue_vl2_k6"
        );
        assert_eq!(
            manhattan_swqueue(10, 2, 6).name,
            "linear_manhattan_swqueue_vl2_k6"
        );
        assert_eq!(
            cosine_swqueue(10, 2, 6).name,
            "linear_cosine_swqueue_vl2_k6"
        );
        assert_eq!(
            hamming_swqueue(2, 2, 6).name,
            "linear_hamming_swqueue_vl2_k6"
        );
    }

    #[test]
    fn optimizer_shrinks_every_linear_kernel() {
        for &vl in &crate::isa::VECTOR_LENGTHS {
            for k in [
                euclidean(100, vl),
                manhattan(100, vl),
                cosine(100, vl),
                hamming(4, vl),
                euclidean_swqueue(100, vl, 10),
            ] {
                assert_eq!(k.opt.instructions_before, k.raw_program.len(), "{}", k.name);
                assert_eq!(k.opt.instructions_after, k.program.len(), "{}", k.name);
                assert!(
                    k.opt.instructions_after < k.opt.instructions_before,
                    "{}: optimizer found nothing to remove",
                    k.name
                );
            }
        }
    }

    #[test]
    fn optimizer_unrolls_the_degenerate_chunk_loop() {
        // dims == vl ⇒ one chunk per vector: the counted inner loop's
        // back edge resolves statically and the counter/cursor
        // bookkeeping folds away — and the result must still verify
        // completely clean.
        for &vl in &crate::isa::VECTOR_LENGTHS {
            let k = euclidean(vl, vl);
            assert!(
                k.opt.branches_resolved >= 1,
                "{}: the chunk-loop back edge should resolve",
                k.name
            );
            assert!(
                k.opt.instructions_after + 4 <= k.opt.instructions_before,
                "{}: expected the loop bookkeeping to fold away ({} -> {})",
                k.name,
                k.opt.instructions_before,
                k.opt.instructions_after
            );
            assert!(
                crate::analysis::verify(&k).is_empty(),
                "{}: optimized kernel must stay diagnostic-free",
                k.name
            );
        }
    }
}
