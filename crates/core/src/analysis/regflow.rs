//! Register def-use dataflow: reads of never-written registers.
//!
//! A forward fixpoint tracks, per program point, which scalar and vector
//! registers are initialized on **all** paths (`must`) and on **at least
//! one** path (`may`). A read whose register is not even may-initialized
//! is a must-fault ([`DiagCode::UninitScalarRead`] /
//! [`DiagCode::UninitVectorRead`]); a read that is may- but not
//! must-initialized depends on the path taken and is a warning.
//!
//! The entry state comes from [`VerifyConfig::driver_sregs`] /
//! [`VerifyConfig::driver_vregs`] — the launch contract between driver
//! and kernel. `s0` is hardwired zero and always initialized.

use crate::isa::inst::Instruction;

use super::cfg::{forward_fixpoint, Cfg};
use super::uses;
use super::{DiagCode, Diagnostic, VerifyConfig};

/// Initialization bitmasks at a program point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RegState {
    /// Scalar registers initialized on every path.
    s_must: u32,
    /// Scalar registers initialized on some path.
    s_may: u32,
    /// Vector registers initialized on every path.
    v_must: u8,
    /// Vector registers initialized on some path.
    v_may: u8,
}

fn transfer(inst: &Instruction, s: &RegState) -> RegState {
    let mut out = *s;
    if let Some(rd) = uses::sreg_write(inst) {
        out.s_must |= 1 << rd.0;
        out.s_may |= 1 << rd.0;
    }
    if let Some(vd) = uses::vreg_write(inst) {
        out.v_must |= 1 << vd.0;
        out.v_may |= 1 << vd.0;
    }
    out
}

/// Runs the pass, appending diagnostics.
pub fn check(
    program: &[Instruction],
    cfg: &Cfg,
    config: &VerifyConfig,
    diags: &mut Vec<Diagnostic>,
) {
    let entry_s = config.driver_sregs | 1; // s0 is hardwired zero
    let entry = RegState {
        s_must: entry_s,
        s_may: entry_s,
        v_must: config.driver_vregs,
        v_may: config.driver_vregs,
    };
    let states = forward_fixpoint(
        program,
        cfg,
        entry,
        |a, b| RegState {
            s_must: a.s_must & b.s_must,
            s_may: a.s_may | b.s_may,
            v_must: a.v_must & b.v_must,
            v_may: a.v_may | b.v_may,
        },
        |_, inst, s| transfer(inst, s),
    );

    for (pc, inst) in program.iter().enumerate() {
        let Some(state) = &states[pc] else { continue };
        uses::for_each_sreg_read(inst, |r| {
            if state.s_may & (1 << r.0) == 0 {
                diags.push(Diagnostic::at(
                    DiagCode::UninitScalarRead,
                    pc as u32,
                    format!("s{} is read but never written on any path to here", r.0),
                ));
            } else if state.s_must & (1 << r.0) == 0 {
                diags.push(Diagnostic::at(
                    DiagCode::MaybeUninitScalarRead,
                    pc as u32,
                    format!("s{} may be uninitialized on some path to here", r.0),
                ));
            }
        });
        uses::for_each_vreg_read(inst, |r| {
            if state.v_may & (1 << r.0) == 0 {
                diags.push(Diagnostic::at(
                    DiagCode::UninitVectorRead,
                    pc as u32,
                    format!("v{} is read but never written on any path to here", r.0),
                ));
            } else if state.v_must & (1 << r.0) == 0 {
                diags.push(Diagnostic::at(
                    DiagCode::MaybeUninitVectorRead,
                    pc as u32,
                    format!("v{} may be uninitialized on some path to here", r.0),
                ));
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn diags_for(src: &str, config: &VerifyConfig) -> Vec<Diagnostic> {
        let program = assemble(src).expect("assembles");
        let mut d = Vec::new();
        let cfg = Cfg::build(&program, &mut d);
        check(&program, &cfg, config, &mut d);
        d
    }

    fn bare(vl: usize) -> VerifyConfig {
        VerifyConfig {
            driver_sregs: 0,
            driver_vregs: 0,
            ..VerifyConfig::permissive(vl)
        }
    }

    #[test]
    fn read_of_never_written_register_is_an_error() {
        let d = diags_for("add s1, s2, s0\nhalt\n", &bare(4));
        assert!(d
            .iter()
            .any(|x| x.code == DiagCode::UninitScalarRead && x.pc == Some(0)));
    }

    #[test]
    fn driver_initialized_registers_are_clean() {
        let mut cfg = bare(4);
        cfg.driver_sregs = 1 << 2;
        let d = diags_for("add s1, s2, s0\nhalt\n", &cfg);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn one_armed_initialization_is_a_warning() {
        // s5 is written only on the taken arm; the join makes the read
        // may-but-not-must initialized.
        let src = "be s0, s0, init\nj use\ninit:\naddi s5, s0, 1\nuse:\nadd s6, s5, s0\nhalt\n";
        let d = diags_for(src, &bare(4));
        assert!(
            d.iter().any(|x| x.code == DiagCode::MaybeUninitScalarRead),
            "{d:?}"
        );
        assert!(!d.iter().any(|x| x.code == DiagCode::UninitScalarRead));
    }

    #[test]
    fn vector_reads_need_vector_writes() {
        let d = diags_for("vadd v1, v2, v3\nhalt\n", &bare(4));
        let uninit = d
            .iter()
            .filter(|x| x.code == DiagCode::UninitVectorRead)
            .count();
        assert_eq!(uninit, 2, "{d:?}");
        let clean = diags_for(
            "svmove v2, s0, -1\nsvmove v3, s0, -1\nvadd v1, v2, v3\nhalt\n",
            &bare(4),
        );
        assert!(clean.is_empty(), "{clean:?}");
    }

    #[test]
    fn write_dominating_read_in_loop_is_clean() {
        let src = "addi s1, s0, 4\nloop:\nsubi s1, s1, 1\nbne s1, s0, loop\nhalt\n";
        assert!(diags_for(src, &bare(4)).is_empty());
    }
}
