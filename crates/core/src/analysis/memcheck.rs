//! Constant propagation and memory/lane immediate checks.
//!
//! A forward constant-propagation over the scalar file (lattice
//! `Const(i32)` ⊑ `Top` per register, `s0` pinned to 0) resolves the
//! address of every `LOAD`/`STORE`/`VLOAD`/`VSTORE` whose base register
//! is constant at that point — which covers the generated kernels'
//! scratchpad traffic, since their buffer addresses are `.equ` constants
//! materialized with `ADDI`. Resolved addresses are checked against the
//! simulator's memory map (scratchpad below
//! [`crate::isa::DRAM_BASE`], [`crate::isa::SCRATCHPAD_BYTES`] capacity,
//! 4-byte alignment, stores never reach DRAM) and against the declared
//! query region. Loop-carried cursors join to `Top` and are left to the
//! runtime — no false positives, no claim of full coverage.
//!
//! The same pass checks immediates that need no propagation at all:
//! `SVMOVE`/`VSMOVE` lane indices against the configured VL and
//! `MEM_FETCH` prefetch lengths.

use crate::isa::inst::Instruction;
use crate::isa::{DRAM_BASE, PQUEUE_DEPTH, SCRATCHPAD_BYTES};

use super::cfg::{forward_fixpoint, Cfg};
use super::constprop::{join, transfer, Consts, Val};
use super::{DiagCode, Diagnostic, VerifyConfig};

/// Checks one resolved constant access of `size` bytes at `addr`.
fn check_access(
    pc: u32,
    addr: u32,
    size: u32,
    is_store: bool,
    config: &VerifyConfig,
    diags: &mut Vec<Diagnostic>,
) {
    if !addr.is_multiple_of(4) {
        diags.push(Diagnostic::at(
            DiagCode::SpadMisaligned,
            pc,
            format!("constant address {addr:#x} is not 4-byte aligned"),
        ));
        return;
    }
    if addr >= DRAM_BASE {
        if is_store {
            // The simulator routes all stores to the scratchpad; a DRAM
            // address faults its bounds check. The dataset is read-only.
            diags.push(Diagnostic::at(
                DiagCode::StoreToDram,
                pc,
                format!("store to constant DRAM address {addr:#x}: the dataset is read-only"),
            ));
        }
        return; // constant DRAM loads: extent is data-dependent, leave to runtime
    }
    let end = addr as u64 + size as u64;
    if end > SCRATCHPAD_BYTES as u64 {
        diags.push(Diagnostic::at(
            DiagCode::SpadOutOfBounds,
            pc,
            format!(
                "access of {size} bytes at constant address {addr:#x} exceeds the \
                 {SCRATCHPAD_BYTES}-byte scratchpad"
            ),
        ));
        return;
    }
    if is_store {
        if let Some((qstart, qend)) = config.query_region {
            if addr < qend && end as u32 > qstart {
                diags.push(Diagnostic::at(
                    DiagCode::StoreClobbersQuery,
                    pc,
                    format!(
                        "store at constant address {addr:#x} overwrites the staged \
                         query region {qstart:#x}..{qend:#x}"
                    ),
                ));
            }
        }
    }
}

/// Runs the pass, appending diagnostics.
pub fn check(
    program: &[Instruction],
    cfg: &Cfg,
    config: &VerifyConfig,
    diags: &mut Vec<Diagnostic>,
) {
    let entry = Consts::entry();
    let states = forward_fixpoint(program, cfg, entry, join, |_, inst, s| transfer(inst, s));

    let vbytes = (config.vl * 4) as u32;
    for (pc, inst) in program.iter().enumerate() {
        let Some(state) = &states[pc] else { continue };
        let pc = pc as u32;
        use Instruction::*;
        match *inst {
            Load {
                rs_base, offset, ..
            }
            | Store {
                rs_base, offset, ..
            } => {
                if let Val::Const(base) = state.get(rs_base.0) {
                    let addr = base.wrapping_add(offset) as u32;
                    let is_store = matches!(inst, Store { .. });
                    check_access(pc, addr, 4, is_store, config, diags);
                }
            }
            VLoad {
                rs_base, offset, ..
            }
            | VStore {
                rs_base, offset, ..
            } => {
                if let Val::Const(base) = state.get(rs_base.0) {
                    let addr = base.wrapping_add(offset) as u32;
                    let is_store = matches!(inst, VStore { .. });
                    check_access(pc, addr, vbytes, is_store, config, diags);
                }
            }
            SvMove { lane, .. } if lane >= 0 && lane as usize >= config.vl => {
                diags.push(Diagnostic::at(
                    DiagCode::LaneOutOfRange,
                    pc,
                    format!("lane {lane} is out of range for VL={}", config.vl),
                ));
            }
            VsMove { lane, .. } if lane as usize >= config.vl => {
                diags.push(Diagnostic::at(
                    DiagCode::LaneOutOfRange,
                    pc,
                    format!("lane {lane} is out of range for VL={}", config.vl),
                ));
            }
            MemFetch { len, .. } if len <= 0 => {
                diags.push(Diagnostic::at(
                    DiagCode::FetchLenNonPositive,
                    pc,
                    format!("MEM_FETCH with non-positive length {len} prefetches nothing"),
                ));
            }
            PqueueLoad { rs_idx, .. } => {
                if let Val::Const(idx) = state.get(rs_idx.0) {
                    if idx < 0 || idx as usize >= PQUEUE_DEPTH {
                        diags.push(Diagnostic::at(
                            DiagCode::PqueueLoadOutOfRange,
                            pc,
                            format!(
                                "PQUEUE_LOAD index {idx} is outside the \
                                 {PQUEUE_DEPTH}-entry hardware queue"
                            ),
                        ));
                    }
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn diags_for(src: &str) -> Vec<Diagnostic> {
        let program = assemble(src).expect("assembles");
        let mut d = Vec::new();
        let cfg = Cfg::build(&program, &mut d);
        check(&program, &cfg, &VerifyConfig::permissive(4), &mut d);
        d
    }

    #[test]
    fn in_bounds_constant_store_is_clean() {
        assert!(diags_for("addi s1, s0, 1024\nstore s2, s1, 8\nhalt\n").is_empty());
    }

    #[test]
    fn out_of_bounds_constant_access_is_an_error() {
        let d = diags_for("addi s1, s0, 32768\nload s2, s1, 0\nhalt\n");
        assert!(
            d.iter()
                .any(|x| x.code == DiagCode::SpadOutOfBounds && x.pc == Some(1)),
            "{d:?}"
        );
    }

    #[test]
    fn vector_access_checks_the_whole_span() {
        // VL=4 ⇒ 16 bytes; base 32760 + 16 crosses the 32768 boundary.
        let d = diags_for("addi s1, s0, 32760\nvload v0, s1, 0\nhalt\n");
        assert!(
            d.iter().any(|x| x.code == DiagCode::SpadOutOfBounds),
            "{d:?}"
        );
        // ...while the same base as a scalar load is fine.
        assert!(diags_for("addi s1, s0, 32760\nload s2, s1, 0\nhalt\n").is_empty());
    }

    #[test]
    fn misaligned_constant_address_is_an_error() {
        let d = diags_for("addi s1, s0, 6\nload s2, s1, 0\nhalt\n");
        assert!(
            d.iter().any(|x| x.code == DiagCode::SpadMisaligned),
            "{d:?}"
        );
    }

    #[test]
    fn store_to_dram_is_an_error_but_load_is_not() {
        let base = crate::isa::DRAM_BASE;
        let d = diags_for(&format!("addi s1, s0, {base}\nstore s2, s1, 0\nhalt\n"));
        assert!(d.iter().any(|x| x.code == DiagCode::StoreToDram), "{d:?}");
        assert!(diags_for(&format!("addi s1, s0, {base}\nload s2, s1, 0\nhalt\n")).is_empty());
    }

    #[test]
    fn loop_carried_cursor_joins_to_top_and_is_not_flagged() {
        // s1 walks forward by 4 each iteration: constant at entry, Top at
        // the join — the analysis stays silent rather than guessing.
        let src = "addi s1, s0, 0\nloop:\nload s2, s1, 0\naddi s1, s1, 4\nbne s1, s3, loop\nhalt\n";
        assert!(diags_for(src).is_empty());
    }

    #[test]
    fn store_into_query_region_is_a_warning() {
        let program = assemble("addi s1, s0, 8\nstore s2, s1, 0\nhalt\n").expect("assembles");
        let mut d = Vec::new();
        let cfg = Cfg::build(&program, &mut d);
        let config = VerifyConfig {
            query_region: Some((0, 64)),
            ..VerifyConfig::permissive(4)
        };
        check(&program, &cfg, &config, &mut d);
        assert!(
            d.iter().any(|x| x.code == DiagCode::StoreClobbersQuery),
            "{d:?}"
        );
    }

    #[test]
    fn lane_immediates_are_checked_against_vl() {
        let d = diags_for("svmove v0, s1, 5\nhalt\n"); // VL=4
        assert!(
            d.iter().any(|x| x.code == DiagCode::LaneOutOfRange),
            "{d:?}"
        );
        assert!(diags_for("svmove v0, s1, 3\nhalt\n").is_empty());
        let d = diags_for("svmove v0, s1, -1\nvsmove s2, v0, 4\nhalt\n");
        assert!(
            d.iter().any(|x| x.code == DiagCode::LaneOutOfRange),
            "{d:?}"
        );
    }

    #[test]
    fn pqueue_load_constant_index_is_range_checked() {
        let d = diags_for("addi s1, s0, 16\npqueue_load s2, s1, id\nhalt\n");
        assert!(
            d.iter().any(|x| x.code == DiagCode::PqueueLoadOutOfRange),
            "{d:?}"
        );
        assert!(diags_for("addi s1, s0, 15\npqueue_load s2, s1, id\nhalt\n").is_empty());
    }

    #[test]
    fn mem_fetch_zero_length_is_a_warning() {
        let d = diags_for("mem_fetch s1, 0\nhalt\n");
        assert!(
            d.iter().any(|x| x.code == DiagCode::FetchLenNonPositive),
            "{d:?}"
        );
    }
}
