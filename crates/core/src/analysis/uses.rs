//! Per-instruction register read/write sets.
//!
//! One place encodes which architectural registers each Table II
//! instruction reads and writes; both the static def-use analysis
//! ([`super::regflow`]) and the simulator's optional uninitialized-read
//! trap consume it, so the two can never disagree about an instruction's
//! operands.

use crate::isa::inst::Instruction;
use crate::isa::reg::{SReg, VReg};

/// Calls `f` for every scalar register the instruction *reads*.
///
/// Read-modify-write operands count as reads (`SFXP` reads its
/// accumulator `rd`). Branch comparands, store values, and address bases
/// are all reads.
pub fn for_each_sreg_read(inst: &Instruction, mut f: impl FnMut(SReg)) {
    use Instruction::*;
    match *inst {
        SAlu { rs1, rs2, .. } => {
            f(rs1);
            f(rs2);
        }
        SAluImm { rs1, .. } | SUnary { rs1, .. } => f(rs1),
        Branch { rs1, rs2, .. } => {
            f(rs1);
            f(rs2);
        }
        Push { rs1 } => f(rs1),
        PqueueInsert { rs_id, rs_val } => {
            f(rs_id);
            f(rs_val);
        }
        PqueueLoad { rs_idx, .. } => f(rs_idx),
        Sfxp { rd, rs1, rs2 } => {
            f(rd);
            f(rs1);
            f(rs2);
        }
        Load { rs_base, .. } | MemFetch { rs_base, .. } => f(rs_base),
        Store {
            rs_val, rs_base, ..
        } => {
            f(rs_val);
            f(rs_base);
        }
        SvMove { rs1, .. } => f(rs1),
        VLoad { rs_base, .. } | VStore { rs_base, .. } => f(rs_base),
        Jump { .. }
        | Pop { .. }
        | PqueueReset
        | VsMove { .. }
        | Halt
        | VAlu { .. }
        | VAluImm { .. }
        | VUnary { .. }
        | Vfxp { .. } => {}
    }
}

/// Calls `f` for every vector register the instruction *reads*.
///
/// A single-lane `SVMOVE` (lane ≥ 0) counts as a read of its destination:
/// it merges one lane into the existing register, so the other lanes'
/// prior contents become observable. `VFXP` likewise reads its
/// accumulator.
pub fn for_each_vreg_read(inst: &Instruction, mut f: impl FnMut(VReg)) {
    use Instruction::*;
    match *inst {
        SvMove { vd, lane, .. } if lane >= 0 => f(vd),
        VsMove { vs1, .. } => f(vs1),
        VAlu { vs1, vs2, .. } => {
            f(vs1);
            f(vs2);
        }
        VAluImm { vs1, .. } | VUnary { vs1, .. } => f(vs1),
        Vfxp { vd, vs1, vs2 } => {
            f(vd);
            f(vs1);
            f(vs2);
        }
        VStore { vs, .. } => f(vs),
        _ => {}
    }
}

/// The scalar register the instruction writes, if any.
pub fn sreg_write(inst: &Instruction) -> Option<SReg> {
    use Instruction::*;
    match *inst {
        SAlu { rd, .. }
        | SAluImm { rd, .. }
        | SUnary { rd, .. }
        | Pop { rd }
        | PqueueLoad { rd, .. }
        | Sfxp { rd, .. }
        | Load { rd, .. }
        | VsMove { rd, .. } => Some(rd),
        _ => None,
    }
}

/// The vector register the instruction writes, if any.
pub fn vreg_write(inst: &Instruction) -> Option<VReg> {
    use Instruction::*;
    match *inst {
        SvMove { vd, .. }
        | VAlu { vd, .. }
        | VAluImm { vd, .. }
        | VUnary { vd, .. }
        | Vfxp { vd, .. }
        | VLoad { vd, .. } => Some(vd),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::inst::AluOp;

    fn sreads(inst: &Instruction) -> Vec<u8> {
        let mut v = Vec::new();
        for_each_sreg_read(inst, |r| v.push(r.0));
        v
    }

    fn vreads(inst: &Instruction) -> Vec<u8> {
        let mut v = Vec::new();
        for_each_vreg_read(inst, |r| v.push(r.0));
        v
    }

    #[test]
    fn sfxp_reads_its_accumulator() {
        let i = Instruction::Sfxp {
            rd: SReg(3),
            rs1: SReg(4),
            rs2: SReg(5),
        };
        assert_eq!(sreads(&i), vec![3, 4, 5]);
        assert_eq!(sreg_write(&i), Some(SReg(3)));
    }

    #[test]
    fn lane_svmove_reads_the_destination_broadcast_does_not() {
        let lane = Instruction::SvMove {
            vd: VReg(2),
            rs1: SReg(1),
            lane: 1,
        };
        let bcast = Instruction::SvMove {
            vd: VReg(2),
            rs1: SReg(1),
            lane: -1,
        };
        assert_eq!(vreads(&lane), vec![2]);
        assert!(vreads(&bcast).is_empty());
        assert_eq!(vreg_write(&bcast), Some(VReg(2)));
    }

    #[test]
    fn store_reads_value_and_base_writes_nothing() {
        let i = Instruction::Store {
            rs_val: SReg(7),
            rs_base: SReg(9),
            offset: 4,
        };
        assert_eq!(sreads(&i), vec![7, 9]);
        assert_eq!(sreg_write(&i), None);
    }

    #[test]
    fn alu_shapes() {
        let i = Instruction::SAlu {
            op: AluOp::Add,
            rd: SReg(1),
            rs1: SReg(2),
            rs2: SReg(3),
        };
        assert_eq!(sreads(&i), vec![2, 3]);
        assert_eq!(sreg_write(&i), Some(SReg(1)));
        let v = Instruction::VAlu {
            op: AluOp::Add,
            vd: VReg(1),
            vs1: VReg(2),
            vs2: VReg(3),
        };
        assert_eq!(vreads(&v), vec![2, 3]);
        assert_eq!(vreg_write(&v), Some(VReg(1)));
    }
}
