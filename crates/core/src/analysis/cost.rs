//! Static cost and bottleneck model over kernel programs.
//!
//! The second client of the dataflow framework (the optimizer in
//! [`super::opt`] is the first): given a kernel, the configured vector
//! length, and the number of database vectors `n` a shard holds, predict
//! — without running the simulator — how many cycles and DRAM bytes one
//! [`crate::sim::ProcessingUnit`] will spend scanning the shard, and
//! whether the vault ends up memory- or compute-bound under the same
//! roofline the telemetry layer applies
//! ([`crate::telemetry::VaultAccount::from_stats`] /
//! [`crate::telemetry::critical_path`]).
//!
//! Every quantity is an [`Interval`]: for the straight-line linear
//! kernels (Euclidean / Manhattan / Hamming) every branch, trip count,
//! and memory region resolves statically and the interval collapses to
//! an exact point that must equal the simulator's [`crate::sim::RunStats`]
//! bit for bit — the cross-check the `cost_model` integration tests
//! enforce. Data-dependent control flow (the cosine division, software-
//! queue insertion walks, tree traversals) widens the interval instead of
//! guessing; an unbounded walk reports `max = None`.
//!
//! The machinery, per program:
//!
//! 1. a forward symbolic fixpoint ([`Sym`]) tracks, per scalar register,
//!    exact constants, "entry value of `sN` plus a constant" provenance,
//!    and scratchpad/DRAM region membership;
//! 2. registers whose *entry* value feeds a `MEM_FETCH` base are the
//!    driver's DRAM cursors — that is how the model learns the driver
//!    contract (`s1` = shard base) without being told;
//! 3. [`super::loops`] recovers the loop forest; trip counts come from
//!    the counted-loop idiom, or from `n` for the top-level scan loop
//!    (recognized by its exit test comparing two driver pointers);
//! 4. per-instruction execution counts follow from dominance within the
//!    loop nest, and per-instruction latencies from the same
//!    [`LatencyModel`] the simulator charges.

use crate::isa::inst::{AluOp, Instruction};
use crate::isa::reg::NUM_SCALAR_REGS;
use crate::isa::DRAM_BASE;
use crate::kernels::Kernel;
use crate::sim::pu::RunStats;
use crate::sim::LatencyModel;

use super::cfg::{forward_fixpoint, Cfg};
use super::loops::{counted_trip, Dominators, Loop, LoopForest};

/// A closed interval over `u64` with an optional (possibly unbounded)
/// upper end. `max == None` means "no static bound".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Inclusive lower bound.
    pub min: u64,
    /// Inclusive upper bound; `None` = unbounded.
    pub max: Option<u64>,
}

impl Interval {
    /// The exact point interval `[v, v]`.
    pub const fn exact(v: u64) -> Self {
        Self {
            min: v,
            max: Some(v),
        }
    }

    /// `[0, 0]`.
    pub const ZERO: Self = Self::exact(0);

    /// `[1, 1]`.
    pub const ONE: Self = Self::exact(1);

    /// `[0, 1]` — executes at most once.
    pub const AT_MOST_ONCE: Self = Self {
        min: 0,
        max: Some(1),
    };

    /// Whether the interval is a single point.
    pub fn is_exact(&self) -> bool {
        self.max == Some(self.min)
    }

    /// Multiplies both ends by a scalar.
    pub fn scale(self, k: u64) -> Self {
        self * Self::exact(k)
    }
}

/// Interval addition (saturating).
impl std::ops::Add for Interval {
    type Output = Self;
    fn add(self, o: Self) -> Self {
        Self {
            min: self.min.saturating_add(o.min),
            max: match (self.max, o.max) {
                (Some(a), Some(b)) => Some(a.saturating_add(b)),
                _ => None,
            },
        }
    }
}

/// Interval multiplication (saturating). An exactly-zero factor
/// annihilates an unbounded one.
impl std::ops::Mul for Interval {
    type Output = Self;
    fn mul(self, o: Self) -> Self {
        if self == Self::ZERO || o == Self::ZERO {
            return Self::ZERO;
        }
        Self {
            min: self.min.saturating_mul(o.min),
            max: match (self.max, o.max) {
                (Some(a), Some(b)) => Some(a.saturating_mul(b)),
                _ => None,
            },
        }
    }
}

/// Roofline parameters mirroring [`crate::telemetry::VaultAccount::from_stats`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostParams {
    /// Per-instruction latencies (must match the simulator's).
    pub latency: LatencyModel,
    /// Logic-layer clock, Hz.
    pub freq_hz: f64,
    /// Sustained vault bandwidth, bytes/second.
    pub vault_bandwidth: f64,
    /// Processing units sharing the vault scan.
    pub pus: usize,
}

impl Default for CostParams {
    fn default() -> Self {
        Self {
            latency: LatencyModel::default(),
            freq_hz: 1.0e9,
            vault_bandwidth: 10.0e9,
            pus: 1,
        }
    }
}

/// Which roofline term dominates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundClass {
    /// Compute cycles set the pace (`comp_seconds > mem_seconds`).
    Compute,
    /// Vault bandwidth sets the pace.
    Memory,
}

/// The static prediction for one kernel run over a shard of `n` vectors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostEstimate {
    /// Instructions retired.
    pub instructions: Interval,
    /// Simulated cycles.
    pub cycles: Interval,
    /// Bytes read from DRAM.
    pub dram_bytes: Interval,
    /// All three intervals collapsed to exact points.
    pub exact: bool,
    /// `cycles.min / (pus · freq)` — lower compute-roofline time.
    pub comp_seconds: f64,
    /// Upper compute-roofline time, when cycles are bounded.
    pub comp_seconds_max: Option<f64>,
    /// `dram_bytes.min / vault_bandwidth` — lower memory-roofline time.
    pub mem_seconds: f64,
    /// Upper memory-roofline time, when traffic is bounded.
    pub mem_seconds_max: Option<f64>,
    /// Definite classification, when every point of the interval box
    /// classifies the same way; `None` when the bound is data-dependent.
    pub bound: Option<BoundClass>,
    /// The complete simulator counter set, synthesized statically —
    /// present only when *every* counter resolves exactly: each
    /// instruction's execution count is a point interval, each branch's
    /// taken/untaken split is known, and each load's region and
    /// hit-or-miss outcome is determined. For the straight-line linear
    /// kernels this must equal [`crate::sim::RunStats`] from an actual
    /// run bit for bit (cross-checked in tests and by the fast-path
    /// equivalence suite); any data-dependent control flow or ambiguous
    /// access yields `None` rather than a guess.
    pub stats: Option<RunStats>,
}

/// Estimates `kernel` at vector length `vl` over a shard of `n` vectors
/// with default roofline parameters.
pub fn estimate(kernel: &Kernel, vl: usize, n: u64) -> CostEstimate {
    estimate_with(&kernel.program, vl, n, &CostParams::default())
}

// ---------------------------------------------------------------------------
// Symbolic register domain: constants, entry-value provenance, regions.
// ---------------------------------------------------------------------------

/// Abstract scalar value. `Entry(r)` means "the driver-provided entry
/// value of `sN`, plus some constant" — the provenance that survives the
/// pointer arithmetic of a scan cursor. `Spad`/`Dram` are unknown
/// addresses of known region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Sym {
    Known(i32),
    Entry(u8),
    Spad,
    Dram,
    Top,
}

fn addr_is_dram(v: i32) -> bool {
    (v as u32) >= DRAM_BASE
}

impl Sym {
    fn region(self) -> Option<bool> {
        match self {
            Sym::Known(v) => Some(addr_is_dram(v)),
            Sym::Spad => Some(false),
            Sym::Dram => Some(true),
            _ => None,
        }
    }
}

#[derive(Clone, PartialEq)]
struct SymState([Sym; NUM_SCALAR_REGS]);

impl SymState {
    fn entry() -> Self {
        let mut s = [Sym::Top; NUM_SCALAR_REGS];
        for (r, slot) in s.iter_mut().enumerate() {
            *slot = Sym::Entry(r as u8);
        }
        s[0] = Sym::Known(0);
        Self(s)
    }

    fn get(&self, r: u8) -> Sym {
        self.0[r as usize]
    }

    fn set(&mut self, r: u8, v: Sym) {
        if r != 0 {
            self.0[r as usize] = v;
        }
    }
}

fn sym_join_val(a: Sym, b: Sym) -> Sym {
    if a == b {
        return a;
    }
    match (a.region(), b.region()) {
        (Some(x), Some(y)) if x == y => {
            if x {
                Sym::Dram
            } else {
                Sym::Spad
            }
        }
        _ => Sym::Top,
    }
}

fn sym_join(a: &SymState, b: &SymState) -> SymState {
    let mut out = a.clone();
    for (o, &bv) in out.0.iter_mut().zip(b.0.iter()) {
        *o = sym_join_val(*o, bv);
    }
    out
}

/// Pointer-plus-constant algebra for additive ops; full evaluation for
/// constant operands; everything else falls to `Top`.
fn sym_alu(op: AluOp, a: Sym, b: Sym) -> Sym {
    match (a, b) {
        (Sym::Known(x), Sym::Known(y)) => Sym::Known(op.eval(x, y)),
        _ => match op {
            AluOp::Add => match (a, b) {
                (Sym::Entry(r), Sym::Known(_)) | (Sym::Known(_), Sym::Entry(r)) => Sym::Entry(r),
                (Sym::Spad, Sym::Known(_)) | (Sym::Known(_), Sym::Spad) => Sym::Spad,
                (Sym::Dram, Sym::Known(_)) | (Sym::Known(_), Sym::Dram) => Sym::Dram,
                _ => Sym::Top,
            },
            AluOp::Sub => match (a, b) {
                (Sym::Entry(r), Sym::Known(_)) => Sym::Entry(r),
                (Sym::Spad, Sym::Known(_)) => Sym::Spad,
                (Sym::Dram, Sym::Known(_)) => Sym::Dram,
                _ => Sym::Top,
            },
            _ => Sym::Top,
        },
    }
}

fn sym_transfer(inst: &Instruction, s: &SymState) -> SymState {
    let mut out = s.clone();
    match *inst {
        Instruction::SAlu { op, rd, rs1, rs2 } => {
            out.set(rd.0, sym_alu(op, s.get(rs1.0), s.get(rs2.0)));
        }
        Instruction::SAluImm { op, rd, rs1, imm } => {
            out.set(rd.0, sym_alu(op, s.get(rs1.0), Sym::Known(imm)));
        }
        Instruction::SUnary { op, rd, rs1 } => {
            let v = match s.get(rs1.0) {
                Sym::Known(x) => Sym::Known(op.eval(x)),
                _ => Sym::Top,
            };
            out.set(rd.0, v);
        }
        Instruction::Load { rd, .. }
        | Instruction::Pop { rd }
        | Instruction::PqueueLoad { rd, .. }
        | Instruction::VsMove { rd, .. } => out.set(rd.0, Sym::Top),
        Instruction::Sfxp { rd, .. } => out.set(rd.0, Sym::Top),
        _ => {}
    }
    out
}

// ---------------------------------------------------------------------------
// Execution-count model over the loop forest.
// ---------------------------------------------------------------------------

#[derive(Clone, Copy)]
struct LoopMeta {
    /// Body executions per entry.
    trips: Interval,
    /// Total entry events.
    entries: Interval,
    /// Header is a conditional branch with an edge leaving the body.
    top_test: bool,
    /// The loop's only exit edges come from the header (top-test shape).
    exact_header_exit: bool,
    /// Single conditional latch and the loop's only exit edges come from
    /// it (bottom-test counted shape).
    exact_latch: bool,
}

struct CountModel<'a> {
    forest: &'a LoopForest,
    metas: Vec<LoopMeta>,
    dom: &'a Dominators,
    terminals: Vec<u32>,
}

impl CountModel<'_> {
    fn dominates_all(&self, pc: u32, targets: &[u32]) -> bool {
        !targets.is_empty() && targets.iter().all(|&t| self.dom.dominates(pc, t))
    }

    /// Execution-count interval of `pc`.
    fn count(&self, pc: u32, cfg: &Cfg) -> Interval {
        if !cfg.reachable[pc as usize] {
            return Interval::ZERO;
        }
        let Some(li) = self.forest.innermost[pc as usize] else {
            return if self.dominates_all(pc, &self.terminals) {
                Interval::ONE
            } else {
                Interval::AT_MOST_ONCE
            };
        };
        let lp = &self.forest.loops[li];
        let m = self.metas[li];
        let base = m.entries * m.trips;
        if pc == lp.header && m.top_test {
            // The header of a top-tested loop runs once more than the
            // body: t iterations plus the exiting test.
            let full = base + m.entries;
            if m.exact_header_exit {
                full
            } else {
                Interval {
                    min: base.min,
                    max: full.max,
                }
            }
        } else if self.dominates_all(pc, &lp.latches) {
            base
        } else {
            let cap = if m.top_test { base + m.entries } else { base };
            Interval {
                min: 0,
                max: cap.max,
            }
        }
    }
}

/// Edges `pc → succ` with `pc` in the body and `succ` outside it.
fn exit_pcs(lp: &Loop, cfg: &Cfg) -> Vec<u32> {
    let mut out = Vec::new();
    for (pc, succs) in cfg.succs.iter().enumerate() {
        if !lp.contains(pc as u32) {
            continue;
        }
        if succs.iter().any(|&s| !lp.contains(s)) {
            out.push(pc as u32);
        }
    }
    out
}

/// Recognizes the emitters' top-level scan idiom: an exit test comparing
/// two distinct driver-entry registers, at least one of which is a DRAM
/// cursor (its entry value feeds a `MEM_FETCH`). Such a loop walks the
/// shard base-to-end and runs exactly once per database vector.
fn is_scan_loop(
    exits: &[u32],
    program: &[Instruction],
    syms: &[Option<SymState>],
    dram_regs: u32,
) -> bool {
    exits.iter().any(|&pc| {
        let Instruction::Branch { rs1, rs2, .. } = program[pc as usize] else {
            return false;
        };
        let Some(st) = &syms[pc as usize] else {
            return false;
        };
        match (st.get(rs1.0), st.get(rs2.0)) {
            (Sym::Entry(a), Sym::Entry(b)) => {
                a != b && (dram_regs & (1 << a) != 0 || dram_regs & (1 << b) != 0)
            }
            _ => false,
        }
    })
}

// ---------------------------------------------------------------------------
// The estimator.
// ---------------------------------------------------------------------------

/// Estimates an arbitrary program (the kernel-independent entry point —
/// `ssam-lint --cost` feeds raw and optimized images through it).
pub fn estimate_with(
    program: &[Instruction],
    vl: usize,
    n: u64,
    params: &CostParams,
) -> CostEstimate {
    let mut sink = Vec::new();
    let cfg = Cfg::build(program, &mut sink);
    let dom = Dominators::compute(&cfg);
    let forest = LoopForest::build(&cfg, &dom);
    let lat = params.latency;

    // Symbolic register states (in-states per pc).
    let syms = forward_fixpoint(program, &cfg, SymState::entry(), sym_join, |_, inst, s| {
        sym_transfer(inst, s)
    });

    // Driver DRAM cursors: entry registers whose value reaches a
    // MEM_FETCH base.
    let mut dram_regs = 0u32;
    for (pc, inst) in program.iter().enumerate() {
        if let Instruction::MemFetch { rs_base, .. } = inst {
            if let Some(st) = &syms[pc] {
                if let Sym::Entry(r) = st.get(rs_base.0) {
                    dram_regs |= 1 << r;
                }
            }
        }
    }

    // Loop metadata, outermost first (parents precede children in the
    // reverse of the innermost-first order).
    let mut metas = vec![
        LoopMeta {
            trips: Interval::ZERO,
            entries: Interval::ZERO,
            top_test: false,
            exact_header_exit: false,
            exact_latch: false,
        };
        forest.loops.len()
    ];
    let terminals: Vec<u32> = (0..program.len() as u32)
        .filter(|&pc| cfg.reachable[pc as usize] && cfg.succs[pc as usize].is_empty())
        .collect();
    for i in (0..forest.loops.len()).rev() {
        let lp = &forest.loops[i];
        let exits = exit_pcs(lp, &cfg);
        let header_is_branch = matches!(program[lp.header as usize], Instruction::Branch { .. });
        let top_test = header_is_branch && exits.contains(&lp.header);
        let exact_header_exit = top_test && exits.iter().all(|&e| e == lp.header);
        let exact_latch = match lp.latches[..] {
            [l] => {
                matches!(program[l as usize], Instruction::Branch { .. })
                    && exits.iter().all(|&e| e == l)
            }
            _ => false,
        };
        let trips = match counted_trip(program, &cfg, lp) {
            Some(t) => Interval::exact(t),
            None if lp.parent.is_none() && is_scan_loop(&exits, program, &syms, dram_regs) => {
                Interval::exact(n)
            }
            None => Interval { min: 0, max: None },
        };
        let entries = match lp.parent {
            None => {
                if !terminals.is_empty() && terminals.iter().all(|&t| dom.dominates(lp.header, t)) {
                    Interval::ONE
                } else {
                    Interval::AT_MOST_ONCE
                }
            }
            Some(p) => {
                let base = metas[p].entries * metas[p].trips;
                let parent = &forest.loops[p];
                if parent.latches.iter().all(|&l| dom.dominates(lp.header, l)) {
                    base
                } else {
                    Interval {
                        min: 0,
                        max: base.max,
                    }
                }
            }
        };
        metas[i] = LoopMeta {
            trips,
            entries,
            top_test,
            exact_header_exit,
            exact_latch,
        };
    }

    let model = CountModel {
        forest: &forest,
        metas,
        dom: &dom,
        terminals,
    };

    // MEM_FETCH sites, for prefetch-coverage dominance.
    let fetches: Vec<u32> = (0..program.len() as u32)
        .filter(|&pc| {
            cfg.reachable[pc as usize]
                && matches!(program[pc as usize], Instruction::MemFetch { .. })
        })
        .collect();
    let has_fetch = !fetches.is_empty();
    let covered = |pc: u32| fetches.iter().any(|&m| dom.dominates(m, pc));

    // Where one load lands, and — for DRAM — whether it hits an open
    // prefetch window. `DramAmbiguous` means "definitely DRAM but the
    // hit/miss outcome is data-dependent".
    #[derive(Clone, Copy, PartialEq)]
    enum LoadClass {
        Spad,
        DramHit,
        DramMiss,
        DramAmbiguous,
        Unknown,
    }
    let classify_load = |pc: u32, base: Sym, offset: i32| -> LoadClass {
        let region = match base {
            Sym::Known(v) => Some(addr_is_dram(v.wrapping_add(offset))),
            Sym::Entry(r) => {
                if dram_regs & (1 << r) != 0 {
                    Some(true)
                } else {
                    None
                }
            }
            other => other.region(),
        };
        match region {
            Some(false) => LoadClass::Spad,
            Some(true) if covered(pc) => LoadClass::DramHit,
            Some(true) if !has_fetch => LoadClass::DramMiss,
            Some(true) => LoadClass::DramAmbiguous,
            None => LoadClass::Unknown,
        }
    };

    // Latency interval of one load, plus its DRAM traffic, by class.
    let spad_or_hit = lat.scratchpad.min(lat.dram_hit);
    let load_profile = |class: LoadClass, width: u64| -> (Interval, Interval) {
        match class {
            LoadClass::Spad => (Interval::exact(lat.scratchpad), Interval::ZERO),
            LoadClass::DramHit => (Interval::exact(lat.dram_hit), Interval::exact(width)),
            LoadClass::DramMiss => (Interval::exact(lat.dram_miss), Interval::exact(width)),
            LoadClass::DramAmbiguous => (
                Interval {
                    min: lat.dram_hit.min(lat.dram_miss),
                    max: Some(lat.dram_hit.max(lat.dram_miss)),
                },
                Interval::exact(width),
            ),
            LoadClass::Unknown => (
                Interval {
                    min: spad_or_hit.min(lat.dram_miss),
                    max: Some(lat.scratchpad.max(lat.dram_hit).max(lat.dram_miss)),
                },
                Interval {
                    min: 0,
                    max: Some(width),
                },
            ),
        }
    };

    let mut instructions = Interval::ZERO;
    let mut cycles = Interval::ZERO;
    let mut dram_bytes = Interval::ZERO;
    let branch_lo = lat.alu.min(lat.branch_taken);
    let branch_hi = lat.alu.max(lat.branch_taken);

    // Full counter synthesis alongside the intervals: `ctr` accumulates
    // exactly what `ProcessingUnit::step` would, per instruction class,
    // and stays meaningful only while `counters_exact` holds. The
    // cycles / instructions / DRAM-byte fields are filled from the
    // intervals after the loop.
    let mut ctr = RunStats::default();
    let mut counters_exact = true;
    let vlw = vl as u64;

    for (pc_us, inst) in program.iter().enumerate() {
        let pc = pc_us as u32;
        let c = model.count(pc, &cfg);
        if c == Interval::ZERO {
            continue;
        }
        instructions = instructions + c;
        let cx = if c.is_exact() {
            c.min
        } else {
            counters_exact = false;
            0
        };
        let contrib = match *inst {
            Instruction::SAlu { op, .. } => {
                ctr.scalar_alu_ops += cx;
                ctr.regfile_accesses += 3 * cx;
                c.scale(if op == AluOp::Mult { lat.mult } else { lat.alu })
            }
            Instruction::SAluImm { op, .. } => {
                ctr.scalar_alu_ops += cx;
                ctr.regfile_accesses += 2 * cx;
                c.scale(if op == AluOp::Mult { lat.mult } else { lat.alu })
            }
            Instruction::SUnary { .. } => {
                ctr.scalar_alu_ops += cx;
                ctr.regfile_accesses += 2 * cx;
                c.scale(lat.alu)
            }
            Instruction::Sfxp { .. } => {
                ctr.scalar_alu_ops += cx;
                ctr.regfile_accesses += 4 * cx;
                c.scale(lat.alu)
            }
            Instruction::VAlu { op, .. } => {
                ctr.vector_ops += cx;
                ctr.vector_lane_ops += vlw * cx;
                ctr.regfile_accesses += 3 * cx;
                c.scale(if op == AluOp::Mult {
                    lat.vmult
                } else {
                    lat.alu
                })
            }
            Instruction::VAluImm { op, .. } => {
                ctr.vector_ops += cx;
                ctr.vector_lane_ops += vlw * cx;
                ctr.regfile_accesses += 2 * cx;
                c.scale(if op == AluOp::Mult {
                    lat.vmult
                } else {
                    lat.alu
                })
            }
            Instruction::VUnary { .. } => {
                ctr.vector_ops += cx;
                ctr.vector_lane_ops += vlw * cx;
                ctr.regfile_accesses += 2 * cx;
                c.scale(lat.alu)
            }
            Instruction::Vfxp { .. } => {
                ctr.vector_ops += cx;
                ctr.vector_lane_ops += vlw * cx;
                ctr.regfile_accesses += 4 * cx;
                c.scale(lat.alu)
            }
            Instruction::Jump { .. } => {
                ctr.branches += cx;
                ctr.branches_taken += cx;
                c.scale(lat.branch_taken)
            }
            Instruction::Branch { target, .. } => {
                ctr.branches += cx;
                ctr.regfile_accesses += 2 * cx;
                let li = forest.innermost[pc_us];
                // Exact taken/untaken split, available for the two loop
                // shapes whose exit structure pins it down.
                let exact_split = li.and_then(|i| {
                    let lp = &forest.loops[i];
                    let m = model.metas[i];
                    let e = m.entries;
                    if !(c.is_exact() && e.is_exact() && c.min >= e.min) {
                        return None;
                    }
                    if m.exact_latch && lp.latches == [pc] {
                        // Bottom-test: taken back to the header on all but
                        // the last iteration of each entry.
                        Some((c.min - e.min, e.min))
                    } else if m.exact_header_exit && pc == lp.header {
                        // Top-test: one exit per entry, the rest stay.
                        let stays = c.min - e.min;
                        if lp.contains(target) {
                            Some((stays, e.min)) // exit via fallthrough
                        } else {
                            Some((e.min, stays)) // exit via taken edge
                        }
                    } else {
                        None
                    }
                });
                match exact_split {
                    Some((taken, untaken)) => {
                        ctr.branches_taken += taken;
                        Interval::exact(taken * lat.branch_taken + untaken * lat.alu)
                    }
                    None => {
                        counters_exact = false;
                        Interval {
                            min: c.min.saturating_mul(branch_lo),
                            max: c.max.map(|m| m.saturating_mul(branch_hi)),
                        }
                    }
                }
            }
            Instruction::Load {
                rs_base, offset, ..
            } => {
                let base = syms[pc_us].as_ref().map_or(Sym::Top, |s| s.get(rs_base.0));
                let class = classify_load(pc, base, offset);
                ctr.regfile_accesses += 2 * cx;
                match class {
                    LoadClass::Spad => ctr.scratchpad_accesses += cx,
                    LoadClass::DramHit => ctr.dram.hits += cx,
                    LoadClass::DramMiss => ctr.dram.misses += cx,
                    _ => counters_exact = false,
                }
                let (cyc, bytes) = load_profile(class, 4);
                dram_bytes = dram_bytes + c * bytes;
                c * cyc
            }
            Instruction::VLoad {
                rs_base, offset, ..
            } => {
                let base = syms[pc_us].as_ref().map_or(Sym::Top, |s| s.get(rs_base.0));
                let class = classify_load(pc, base, offset);
                ctr.vector_ops += cx;
                ctr.vector_lane_ops += vlw * cx;
                ctr.regfile_accesses += 2 * cx;
                match class {
                    // A scratchpad vector load touches every lane's word;
                    // a DRAM block transfer counts one hit or miss total.
                    LoadClass::Spad => ctr.scratchpad_accesses += vlw * cx,
                    LoadClass::DramHit => ctr.dram.hits += cx,
                    LoadClass::DramMiss => ctr.dram.misses += cx,
                    _ => counters_exact = false,
                }
                let (cyc, bytes) = load_profile(class, 4 * vlw);
                dram_bytes = dram_bytes + c * bytes;
                c * cyc
            }
            Instruction::Store { .. } => {
                ctr.scratchpad_accesses += cx;
                ctr.regfile_accesses += 2 * cx;
                c.scale(lat.scratchpad)
            }
            Instruction::VStore { .. } => {
                ctr.vector_ops += cx;
                ctr.vector_lane_ops += vlw * cx;
                ctr.scratchpad_accesses += vlw * cx;
                ctr.regfile_accesses += 2 * cx;
                c.scale(lat.scratchpad)
            }
            Instruction::MemFetch { .. } => {
                ctr.dram.prefetches += cx;
                ctr.regfile_accesses += cx;
                c.scale(lat.alu)
            }
            Instruction::SvMove { .. } => {
                ctr.vector_ops += cx;
                ctr.vector_lane_ops += vlw * cx;
                ctr.regfile_accesses += 2 * cx;
                c.scale(lat.alu)
            }
            Instruction::VsMove { .. } => {
                // Lane extract: a vector op but no per-lane work.
                ctr.vector_ops += cx;
                ctr.regfile_accesses += 2 * cx;
                c.scale(lat.alu)
            }
            Instruction::Push { .. } | Instruction::Pop { .. } => {
                ctr.stack_ops += cx;
                ctr.regfile_accesses += cx;
                c.scale(lat.alu)
            }
            Instruction::PqueueInsert { .. } | Instruction::PqueueLoad { .. } => {
                ctr.pqueue_ops += cx;
                ctr.regfile_accesses += 2 * cx;
                c.scale(lat.alu)
            }
            Instruction::PqueueReset => {
                ctr.pqueue_ops += cx;
                c.scale(lat.alu)
            }
            Instruction::Halt => c.scale(lat.alu),
        };
        cycles = cycles + contrib;
    }

    let comp = |cyc: u64| cyc as f64 / (params.pus as f64 * params.freq_hz);
    let mem = |b: u64| b as f64 / params.vault_bandwidth;
    let comp_seconds = comp(cycles.min);
    let comp_seconds_max = cycles.max.map(comp);
    let mem_seconds = mem(dram_bytes.min);
    let mem_seconds_max = dram_bytes.max.map(mem);

    // Definite only when every corner of the interval box agrees with
    // the telemetry rule `compute_bound = comp_seconds > mem_seconds`.
    let bound = match (comp_seconds_max, mem_seconds_max) {
        _ if mem_seconds_max.is_some_and(|mm| comp_seconds > mm) => Some(BoundClass::Compute),
        (Some(cm), _) if cm <= mem_seconds => Some(BoundClass::Memory),
        _ => None,
    };

    let exact = instructions.is_exact() && cycles.is_exact() && dram_bytes.is_exact();
    let stats = if exact && counters_exact {
        ctr.instructions = instructions.min;
        ctr.cycles = cycles.min;
        ctr.dram.bytes_read = dram_bytes.min;
        Some(ctr)
    } else {
        None
    };

    CostEstimate {
        instructions,
        cycles,
        dram_bytes,
        exact,
        comp_seconds,
        comp_seconds_max,
        mem_seconds,
        mem_seconds_max,
        bound,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::sim::ProcessingUnit;
    use std::sync::Arc;

    fn run(src: &str, vl: usize, dram: Vec<i32>) -> crate::sim::RunStats {
        let mut pu = ProcessingUnit::new(vl, Arc::new(dram));
        pu.load_program(assemble(src).expect("assembles"));
        pu.run(1_000_000).expect("runs")
    }

    fn est(src: &str, vl: usize, n: u64) -> CostEstimate {
        let program = assemble(src).expect("assembles");
        estimate_with(&program, vl, n, &CostParams::default())
    }

    #[test]
    fn interval_arithmetic_holds_unbounded_ends() {
        let u = Interval { min: 2, max: None };
        assert_eq!(u + Interval::exact(3), Interval { min: 5, max: None });
        assert_eq!(u * Interval::exact(4), Interval { min: 8, max: None });
        assert_eq!(u * Interval::ZERO, Interval::ZERO);
        assert!(Interval::exact(7).is_exact());
        assert!(!u.is_exact());
    }

    #[test]
    fn straight_line_program_is_exact() {
        let src = "addi s1, s0, 1024\nmult s2, s1, s1\nstore s2, s1, 0\nhalt\n";
        let e = est(src, 4, 0);
        assert!(e.exact);
        let stats = run(src, 4, vec![]);
        assert_eq!(e.cycles, Interval::exact(stats.cycles));
        assert_eq!(e.instructions, Interval::exact(stats.instructions));
        assert_eq!(e.dram_bytes, Interval::exact(stats.dram.bytes_read));
    }

    #[test]
    fn counted_loop_cycles_are_exact() {
        // do-while loop: 6 iterations, latch taken 5 times.
        let src = "addi s1, s0, 0\naddi s2, s0, 6\nloop:\naddi s3, s3, 1\naddi s1, s1, 1\nblt s1, s2, loop\nhalt\n";
        let e = est(src, 4, 0);
        assert!(e.exact, "{e:?}");
        let stats = run(src, 4, vec![]);
        assert_eq!(e.cycles, Interval::exact(stats.cycles));
        assert_eq!(e.instructions, Interval::exact(stats.instructions));
    }

    #[test]
    fn scan_loop_resolves_to_n_and_matches_the_simulator() {
        // A miniature of the emitters' scan shape: top-test on the driver
        // cursor, MEM_FETCH coverage, vector loads, jump latch.
        let src = "outer:\n\
                   be s1, s2, done\n\
                   mem_fetch s1, 16\n\
                   vload v0, s1, 0\n\
                   vadd v1, v1, v0\n\
                   addi s1, s1, 16\n\
                   j outer\n\
                   done:\n\
                   halt\n";
        let n = 5u64;
        let e = est(src, 4, n);
        assert!(e.exact, "{e:?}");
        assert_eq!(e.dram_bytes, Interval::exact(16 * n));

        let dram: Vec<i32> = (0..(4 * n as i32)).collect();
        let mut pu = ProcessingUnit::new(4, Arc::new(dram));
        pu.load_program(assemble(src).expect("assembles"));
        pu.set_sreg(1, DRAM_BASE as i32);
        pu.set_sreg(2, DRAM_BASE as i32 + 16 * n as i32);
        let stats = pu.run(10_000).expect("runs");
        assert_eq!(e.cycles, Interval::exact(stats.cycles));
        assert_eq!(e.instructions, Interval::exact(stats.instructions));
        assert_eq!(e.dram_bytes, Interval::exact(stats.dram.bytes_read));
    }

    #[test]
    fn data_dependent_branch_widens_to_a_containing_interval() {
        let src = "load s1, s0, 0\n\
                   blt s1, s2, skip\n\
                   addi s3, s0, 1\n\
                   skip:\n\
                   halt\n";
        let e = est(src, 4, 0);
        assert!(!e.exact);
        let stats = run(src, 4, vec![]);
        assert!(e.cycles.min <= stats.cycles);
        assert!(e.cycles.max.expect("bounded") >= stats.cycles);
        assert!(e.instructions.min <= stats.instructions);
        assert!(e.instructions.max.expect("bounded") >= stats.instructions);
    }

    #[test]
    fn unknown_nested_walk_reports_unbounded_max() {
        // Inner loop consumes a data-dependent bound: no static trip.
        let src = "addi s5, s0, 3\n\
                   outer:\n\
                   be s1, s2, done\n\
                   mem_fetch s1, 4\n\
                   load s4, s1, 0\n\
                   addi s3, s0, 0\n\
                   walk:\n\
                   addi s3, s3, 1\n\
                   blt s3, s4, walk\n\
                   addi s1, s1, 4\n\
                   j outer\n\
                   done:\n\
                   halt\n";
        let e = est(src, 4, 9);
        assert!(e.cycles.max.is_none());
        assert!(!e.exact);
    }

    #[test]
    fn classification_mirrors_the_telemetry_rule() {
        // Pure compute, zero DRAM traffic: must classify compute-bound.
        let e = est("addi s1, s1, 1\nmult s2, s1, s1\nhalt\n", 4, 0);
        assert_eq!(e.bound, Some(BoundClass::Compute));
        assert!(e.mem_seconds == 0.0 && e.comp_seconds > 0.0);

        // A scan that only streams: one hit vload per vector plus the
        // loop glue — with plentiful compute (many PUs), memory wins.
        let src = "outer:\n\
                   be s1, s2, done\n\
                   mem_fetch s1, 64\n\
                   vload v0, s1, 0\n\
                   addi s1, s1, 64\n\
                   j outer\n\
                   done:\n\
                   halt\n";
        let program = assemble(src).expect("assembles");
        let params = CostParams {
            pus: 8,
            ..CostParams::default()
        };
        let e = estimate_with(&program, 16, 1000, &params);
        assert!(e.exact);
        let comp = e.cycles.min as f64 / (8.0 * params.freq_hz);
        let mem = e.dram_bytes.min as f64 / params.vault_bandwidth;
        let expect = if comp > mem {
            BoundClass::Compute
        } else {
            BoundClass::Memory
        };
        assert_eq!(e.bound, Some(expect));
    }

    #[test]
    fn synthesized_stats_match_the_simulator_bit_for_bit() {
        // Straight-line program.
        let src = "addi s1, s0, 1024\nmult s2, s1, s1\nstore s2, s1, 0\nhalt\n";
        let e = est(src, 4, 0);
        assert_eq!(e.stats, Some(run(src, 4, vec![])));

        // Counted bottom-test loop: needs the exact taken/untaken split.
        let src = "addi s1, s0, 0\naddi s2, s0, 6\nloop:\naddi s3, s3, 1\naddi s1, s1, 1\nblt s1, s2, loop\nhalt\n";
        let e = est(src, 4, 0);
        assert_eq!(e.stats, Some(run(src, 4, vec![])));

        // The mini scan shape: top-test split, prefetch coverage, DRAM
        // vector loads.
        let src = "outer:\n\
                   be s1, s2, done\n\
                   mem_fetch s1, 16\n\
                   vload v0, s1, 0\n\
                   vadd v1, v1, v0\n\
                   addi s1, s1, 16\n\
                   j outer\n\
                   done:\n\
                   halt\n";
        let n = 5u64;
        let e = est(src, 4, n);
        let dram: Vec<i32> = (0..(4 * n as i32)).collect();
        let mut pu = ProcessingUnit::new(4, Arc::new(dram));
        pu.load_program(assemble(src).expect("assembles"));
        pu.set_sreg(1, DRAM_BASE as i32);
        pu.set_sreg(2, DRAM_BASE as i32 + 16 * n as i32);
        let stats = pu.run(10_000).expect("runs");
        assert_eq!(e.stats, Some(stats));
    }

    #[test]
    fn data_dependent_programs_synthesize_no_stats() {
        let src = "load s1, s0, 0\n\
                   blt s1, s2, skip\n\
                   addi s3, s0, 1\n\
                   skip:\n\
                   halt\n";
        assert_eq!(est(src, 4, 0).stats, None);
    }

    /// The full counter set the cost model synthesizes for every linear
    /// hardware-queue kernel — optimized *and* raw image — must equal an
    /// actual simulated run bit for bit. This is the contract the
    /// analytic fast-path executor rests on.
    #[test]
    fn linear_kernel_stats_match_a_real_run_for_the_whole_family() {
        use crate::isa::DRAM_BASE;
        for &vl in &crate::isa::VECTOR_LENGTHS {
            for kernel in [
                crate::kernels::linear::euclidean(24, vl),
                crate::kernels::linear::manhattan(24, vl),
                crate::kernels::linear::hamming(32, vl),
            ] {
                let vw = kernel.layout.vec_words;
                let n = 6usize;
                let dram: Vec<i32> = (0..(n * vw) as i32).map(|i| (i * 37) % 1000).collect();
                let query: Vec<i32> = (0..vw as i32).map(|i| (i * 13) % 500).collect();
                for program in [&kernel.program, &kernel.raw_program] {
                    let e = estimate_with(program, vl, n as u64, &CostParams::default());
                    let mut pu = ProcessingUnit::new(vl, Arc::new(dram.clone()));
                    pu.load_program(program.clone());
                    pu.scratchpad_mut()
                        .write_block(kernel.layout.query_addr, &query)
                        .expect("query fits");
                    pu.set_sreg(1, DRAM_BASE as i32);
                    pu.set_sreg(2, DRAM_BASE as i32 + (n * vw * 4) as i32);
                    pu.set_sreg(3, 0);
                    let stats = pu.run(1_000_000).expect("runs");
                    assert_eq!(
                        e.stats,
                        Some(stats),
                        "{} vl={vl} opt={}",
                        kernel.name,
                        std::ptr::eq(program, &kernel.program)
                    );
                }
            }
        }
    }

    #[test]
    fn linear_kernel_estimate_is_exact_for_the_whole_family() {
        for &vl in &crate::isa::VECTOR_LENGTHS {
            for (k, words) in [
                (
                    crate::kernels::linear::euclidean(24, vl),
                    24usize.div_ceil(vl) * vl,
                ),
                (
                    crate::kernels::linear::manhattan(24, vl),
                    24usize.div_ceil(vl) * vl,
                ),
                (
                    crate::kernels::linear::hamming(32, vl),
                    32usize.div_ceil(vl) * vl,
                ),
            ] {
                let n = 6u64;
                let e = estimate(&k, vl, n);
                assert!(e.exact, "{} vl={vl}: {e:?}", k.name);
                assert_eq!(
                    e.dram_bytes,
                    Interval::exact(n * words as u64 * 4),
                    "{}",
                    k.name
                );
            }
        }
    }
}
