//! Loop structure recovery: dominators, natural loops, nesting, and
//! trip-count inference for the emitters' counted-loop idiom.
//!
//! SSAM kernels come out of four code emitters that all use the same two
//! loop shapes: a *bottom-test counted loop* (`addi cnt, s0, 0` … `addi
//! cnt, cnt, 1; blt cnt, bound, head`) whose trip count is a compile-time
//! constant, and a *header-exit cursor loop* (`head: be cur, end, done`)
//! whose trip count depends on the dataset size. This module recovers
//! both structurally — dominators over the [`Cfg`], back edges, natural
//! loops merged per header, nesting — and proves exact trip counts for
//! the counted form. The optimizer ([`super::opt`]) consumes the
//! structure for loop-invariant code motion; the cost model
//! ([`super::cost`]) consumes structure *and* trip counts.

use crate::isa::inst::{BranchCond, Instruction};

use super::cfg::{forward_fixpoint, Cfg};
use super::constprop::{self, Consts, Val};

/// Dominator sets over a [`Cfg`], one bitset row per instruction.
///
/// `None` for unreachable instructions (they dominate nothing and the
/// notion is undefined for them).
pub(crate) struct Dominators {
    sets: Vec<Option<Vec<u64>>>,
}

impl Dominators {
    /// Iterative bitset dominator computation (programs are a few
    /// hundred instructions at most, so O(n²/64) per pass is fine).
    pub(crate) fn compute(cfg: &Cfg) -> Self {
        let len = cfg.succs.len();
        let words = len.div_ceil(64);
        let full = {
            let mut v = vec![u64::MAX; words];
            if !len.is_multiple_of(64) {
                v[words - 1] = (1u64 << (len % 64)) - 1;
            }
            v
        };
        let mut sets: Vec<Option<Vec<u64>>> = (0..len)
            .map(|pc| {
                if !cfg.reachable[pc] {
                    None
                } else if pc == 0 {
                    let mut s = vec![0u64; words];
                    s[0] = 1;
                    Some(s)
                } else {
                    Some(full.clone())
                }
            })
            .collect();
        if len == 0 {
            return Self { sets };
        }
        let preds = cfg.preds();
        let mut changed = true;
        while changed {
            changed = false;
            for pc in 1..len {
                if !cfg.reachable[pc] {
                    continue;
                }
                let mut new = full.clone();
                let mut any_pred = false;
                for &p in &preds[pc] {
                    if let Some(ps) = &sets[p as usize] {
                        any_pred = true;
                        for (n, w) in new.iter_mut().zip(ps.iter()) {
                            *n &= w;
                        }
                    }
                }
                if !any_pred {
                    new = vec![0u64; words];
                }
                new[pc / 64] |= 1u64 << (pc % 64);
                if sets[pc].as_ref() != Some(&new) {
                    sets[pc] = Some(new);
                    changed = true;
                }
            }
        }
        Self { sets }
    }

    /// Does `a` dominate `b`? (False if either is unreachable.)
    pub(crate) fn dominates(&self, a: u32, b: u32) -> bool {
        match &self.sets[b as usize] {
            Some(s) => s[a as usize / 64] & (1u64 << (a as usize % 64)) != 0,
            None => false,
        }
    }
}

/// One natural loop (all back edges sharing a header, merged).
#[derive(Debug, Clone)]
pub(crate) struct Loop {
    /// Header instruction index (target of the back edges).
    pub header: u32,
    /// Sources of the back edges into `header`.
    pub latches: Vec<u32>,
    /// Membership bitmap over the whole program.
    pub body: Vec<bool>,
    /// Index of the innermost enclosing loop, if any.
    pub parent: Option<usize>,
    /// Nesting depth (outermost = 1).
    pub depth: usize,
}

impl Loop {
    /// Is `pc` inside this loop?
    pub(crate) fn contains(&self, pc: u32) -> bool {
        self.body.get(pc as usize).copied().unwrap_or(false)
    }

    /// Number of instructions in the body.
    pub(crate) fn len(&self) -> usize {
        self.body.iter().filter(|&&b| b).count()
    }
}

/// All natural loops of a program, innermost-first nesting resolved.
#[derive(Debug, Clone)]
pub(crate) struct LoopForest {
    /// Loops, sorted by ascending body size (innermost first).
    pub loops: Vec<Loop>,
    /// Per-pc index into `loops` of the innermost loop containing it.
    pub innermost: Vec<Option<usize>>,
}

impl LoopForest {
    /// Detects natural loops: for every edge `u → h` where `h` dominates
    /// `u`, the loop body is `{h}` plus every node that reaches `u`
    /// backwards without passing through `h`. Back edges sharing a
    /// header are merged into one loop.
    pub(crate) fn build(cfg: &Cfg, dom: &Dominators) -> Self {
        let len = cfg.succs.len();
        let preds = cfg.preds();
        let mut by_header: Vec<(u32, Vec<u32>)> = Vec::new();
        for (u, succs) in cfg.succs.iter().enumerate() {
            for &h in succs {
                if dom.dominates(h, u as u32) {
                    match by_header.iter_mut().find(|(hh, _)| *hh == h) {
                        Some((_, latches)) => latches.push(u as u32),
                        None => by_header.push((h, vec![u as u32])),
                    }
                }
            }
        }

        let mut loops: Vec<Loop> = by_header
            .into_iter()
            .map(|(header, latches)| {
                let mut body = vec![false; len];
                body[header as usize] = true;
                let mut stack: Vec<u32> = Vec::new();
                for &l in &latches {
                    if !body[l as usize] {
                        body[l as usize] = true;
                        stack.push(l);
                    }
                }
                while let Some(n) = stack.pop() {
                    for &p in &preds[n as usize] {
                        if !body[p as usize] {
                            body[p as usize] = true;
                            stack.push(p);
                        }
                    }
                }
                Loop {
                    header,
                    latches,
                    body,
                    parent: None,
                    depth: 1,
                }
            })
            .collect();

        // Innermost-first order, then resolve nesting: the parent of L is
        // the smallest strictly-larger loop containing L's header.
        loops.sort_by_key(|l| l.len());
        for i in 0..loops.len() {
            for j in (i + 1)..loops.len() {
                if loops[j].contains(loops[i].header) && loops[j].header != loops[i].header {
                    loops[i].parent = Some(j);
                    break;
                }
            }
        }
        for i in (0..loops.len()).rev() {
            loops[i].depth = match loops[i].parent {
                Some(p) => loops[p].depth + 1,
                None => 1,
            };
        }

        let innermost: Vec<Option<usize>> = (0..len)
            .map(|pc| loops.iter().position(|l| l.contains(pc as u32)))
            .collect();
        Self { loops, innermost }
    }
}

/// Exact trip count of a bottom-test counted loop, if provable.
///
/// Matches the emitters' inner-loop idiom: a single latch `blt cnt,
/// bound, header` where `cnt` has exactly one definition inside the loop
/// — `addi cnt, cnt, step` with `step > 0` — `bound` is never written
/// inside the loop, and both `bound` and the loop-entry value of `cnt`
/// are compile-time constants. The body of such a do-while loop runs
/// `max(1, ceil((bound − init) / step))` times.
pub(crate) fn counted_trip(program: &[Instruction], cfg: &Cfg, lp: &Loop) -> Option<u64> {
    let [latch] = lp.latches[..] else { return None };
    let Instruction::Branch {
        cond: BranchCond::Lt,
        rs1: cnt,
        rs2: bound,
        target,
    } = program[latch as usize]
    else {
        return None;
    };
    if target != lp.header {
        return None;
    }

    // Exactly one in-loop def of `cnt`, of the form `addi cnt, cnt, step`.
    let mut step: Option<i32> = None;
    for (pc, inst) in program.iter().enumerate() {
        if !lp.contains(pc as u32) {
            continue;
        }
        if super::uses::sreg_write(inst) == Some(cnt) {
            match *inst {
                Instruction::SAluImm {
                    op: crate::isa::inst::AluOp::Add,
                    rd,
                    rs1,
                    imm,
                } if rd == cnt && rs1 == cnt && imm > 0 && step.is_none() => step = Some(imm),
                _ => return None,
            }
        }
        // `bound` must be loop-invariant.
        if super::uses::sreg_write(inst) == Some(bound) {
            return None;
        }
    }
    let step = step?;

    // Entry values: join the out-states of the header's outside
    // predecessors under constant propagation.
    let states = forward_fixpoint(
        program,
        cfg,
        Consts::entry(),
        constprop::join,
        |_, inst, s| constprop::transfer(inst, s),
    );
    let preds = cfg.preds();
    let mut at_entry: Option<Consts> = None;
    for &p in &preds[lp.header as usize] {
        if lp.contains(p) {
            continue;
        }
        let out = constprop::transfer(&program[p as usize], states[p as usize].as_ref()?);
        at_entry = Some(match at_entry {
            None => out,
            Some(cur) => constprop::join(&cur, &out),
        });
    }
    // Header at pc 0 has an implicit entry edge with the initial state.
    if lp.header == 0 {
        let e = Consts::entry();
        at_entry = Some(match at_entry {
            None => e,
            Some(cur) => constprop::join(&cur, &e),
        });
    }
    let at_entry = at_entry?;
    let (Val::Const(init), Val::Const(b)) = (at_entry.get(cnt.0), at_entry.get(bound.0)) else {
        return None;
    };

    let span = (b as i64) - (init as i64);
    let trips = if span <= 0 {
        1 // do-while: the body runs once before the first test
    } else {
        let step = step as i64;
        ((span + step - 1) / step).max(1)
    };
    Some(trips as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn analyze(src: &str) -> (Vec<Instruction>, Cfg, LoopForest) {
        let program = assemble(src).expect("assembles");
        let mut d = Vec::new();
        let cfg = Cfg::build(&program, &mut d);
        assert!(d.is_empty(), "{d:?}");
        let dom = Dominators::compute(&cfg);
        let forest = LoopForest::build(&cfg, &dom);
        (program, cfg, forest)
    }

    #[test]
    fn straight_line_has_no_loops() {
        let (_, _, forest) = analyze("addi s1, s0, 1\nhalt\n");
        assert!(forest.loops.is_empty());
    }

    #[test]
    fn counted_loop_is_detected_with_exact_trips() {
        let src = "addi s5, s0, 0\naddi s6, s0, 7\n\
                   inner:\naddi s5, s5, 1\nblt s5, s6, inner\nhalt\n";
        let (program, cfg, forest) = analyze(src);
        assert_eq!(forest.loops.len(), 1);
        let lp = &forest.loops[0];
        assert_eq!(lp.header, 2);
        assert_eq!(lp.latches, vec![3]);
        assert_eq!(counted_trip(&program, &cfg, lp), Some(7));
    }

    #[test]
    fn counted_loop_with_zero_span_runs_once() {
        // init == bound: do-while still executes the body once.
        let src = "addi s5, s0, 0\naddi s6, s0, 0\n\
                   inner:\naddi s5, s5, 1\nblt s5, s6, inner\nhalt\n";
        let (program, cfg, forest) = analyze(src);
        assert_eq!(counted_trip(&program, &cfg, &forest.loops[0]), Some(1));
    }

    #[test]
    fn data_dependent_bound_is_unknown() {
        let src = "addi s5, s0, 0\nload s6, s0, 0\n\
                   inner:\naddi s5, s5, 1\nblt s5, s6, inner\nhalt\n";
        let (program, cfg, forest) = analyze(src);
        assert_eq!(counted_trip(&program, &cfg, &forest.loops[0]), None);
    }

    #[test]
    fn nested_loops_resolve_parents_and_depth() {
        // Outer cursor loop around an inner counted loop — the emitters'
        // scan shape.
        let src = "start:\naddi s6, s0, 4\n\
                   outer:\nbe s1, s2, done\n\
                   addi s5, s0, 0\n\
                   inner:\naddi s5, s5, 1\nblt s5, s6, inner\n\
                   addi s1, s1, 16\nj outer\ndone:\nhalt\n";
        let (program, cfg, forest) = analyze(src);
        assert_eq!(forest.loops.len(), 2);
        // Innermost first.
        let inner = &forest.loops[0];
        let outer = &forest.loops[1];
        assert_eq!(inner.header, 3);
        assert_eq!(outer.header, 1);
        assert_eq!(inner.parent, Some(1));
        assert_eq!(outer.parent, None);
        assert_eq!(inner.depth, 2);
        assert_eq!(outer.depth, 1);
        assert_eq!(counted_trip(&program, &cfg, inner), Some(4));
        // The cursor loop is not a counted loop (Eq header exit).
        assert_eq!(counted_trip(&program, &cfg, outer), None);
        // The inner body is inside the outer body.
        for pc in 0..program.len() as u32 {
            if inner.contains(pc) {
                assert!(outer.contains(pc));
            }
        }
    }

    #[test]
    fn dominators_basic_properties() {
        let src = "addi s1, s0, 1\nbe s1, s0, skip\naddi s2, s0, 2\nskip:\nhalt\n";
        let program = assemble(src).expect("assembles");
        let mut d = Vec::new();
        let cfg = Cfg::build(&program, &mut d);
        let dom = Dominators::compute(&cfg);
        // Entry dominates everything; the branch's two arms don't
        // dominate the join.
        for pc in 0..program.len() as u32 {
            assert!(dom.dominates(0, pc));
            assert!(dom.dominates(pc, pc));
        }
        assert!(!dom.dominates(2, 3));
        assert!(dom.dominates(1, 3));
    }
}
