//! Semantics-preserving kernel optimizer.
//!
//! [`optimize`] rewrites an assembled program into a cheaper one with the
//! same observable behavior: the same priority-queue contents, the same
//! scratchpad results, the same architectural effects on every input.
//! `Kernel::build` runs it on every generated kernel, so the ~200 emitted
//! programs in the sweep all ship optimized; the raw program is kept
//! alongside for A/B runs (`SsamConfig::optimize_kernels = false`).
//!
//! Passes, iterated to a fixpoint (bounded by [`OptConfig::max_rounds`]):
//!
//! 1. **Sparse conditional constant propagation** over the shared
//!    lattice of [`super::constprop`], with feasible-edge narrowing: a
//!    branch whose comparands are both constant contributes only its
//!    taken (or fallthrough) edge, so loop bodies whose trip count
//!    degenerates to one — e.g. a `dims ≤ VL` scan, where the counted
//!    inner loop runs exactly once — lose their back edge entirely.
//!    Constant operands are folded into immediate forms and constant
//!    results into canonical `addi rd, s0, imm` loads.
//! 2. **Unreachable-code and resolved-branch elimination** — anything
//!    SCCP proves unreachable, and branches it resolves, are deleted
//!    with branch targets remapped.
//! 3. **Dead-code elimination** via backward liveness (the
//!    [`super::cfg::backward_fixpoint`] solver over `(sreg, vreg)`
//!    masks). Only effect-free instruction shapes are candidates:
//!    ALU/move/fxp results never read again. Loads, stores, prefetches,
//!    and queue/stack operations always survive — they carry timing or
//!    architectural effects the liveness mask does not see.
//! 4. **Redundant scratchpad-load elimination** within basic blocks: a
//!    reload of `(base, offset)` whose previous value still sits in a
//!    register becomes a register copy. Any store invalidates the whole
//!    table (the PU has no alias analysis); data under the PU is
//!    otherwise read-only.
//! 5. **Loop-invariant code motion** for constant materializations
//!    (`op rd, s0, imm`) inside natural loops ([`super::loops`]): the
//!    single def is hoisted immediately before the loop header when no
//!    path can observe the difference.
//!
//! What the optimizer will *not* touch: `LOAD`/`VLOAD` (other than the
//! provably-redundant scratchpad case), `MEM_FETCH` (prefetch timing is
//! observable in cycle counts and deliberately preserved relative to the
//! data accesses), and everything with architectural side effects
//! (queue, stack, stores). Fault injection ([`ssam_faults::FaultPlan`])
//! keys on `(seed, query, vault)` — never on instruction indices — so
//! optimization is transparent to injected faults by construction.

use std::collections::VecDeque;

use crate::isa::inst::{AluOp, Instruction};
use crate::isa::reg::SReg;

use super::cfg::{backward_fixpoint, Cfg};
use super::constprop::{self, Consts, Val};
use super::loops::{Dominators, LoopForest};
use super::uses;

/// Optimizer configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptConfig {
    /// Scalar registers that must hold their final values at `HALT`
    /// (bitmask). Kernel results travel through the priority queue and
    /// the scratchpad, never through registers, so the default is 0;
    /// harnesses that read registers after a run can widen it.
    pub preserve_sregs: u32,
    /// Maximum fold/DCE/LICM rounds before giving up on a fixpoint.
    pub max_rounds: usize,
}

impl Default for OptConfig {
    fn default() -> Self {
        Self {
            preserve_sregs: 0,
            max_rounds: 4,
        }
    }
}

/// What the optimizer did to one program.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptReport {
    /// Instruction count before optimization.
    pub instructions_before: usize,
    /// Instruction count after optimization.
    pub instructions_after: usize,
    /// Constant-operand/result rewrites (folds into immediate forms).
    pub folded: usize,
    /// Branches resolved to a constant direction (removed or jumpified).
    pub branches_resolved: usize,
    /// Instructions removed as unreachable.
    pub unreachable_removed: usize,
    /// Instructions removed as dead (result never observed).
    pub dead_removed: usize,
    /// Scratchpad reloads turned into register copies.
    pub redundant_loads: usize,
    /// Loop-invariant constant materializations hoisted out of loops.
    pub hoisted: usize,
    /// Fixpoint rounds executed.
    pub rounds: usize,
}

impl OptReport {
    /// Instructions saved, as a fraction of the input size.
    pub fn reduction(&self) -> f64 {
        if self.instructions_before == 0 {
            0.0
        } else {
            (self.instructions_before - self.instructions_after) as f64
                / self.instructions_before as f64
        }
    }
}

/// Optimizes `program`, returning the new program and a report.
///
/// The result is observationally equivalent to the input: identical
/// architectural effects (queue, scratchpad, memory traffic ordering of
/// the surviving accesses) on every input state. Instruction count never
/// increases.
pub fn optimize(program: &[Instruction], config: &OptConfig) -> (Vec<Instruction>, OptReport) {
    let mut report = OptReport {
        instructions_before: program.len(),
        instructions_after: program.len(),
        ..OptReport::default()
    };
    let mut prog = program.to_vec();
    for round in 1..=config.max_rounds {
        report.rounds = round;
        let at_round_start = prog.clone();
        fold_and_prune(&mut prog, &mut report);
        eliminate_dead(&mut prog, config, &mut report);
        eliminate_redundant_loads(&mut prog, &mut report);
        prune_trivial_jumps(&mut prog);
        hoist_invariants(&mut prog, config, &mut report);
        if prog == at_round_start {
            break;
        }
    }
    debug_assert!(prog.len() <= program.len());
    report.instructions_after = prog.len();
    (prog, report)
}

/// Successor set of `pc` under the abstract state `s`, with constant
/// branches narrowed to their single feasible edge. Out-of-range targets
/// are dropped (mirroring [`Cfg::build`]).
fn feasible_succs(program: &[Instruction], pc: u32, s: &Consts) -> Vec<u32> {
    let len = program.len() as u32;
    let mut out = Vec::with_capacity(2);
    match program[pc as usize] {
        Instruction::Branch {
            cond,
            rs1,
            rs2,
            target,
        } => match (s.get(rs1.0), s.get(rs2.0)) {
            (Val::Const(a), Val::Const(b)) => {
                if cond.eval(a, b) {
                    out.push(target);
                } else {
                    out.push(pc + 1);
                }
            }
            _ => {
                out.push(target);
                out.push(pc + 1);
            }
        },
        Instruction::Jump { target } => out.push(target),
        Instruction::Halt => {}
        _ => out.push(pc + 1),
    }
    out.retain(|&t| t < len);
    out
}

/// Sparse conditional constant propagation: in-states for reachable pcs
/// under feasible-edge narrowing, `None` for pcs no feasible path hits.
fn sccp(program: &[Instruction]) -> Vec<Option<Consts>> {
    let len = program.len();
    let mut in_states: Vec<Option<Consts>> = vec![None; len];
    if len == 0 {
        return in_states;
    }
    in_states[0] = Some(Consts::entry());
    let mut queued = vec![false; len];
    queued[0] = true;
    let mut wl = VecDeque::from([0u32]);
    while let Some(pc) = wl.pop_front() {
        queued[pc as usize] = false;
        let state = in_states[pc as usize].expect("queued pcs have states");
        let out = constprop::transfer(&program[pc as usize], &state);
        for succ in feasible_succs(program, pc, &state) {
            let merged = match &in_states[succ as usize] {
                None => out,
                Some(cur) => constprop::join(cur, &out),
            };
            if in_states[succ as usize] != Some(merged) {
                in_states[succ as usize] = Some(merged);
                if !queued[succ as usize] {
                    queued[succ as usize] = true;
                    wl.push_back(succ);
                }
            }
        }
    }
    in_states
}

/// Commutative two-operand ops (safe to swap `rs1`/`rs2`).
fn commutative(op: AluOp) -> bool {
    matches!(
        op,
        AluOp::Add | AluOp::Mult | AluOp::And | AluOp::Or | AluOp::Xor
    )
}

/// The canonical constant load.
fn load_imm(rd: SReg, value: i32) -> Instruction {
    Instruction::SAluImm {
        op: AluOp::Add,
        rd,
        rs1: SReg(0),
        imm: value,
    }
}

/// SCCP-driven rewrite: fold constant operands/results, resolve constant
/// branches, delete everything no feasible path reaches.
fn fold_and_prune(prog: &mut Vec<Instruction>, report: &mut OptReport) {
    let states = sccp(prog);
    let len = prog.len();
    let mut kill = vec![false; len];
    for pc in 0..len {
        let Some(state) = &states[pc] else {
            kill[pc] = true;
            report.unreachable_removed += 1;
            continue;
        };
        let old = prog[pc];
        let new = match old {
            Instruction::SAlu { op, rd, rs1, rs2 } => match (state.get(rs1.0), state.get(rs2.0)) {
                (Val::Const(a), Val::Const(b)) => Some(load_imm(rd, op.eval(a, b))),
                (_, Val::Const(b)) => Some(Instruction::SAluImm {
                    op,
                    rd,
                    rs1,
                    imm: b,
                }),
                (Val::Const(a), _) if commutative(op) => Some(Instruction::SAluImm {
                    op,
                    rd,
                    rs1: rs2,
                    imm: a,
                }),
                _ => None,
            },
            Instruction::SAluImm { op, rd, rs1, imm } => match state.get(rs1.0) {
                Val::Const(a) => Some(load_imm(rd, op.eval(a, imm))),
                Val::Top => None,
            },
            Instruction::SUnary { op, rd, rs1 } => match state.get(rs1.0) {
                Val::Const(a) => Some(load_imm(rd, op.eval(a))),
                Val::Top => None,
            },
            Instruction::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => match (state.get(rs1.0), state.get(rs2.0)) {
                (Val::Const(a), Val::Const(b)) => {
                    report.branches_resolved += 1;
                    if cond.eval(a, b) {
                        Some(Instruction::Jump { target })
                    } else {
                        kill[pc] = true;
                        None
                    }
                }
                _ => None,
            },
            _ => None,
        };
        if let Some(new) = new {
            if new != old {
                if !matches!(old, Instruction::Branch { .. }) {
                    report.folded += 1;
                }
                prog[pc] = new;
            }
        }
    }
    compact(prog, &kill);
}

/// Liveness state: (scalar mask, vector mask).
type Live = (u32, u8);

fn live_transfer(inst: &Instruction, out: &Live) -> Live {
    let (mut s, mut v) = *out;
    if let Some(r) = uses::sreg_write(inst) {
        if r.0 != 0 {
            s &= !(1u32 << r.0);
        }
    }
    if let Some(r) = uses::vreg_write(inst) {
        v &= !(1u8 << r.0);
    }
    uses::for_each_sreg_read(inst, |r| s |= 1u32 << r.0);
    uses::for_each_vreg_read(inst, |r| v |= 1u8 << r.0);
    (s, v)
}

fn live_join(a: &Live, b: &Live) -> Live {
    (a.0 | b.0, a.1 | b.1)
}

/// Shapes whose only effect is their register result. Everything else
/// (memory, queue, stack, control, prefetch) has effects liveness cannot
/// see and must survive.
fn effect_free(inst: &Instruction) -> bool {
    matches!(
        inst,
        Instruction::SAlu { .. }
            | Instruction::SAluImm { .. }
            | Instruction::SUnary { .. }
            | Instruction::Sfxp { .. }
            | Instruction::VsMove { .. }
            | Instruction::SvMove { .. }
            | Instruction::VAlu { .. }
            | Instruction::VAluImm { .. }
            | Instruction::VUnary { .. }
            | Instruction::Vfxp { .. }
    )
}

/// Computes per-pc live-out masks for the whole program.
fn liveness(prog: &[Instruction], config: &OptConfig) -> Vec<Live> {
    let mut diags = Vec::new();
    let cfg = Cfg::build(prog, &mut diags);
    backward_fixpoint(
        prog,
        &cfg,
        (config.preserve_sregs, 0u8),
        live_join,
        |_, inst, out| live_transfer(inst, out),
    )
}

/// Removes effect-free instructions whose result is never observed.
fn eliminate_dead(prog: &mut Vec<Instruction>, config: &OptConfig, report: &mut OptReport) {
    let live = liveness(prog, config);
    let mut kill = vec![false; prog.len()];
    for (pc, inst) in prog.iter().enumerate() {
        if !effect_free(inst) {
            continue;
        }
        let (live_s, live_v) = live[pc];
        let dead = match (uses::sreg_write(inst), uses::vreg_write(inst)) {
            (Some(r), None) => r.0 == 0 || live_s & (1u32 << r.0) == 0,
            (None, Some(r)) => live_v & (1u8 << r.0) == 0,
            _ => false,
        };
        if dead {
            kill[pc] = true;
            report.dead_removed += 1;
        }
    }
    compact(prog, &kill);
}

/// Within each basic block, turns a reload of a `(base, offset)` slot
/// whose value still lives in a register into a register copy. Stores
/// invalidate everything; redefinitions invalidate affected entries.
fn eliminate_redundant_loads(prog: &mut [Instruction], report: &mut OptReport) {
    let len = prog.len();
    if len == 0 {
        return;
    }
    let mut leader = vec![false; len];
    leader[0] = true;
    for pc in 0..len {
        match prog[pc] {
            Instruction::Branch { target, .. } => {
                leader[target as usize] = true;
                if pc + 1 < len {
                    leader[pc + 1] = true;
                }
            }
            Instruction::Jump { target } => {
                leader[target as usize] = true;
                if pc + 1 < len {
                    leader[pc + 1] = true;
                }
            }
            Instruction::Halt if pc + 1 < len => leader[pc + 1] = true,
            _ => {}
        }
    }

    // (base reg, offset) → register currently holding that slot's value.
    let mut avail: Vec<((u8, i32), u8)> = Vec::new();
    for pc in 0..len {
        if leader[pc] {
            avail.clear();
        }
        let inst = prog[pc];
        let mut learned: Option<((u8, i32), u8)> = None;
        match inst {
            Instruction::Load {
                rd,
                rs_base,
                offset,
            } => {
                let key = (rs_base.0, offset);
                if let Some(&(_, holder)) = avail.iter().find(|(k, _)| *k == key) {
                    prog[pc] = Instruction::SAluImm {
                        op: AluOp::Add,
                        rd,
                        rs1: SReg(holder),
                        imm: 0,
                    };
                    report.redundant_loads += 1;
                } else {
                    learned = Some((key, rd.0));
                }
            }
            Instruction::Store { .. } | Instruction::VStore { .. } => avail.clear(),
            _ => {}
        }
        // A write to any register drops entries that used it as base or
        // holder (including the load's own destination).
        if let Some(w) = uses::sreg_write(&prog[pc]) {
            if w.0 != 0 {
                avail.retain(|((base, _), holder)| *base != w.0 && *holder != w.0);
            }
        }
        if let Some((key, holder)) = learned {
            if key.0 != holder {
                avail.push((key, holder));
            }
        }
    }
}

/// Removes jumps to the immediately following instruction.
fn prune_trivial_jumps(prog: &mut Vec<Instruction>) {
    let kill: Vec<bool> = prog
        .iter()
        .enumerate()
        .map(
            |(pc, inst)| matches!(inst, Instruction::Jump { target } if *target as usize == pc + 1),
        )
        .collect();
    if kill.iter().any(|&k| k) {
        compact(prog, &kill);
    }
}

/// Deletes killed instructions, remapping every branch/jump target to the
/// first surviving instruction at or after it. Bails out (keeps the
/// program unchanged) if a surviving branch would point past the end —
/// which cannot happen for lint-clean inputs, where every reachable path
/// ends in a `HALT` that is never killed.
fn compact(prog: &mut Vec<Instruction>, kill: &[bool]) {
    let len = prog.len();
    if !kill.iter().any(|&k| k) {
        return;
    }
    let mut new_of = vec![u32::MAX; len];
    let mut count = 0u32;
    for t in 0..len {
        if !kill[t] {
            new_of[t] = count;
            count += 1;
        }
    }
    // First surviving instruction at or after t.
    let mut next_at = vec![count; len + 1];
    for t in (0..len).rev() {
        next_at[t] = if kill[t] { next_at[t + 1] } else { new_of[t] };
    }
    for (t, inst) in prog.iter().enumerate() {
        if kill[t] {
            continue;
        }
        let target = match inst {
            Instruction::Branch { target, .. } | Instruction::Jump { target } => *target,
            _ => continue,
        };
        if next_at[target as usize] >= count {
            return; // a live branch would dangle; refuse to transform
        }
    }
    let mut out = Vec::with_capacity(count as usize);
    for (t, &inst) in prog.iter().enumerate() {
        if kill[t] {
            continue;
        }
        out.push(match inst {
            Instruction::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => Instruction::Branch {
                cond,
                rs1,
                rs2,
                target: next_at[target as usize],
            },
            Instruction::Jump { target } => Instruction::Jump {
                target: next_at[target as usize],
            },
            other => other,
        });
    }
    *prog = out;
}

/// One LICM step: finds a hoistable loop-invariant constant
/// materialization and moves it immediately before its loop header.
/// Returns `true` if a hoist happened. Iterated by [`hoist_invariants`];
/// one rebuild per hoist keeps the index remapping simple, and the
/// number of candidates per kernel is tiny.
fn hoist_one(prog: &mut Vec<Instruction>, config: &OptConfig) -> bool {
    let mut diags = Vec::new();
    let cfg = Cfg::build(prog, &mut diags);
    let dom = Dominators::compute(&cfg);
    let forest = LoopForest::build(&cfg, &dom);
    if forest.loops.is_empty() {
        return false;
    }
    let live = liveness(prog, config);
    let len = prog.len();

    // Branch/jump target set: hoisting deletes the def's pc, which is
    // only safe when nothing jumps straight to it.
    let mut is_target = vec![false; len];
    for inst in prog.iter() {
        match inst {
            Instruction::Branch { target, .. } | Instruction::Jump { target } => {
                is_target[*target as usize] = true
            }
            _ => {}
        }
    }

    for d in 0..len {
        let Instruction::SAluImm { rd, rs1, .. } = prog[d] else {
            continue;
        };
        if rs1.0 != 0 || rd.0 == 0 || is_target[d] {
            continue; // only constant materializations, never labels
        }
        let Some(li) = forest.innermost[d] else {
            continue;
        };
        let lp = &forest.loops[li];
        let h = lp.header as usize;
        if d == h {
            continue;
        }

        // Single def of rd inside the loop.
        let defs_in_loop = (0..len)
            .filter(|&p| lp.contains(p as u32) && uses::sreg_write(&prog[p]) == Some(rd))
            .count();
        if defs_in_loop != 1 {
            continue;
        }

        // rd must not be observable before the def on the first
        // iteration: not live into the header.
        let header_in = live_transfer(&prog[h], &live[h]);
        if header_in.0 & (1u32 << rd.0) != 0 {
            continue;
        }

        // Exit safety: on paths that leave the loop without executing the
        // def, hoisting changes rd — so either rd is dead on every exit
        // edge, or the def dominates every exiting block.
        let mut exits_safe = true;
        let mut def_dominates_exits = true;
        for p in 0..len as u32 {
            if !lp.contains(p) {
                continue;
            }
            for &s in &cfg.succs[p as usize] {
                if lp.contains(s) {
                    continue;
                }
                let succ_in = live_transfer(&prog[s as usize], &live[s as usize]);
                if succ_in.0 & (1u32 << rd.0) != 0 {
                    exits_safe = false;
                }
                if !dom.dominates(d as u32, p) {
                    def_dominates_exits = false;
                }
            }
        }
        if !(exits_safe || def_dominates_exits) {
            continue;
        }

        // Natural-loop side-entry guard: every edge from outside the body
        // must target the header.
        let mut side_entry = false;
        for p in 0..len as u32 {
            if lp.contains(p) {
                continue;
            }
            for &s in &cfg.succs[p as usize] {
                if lp.contains(s) && s != lp.header {
                    side_entry = true;
                }
            }
        }
        if side_entry {
            continue;
        }

        // Rebuild: insert the def at the header, drop the original.
        let hoisted = prog[d];
        let remap = |t: u32, src_in_body: bool| -> u32 {
            let t = t as usize;
            if t < h {
                t as u32
            } else if t == h {
                if src_in_body {
                    (h + 1) as u32 // back edges skip the hoisted def
                } else {
                    h as u32 // outside entries run it first
                }
            } else if t < d {
                (t + 1) as u32
            } else {
                // t == d is excluded by is_target; t > d nets out to t.
                t as u32
            }
        };
        let mut out = Vec::with_capacity(len);
        for (pc, &inst) in prog.iter().enumerate() {
            if pc == h {
                out.push(hoisted);
            }
            if pc == d {
                continue;
            }
            let in_body = lp.contains(pc as u32);
            out.push(match inst {
                Instruction::Branch {
                    cond,
                    rs1,
                    rs2,
                    target,
                } => Instruction::Branch {
                    cond,
                    rs1,
                    rs2,
                    target: remap(target, in_body),
                },
                Instruction::Jump { target } => Instruction::Jump {
                    target: remap(target, in_body),
                },
                other => other,
            });
        }
        *prog = out;
        return true;
    }
    false
}

/// Runs LICM to a local fixpoint.
fn hoist_invariants(prog: &mut Vec<Instruction>, config: &OptConfig, report: &mut OptReport) {
    // Each hoist rebuilds the CFG; cap at program length as a safety net.
    for _ in 0..prog.len() {
        if !hoist_one(prog, config) {
            return;
        }
        report.hoisted += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::sim::pu::ProcessingUnit;
    use std::sync::Arc;

    fn opt(src: &str) -> (Vec<Instruction>, Vec<Instruction>, OptReport) {
        let program = assemble(src).expect("assembles");
        let (optimized, report) = optimize(&program, &OptConfig::default());
        (program, optimized, report)
    }

    /// Runs both programs on identical PUs and asserts identical
    /// architectural results (queue contents + scratchpad)
    fn assert_equivalent(a: &[Instruction], b: &[Instruction], dram: &[i32], sregs: &[(u8, i32)]) {
        let run = |prog: &[Instruction]| {
            let mut pu = ProcessingUnit::new(4, Arc::new(dram.to_vec()));
            pu.load_program(prog.to_vec());
            for &(r, v) in sregs {
                pu.set_sreg(r as usize, v);
            }
            let stats = pu.run(1_000_000).expect("halts");
            let queue: Vec<(i32, i32)> = pu
                .pqueue()
                .entries()
                .iter()
                .map(|e| (e.value, e.id))
                .collect();
            (queue, stats.cycles)
        };
        let (qa, ca) = run(a);
        let (qb, cb) = run(b);
        assert_eq!(qa, qb, "architectural results diverge");
        assert!(
            cb <= ca,
            "optimization made the program slower: {ca} → {cb}"
        );
    }

    #[test]
    fn constant_chain_folds_to_immediates() {
        let (_, optimized, report) = opt("addi s1, s0, 6\n\
             addi s2, s0, 7\n\
             add s3, s1, s2\n\
             pqueue_reset\n\
             pqueue_insert s0, s3\n\
             halt\n");
        assert!(report.folded >= 1, "{report:?}");
        assert!(report.dead_removed >= 2, "{report:?}");
        // The adds collapse into one constant load feeding the insert.
        assert!(optimized.len() <= 4, "{optimized:?}");
        assert!(optimized.contains(&load_imm(SReg(3), 13)));
    }

    #[test]
    fn constant_branch_resolves_and_kills_the_dead_arm() {
        let (program, optimized, report) = opt("addi s1, s0, 1\n\
             addi s2, s0, 2\n\
             blt s2, s1, less\n\
             pqueue_reset\n\
             pqueue_insert s0, s2\n\
             halt\n\
             less:\n\
             pqueue_reset\n\
             pqueue_insert s0, s1\n\
             halt\n");
        assert!(report.branches_resolved >= 1, "{report:?}");
        assert!(report.unreachable_removed >= 3, "{report:?}");
        assert!(optimized.len() < program.len());
        assert_equivalent(&program, &optimized, &[], &[]);
    }

    #[test]
    fn degenerate_counted_loop_loses_its_back_edge() {
        // chunks == 1: the inner loop runs exactly once, so the counter,
        // the bound, and the branch all fold away.
        let src = "addi s6, s0, 1\n\
                   addi s5, s0, 0\n\
                   inner:\n\
                   load s7, s1, 0\n\
                   addi s1, s1, 4\n\
                   addi s5, s5, 1\n\
                   blt s5, s6, inner\n\
                   pqueue_reset\n\
                   pqueue_insert s0, s7\n\
                   halt\n";
        let (program, optimized, report) = opt(src);
        assert!(report.branches_resolved >= 1, "{report:?}");
        assert!(
            !optimized
                .iter()
                .any(|i| matches!(i, Instruction::Branch { .. })),
            "back edge should be gone: {optimized:?}"
        );
        assert!(optimized.len() + 3 <= program.len(), "{optimized:?}");
        assert_equivalent(&program, &optimized, &[11, 22, 33], &[(1, 0)]);
    }

    #[test]
    fn dead_code_is_removed_but_loads_survive() {
        let (_, optimized, report) = opt("addi s9, s0, 42\n\
             load s8, s0, 0\n\
             pqueue_reset\n\
             pqueue_insert s0, s0\n\
             halt\n");
        // s9 is dead; the load's value is dead too, but loads are never
        // removed (timing + DRAM statistics are observable).
        assert!(report.dead_removed >= 1, "{report:?}");
        assert!(!optimized.contains(&load_imm(SReg(9), 42)));
        assert!(optimized
            .iter()
            .any(|i| matches!(i, Instruction::Load { .. })));
    }

    #[test]
    fn redundant_scratchpad_reload_becomes_a_copy() {
        let src = "addi s1, s0, 64\n\
                   load s2, s1, 0\n\
                   load s3, s1, 0\n\
                   pqueue_reset\n\
                   pqueue_insert s2, s3\n\
                   halt\n";
        let (program, optimized, report) = opt(src);
        assert_eq!(report.redundant_loads, 1, "{report:?}");
        assert_eq!(
            optimized
                .iter()
                .filter(|i| matches!(i, Instruction::Load { .. }))
                .count(),
            1
        );
        assert_equivalent(&program, &optimized, &[], &[]);
    }

    #[test]
    fn stores_invalidate_the_reload_table() {
        let src = "addi s1, s0, 64\n\
                   load s2, s1, 0\n\
                   store s0, s1, 0\n\
                   load s3, s1, 0\n\
                   pqueue_reset\n\
                   pqueue_insert s2, s3\n\
                   halt\n";
        let (_, optimized, report) = opt(src);
        assert_eq!(report.redundant_loads, 0, "{report:?}");
        assert_eq!(
            optimized
                .iter()
                .filter(|i| matches!(i, Instruction::Load { .. }))
                .count(),
            2
        );
    }

    #[test]
    fn loop_invariant_constant_is_hoisted() {
        // s9 is rematerialized every iteration and consumed by an
        // instruction with no immediate form (PQUEUE_INSERT), so const
        // folding cannot absorb it — LICM must move it out.
        let src = "pqueue_reset\n\
                   addi s1, s0, 0\n\
                   addi s2, s0, 3\n\
                   loop:\n\
                   add s4, s1, s0\n\
                   addi s9, s0, 7\n\
                   pqueue_insert s9, s4\n\
                   addi s1, s1, 1\n\
                   blt s1, s2, loop\n\
                   halt\n";
        let (program, optimized, report) = opt(src);
        assert!(report.hoisted >= 1, "{report:?}");
        assert_equivalent(&program, &optimized, &[], &[]);
        // Exactly one copy of the def survives, before the loop.
        let count = optimized
            .iter()
            .filter(|i| **i == load_imm(SReg(9), 7))
            .count();
        assert_eq!(count, 1);
        let def_at = optimized
            .iter()
            .position(|i| *i == load_imm(SReg(9), 7))
            .unwrap();
        let branch_at = optimized
            .iter()
            .position(|i| matches!(i, Instruction::Branch { .. }))
            .unwrap();
        let back_target = match optimized[branch_at] {
            Instruction::Branch { target, .. } => target as usize,
            _ => unreachable!(),
        };
        assert!(def_at < back_target, "def must sit before the loop header");
    }

    #[test]
    fn live_in_register_is_not_hoisted() {
        // s9 is read before its def on iteration one (via s4 entry
        // value), so hoisting would change the first iteration.
        let src = "addi s1, s0, 0\n\
                   addi s2, s0, 3\n\
                   addi s9, s0, 100\n\
                   loop:\n\
                   add s3, s3, s9\n\
                   addi s9, s0, 7\n\
                   addi s1, s1, 1\n\
                   blt s1, s2, loop\n\
                   pqueue_reset\n\
                   pqueue_insert s0, s3\n\
                   halt\n";
        let (program, optimized, _) = opt(src);
        assert_equivalent(&program, &optimized, &[], &[(3, 0)]);
    }

    #[test]
    fn optimization_is_idempotent() {
        let src = "addi s6, s0, 1\n\
                   addi s5, s0, 0\n\
                   inner:\n\
                   load s7, s1, 0\n\
                   addi s5, s5, 1\n\
                   blt s5, s6, inner\n\
                   pqueue_reset\n\
                   pqueue_insert s0, s7\n\
                   halt\n";
        let program = assemble(src).expect("assembles");
        let (once, _) = optimize(&program, &OptConfig::default());
        let (twice, report2) = optimize(&once, &OptConfig::default());
        assert_eq!(once, twice);
        assert_eq!(report2.instructions_before, report2.instructions_after);
    }

    #[test]
    fn preserve_sregs_keeps_final_values() {
        let src = "addi s9, s0, 42\nhalt\n";
        let program = assemble(src).expect("assembles");
        let (stripped, _) = optimize(&program, &OptConfig::default());
        assert_eq!(stripped.len(), 1, "dead by default: {stripped:?}");
        let (kept, _) = optimize(
            &program,
            &OptConfig {
                preserve_sregs: 1 << 9,
                ..OptConfig::default()
            },
        );
        assert_eq!(kept.len(), 2, "preserved when requested: {kept:?}");
    }

    #[test]
    fn empty_program_is_a_no_op() {
        let (optimized, report) = optimize(&[], &OptConfig::default());
        assert!(optimized.is_empty());
        assert_eq!(report.instructions_after, 0);
    }
}
