//! Control-flow graph construction and structural checks.
//!
//! SSAM programs branch to absolute instruction indices (the assembler
//! resolves labels), so the CFG is immediate: every instruction is a
//! node; a branch has two successors (target and fallthrough), a jump
//! one, `HALT` none. Building the graph surfaces three whole-program
//! defects: branch targets outside the program ([`DiagCode::BranchTargetOutOfRange`]),
//! instructions no path can reach ([`DiagCode::UnreachableCode`]), and
//! reachable paths that run off the end of instruction memory without a
//! `HALT` ([`DiagCode::MissingHalt`] — the static form of the simulator's
//! `PcOutOfRange` fault).

use crate::isa::inst::Instruction;

use super::{DiagCode, Diagnostic};

/// A program's control-flow graph plus reachability.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Valid successors of each instruction (out-of-range targets are
    /// diagnosed and dropped).
    pub succs: Vec<Vec<u32>>,
    /// Whether each instruction is reachable from entry (pc 0).
    pub reachable: Vec<bool>,
}

impl Cfg {
    /// Builds the CFG for `program`, appending structural diagnostics.
    pub fn build(program: &[Instruction], diags: &mut Vec<Diagnostic>) -> Self {
        let len = program.len();
        let mut succs: Vec<Vec<u32>> = Vec::with_capacity(len);
        let mut off_end = Vec::new();
        for (pc, inst) in program.iter().enumerate() {
            let pc = pc as u32;
            let mut s = Vec::with_capacity(2);
            let mut fallthrough = true;
            let mut targets = Vec::new();
            match *inst {
                Instruction::Branch { target, .. } => targets.push(target),
                Instruction::Jump { target } => {
                    targets.push(target);
                    fallthrough = false;
                }
                Instruction::Halt => fallthrough = false,
                _ => {}
            }
            for t in targets {
                if (t as usize) < len {
                    s.push(t);
                } else {
                    diags.push(Diagnostic::at(
                        DiagCode::BranchTargetOutOfRange,
                        pc,
                        format!("branch target {t} is outside the {len}-instruction program"),
                    ));
                }
            }
            if fallthrough {
                if (pc as usize + 1) < len {
                    s.push(pc + 1);
                } else {
                    off_end.push(pc);
                }
            }
            succs.push(s);
        }

        // Reachability from entry.
        let mut reachable = vec![false; len];
        if len > 0 {
            let mut stack = vec![0u32];
            reachable[0] = true;
            while let Some(pc) = stack.pop() {
                for &s in &succs[pc as usize] {
                    if !reachable[s as usize] {
                        reachable[s as usize] = true;
                        stack.push(s);
                    }
                }
            }
        } else {
            diags.push(Diagnostic::whole_program(
                DiagCode::MissingHalt,
                "empty program: execution faults immediately".to_string(),
            ));
        }

        for pc in off_end {
            if reachable[pc as usize] {
                diags.push(Diagnostic::at(
                    DiagCode::MissingHalt,
                    pc,
                    "execution can fall off the end of the program without HALT".to_string(),
                ));
            }
        }

        // Report unreachable code once per contiguous block.
        let mut pc = 0usize;
        while pc < len {
            if reachable[pc] {
                pc += 1;
                continue;
            }
            let start = pc;
            while pc < len && !reachable[pc] {
                pc += 1;
            }
            diags.push(Diagnostic::at(
                DiagCode::UnreachableCode,
                start as u32,
                format!("instructions {start}..{} are unreachable", pc - 1),
            ));
        }

        Self { succs, reachable }
    }

    /// Predecessor lists, the transpose of [`Cfg::succs`].
    pub fn preds(&self) -> Vec<Vec<u32>> {
        let mut preds: Vec<Vec<u32>> = vec![Vec::new(); self.succs.len()];
        for (pc, succs) in self.succs.iter().enumerate() {
            for &s in succs {
                preds[s as usize].push(pc as u32);
            }
        }
        preds
    }
}

/// Generic forward dataflow fixpoint over a [`Cfg`].
///
/// Returns the *in-state* of every instruction (`None` for unreachable
/// ones). `join` must be a monotone least-upper-bound over a finite
/// lattice and `transfer` monotone, or the worklist will not terminate.
pub(crate) fn forward_fixpoint<S: Clone + PartialEq>(
    program: &[Instruction],
    cfg: &Cfg,
    entry: S,
    join: impl Fn(&S, &S) -> S,
    transfer: impl Fn(u32, &Instruction, &S) -> S,
) -> Vec<Option<S>> {
    let len = program.len();
    let mut in_states: Vec<Option<S>> = vec![None; len];
    if len == 0 {
        return in_states;
    }
    in_states[0] = Some(entry);
    let mut worklist = std::collections::VecDeque::from([0u32]);
    let mut queued = vec![false; len];
    queued[0] = true;
    while let Some(pc) = worklist.pop_front() {
        queued[pc as usize] = false;
        let state = in_states[pc as usize]
            .clone()
            .expect("queued nodes have in-states");
        let out = transfer(pc, &program[pc as usize], &state);
        for &succ in &cfg.succs[pc as usize] {
            let merged = match &in_states[succ as usize] {
                None => out.clone(),
                Some(cur) => join(cur, &out),
            };
            if in_states[succ as usize].as_ref() != Some(&merged) {
                in_states[succ as usize] = Some(merged);
                if !queued[succ as usize] {
                    queued[succ as usize] = true;
                    worklist.push_back(succ);
                }
            }
        }
    }
    in_states
}

/// Generic backward dataflow fixpoint over a [`Cfg`].
///
/// The dual of [`forward_fixpoint`]: propagates states against control
/// flow, so the result is the *out-state* of every instruction — the
/// join over its successors' post-transfer states. Instructions with no
/// successor (`HALT`, dropped edges) get `exit` as their out-state.
/// Unreachable instructions still participate (their states are simply
/// never observed by reachable code), so every entry is `Some`.
pub(crate) fn backward_fixpoint<S: Clone + PartialEq>(
    program: &[Instruction],
    cfg: &Cfg,
    exit: S,
    join: impl Fn(&S, &S) -> S,
    transfer: impl Fn(u32, &Instruction, &S) -> S,
) -> Vec<S> {
    let len = program.len();
    let mut out_states: Vec<S> = vec![exit; len];
    if len == 0 {
        return out_states;
    }
    let preds = cfg.preds();
    let mut worklist: std::collections::VecDeque<u32> = (0..len as u32).rev().collect();
    let mut queued = vec![true; len];
    while let Some(pc) = worklist.pop_front() {
        queued[pc as usize] = false;
        let inflow = transfer(pc, &program[pc as usize], &out_states[pc as usize]);
        for &pred in &preds[pc as usize] {
            let merged = join(&out_states[pred as usize], &inflow);
            if out_states[pred as usize] != merged {
                out_states[pred as usize] = merged;
                if !queued[pred as usize] {
                    queued[pred as usize] = true;
                    worklist.push_back(pred);
                }
            }
        }
    }
    out_states
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn diags_for(src: &str) -> Vec<Diagnostic> {
        let program = assemble(src).expect("assembles");
        let mut d = Vec::new();
        Cfg::build(&program, &mut d);
        d
    }

    #[test]
    fn straight_line_with_halt_is_clean() {
        assert!(diags_for("addi s1, s0, 1\nhalt\n").is_empty());
    }

    #[test]
    fn missing_halt_is_flagged() {
        let d = diags_for("addi s1, s0, 1\naddi s2, s0, 2\n");
        assert!(d.iter().any(|x| x.code == DiagCode::MissingHalt));
    }

    #[test]
    fn unreachable_block_is_flagged_once() {
        let d = diags_for("j skip\naddi s1, s0, 1\naddi s2, s0, 2\nskip:\nhalt\n");
        let unreachable: Vec<_> = d
            .iter()
            .filter(|x| x.code == DiagCode::UnreachableCode)
            .collect();
        assert_eq!(unreachable.len(), 1);
        assert_eq!(unreachable[0].pc, Some(1));
    }

    #[test]
    fn out_of_range_target_is_flagged() {
        // Hand-built program: labels cannot produce bad targets.
        let program = vec![Instruction::Jump { target: 99 }, Instruction::Halt];
        let mut d = Vec::new();
        let cfg = Cfg::build(&program, &mut d);
        assert!(d.iter().any(|x| x.code == DiagCode::BranchTargetOutOfRange));
        // The bad edge is dropped, so the halt is unreachable too.
        assert!(!cfg.reachable[1]);
    }

    #[test]
    fn fixpoint_reaches_loop_stability() {
        // Count max register writes along paths: lattice = u32 saturating.
        let program = assemble("addi s1, s0, 0\nloop:\naddi s1, s1, 1\nblt s1, s2, loop\nhalt\n")
            .expect("assembles");
        let mut d = Vec::new();
        let cfg = Cfg::build(&program, &mut d);
        let states = forward_fixpoint(
            &program,
            &cfg,
            0u32,
            |a, b| (*a).max(*b),
            |_, inst, s| match inst {
                Instruction::SAluImm { .. } => (s + 1).min(10),
                _ => *s,
            },
        );
        // The loop head joins the entry (1 write) and back-edge (saturated).
        assert_eq!(states[1], Some(10));
    }

    #[test]
    fn preds_transpose_succs() {
        let program =
            assemble("loop:\naddi s1, s1, 1\nblt s1, s2, loop\nhalt\n").expect("assembles");
        let mut d = Vec::new();
        let cfg = Cfg::build(&program, &mut d);
        let preds = cfg.preds();
        assert_eq!(preds[0], vec![1]); // back edge
        assert_eq!(preds[1], vec![0]);
        assert_eq!(preds[2], vec![1]); // branch fallthrough
    }

    #[test]
    fn backward_fixpoint_computes_liveness() {
        // s2 is read by the branch, so it is live-out of pc 0; s3 is
        // never read, so it is dead everywhere.
        let program = assemble("addi s3, s0, 7\nloop:\naddi s1, s1, 1\nblt s1, s2, loop\nhalt\n")
            .expect("assembles");
        let mut d = Vec::new();
        let cfg = Cfg::build(&program, &mut d);
        let live: Vec<u32> = backward_fixpoint(
            &program,
            &cfg,
            0u32,
            |a, b| a | b,
            |_, inst, out| {
                let mut s = *out;
                if let Some(r) = crate::analysis::uses::sreg_write(inst) {
                    s &= !(1 << r.0);
                }
                crate::analysis::uses::for_each_sreg_read(inst, |r| s |= 1 << r.0);
                s
            },
        );
        assert_ne!(live[0] & (1 << 2), 0, "s2 live out of pc 0");
        assert_eq!(live[0] & (1 << 3), 0, "s3 dead everywhere");
        assert_ne!(live[1] & (1 << 1), 0, "s1 live around the loop");
    }
}
