//! Priority-queue protocol checking.
//!
//! The hardware priority queue keeps state across kernel launches; a
//! kernel that issues `PQUEUE_INSERT` without first issuing
//! `PQUEUE_RESET` merges the previous query's candidates into the new
//! result set — a silent-wrong-answer bug the simulator cannot trap
//! (the insert is architecturally legal). A forward dataflow tracks, per
//! program point, whether a reset has happened on **all** paths (`must`)
//! and on **some** path (`may`): an insert with `may = false` can never
//! see a reset ([`DiagCode::InsertWithoutReset`]); one with
//! `must = false` is reset on only some paths
//! ([`DiagCode::MaybeInsertWithoutReset`]).
//!
//! Harnesses that guarantee a fresh queue externally (the differential
//! tester constructs a new PU per program) disable the protocol via
//! [`VerifyConfig::require_pqueue_reset`].

use crate::isa::inst::Instruction;

use super::cfg::{forward_fixpoint, Cfg};
use super::{DiagCode, Diagnostic, VerifyConfig};

/// Reset status at a program point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ResetState {
    /// A `PQUEUE_RESET` dominates this point.
    must: bool,
    /// A `PQUEUE_RESET` occurs on at least one path to this point.
    may: bool,
}

/// Runs the pass, appending diagnostics.
pub fn check(
    program: &[Instruction],
    cfg: &Cfg,
    config: &VerifyConfig,
    diags: &mut Vec<Diagnostic>,
) {
    if !config.require_pqueue_reset {
        return;
    }
    let states = forward_fixpoint(
        program,
        cfg,
        ResetState {
            must: false,
            may: false,
        },
        |a, b| ResetState {
            must: a.must && b.must,
            may: a.may || b.may,
        },
        |_, inst, s| match inst {
            Instruction::PqueueReset => ResetState {
                must: true,
                may: true,
            },
            _ => *s,
        },
    );

    for (pc, inst) in program.iter().enumerate() {
        if !matches!(inst, Instruction::PqueueInsert { .. }) {
            continue;
        }
        let Some(state) = &states[pc] else { continue };
        if !state.may {
            diags.push(Diagnostic::at(
                DiagCode::InsertWithoutReset,
                pc as u32,
                "PQUEUE_INSERT is never preceded by PQUEUE_RESET: stale \
                 candidates from the previous launch survive"
                    .to_string(),
            ));
        } else if !state.must {
            diags.push(Diagnostic::at(
                DiagCode::MaybeInsertWithoutReset,
                pc as u32,
                "PQUEUE_INSERT is not dominated by PQUEUE_RESET (reset happens \
                 on only some paths)"
                    .to_string(),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn diags_for(src: &str, require: bool) -> Vec<Diagnostic> {
        let program = assemble(src).expect("assembles");
        let mut d = Vec::new();
        let cfg = Cfg::build(&program, &mut d);
        let config = VerifyConfig {
            require_pqueue_reset: require,
            ..VerifyConfig::permissive(4)
        };
        check(&program, &cfg, &config, &mut d);
        d
    }

    #[test]
    fn reset_before_insert_is_clean() {
        assert!(diags_for("pqueue_reset\npqueue_insert s1, s2\nhalt\n", true).is_empty());
    }

    #[test]
    fn insert_without_reset_is_an_error() {
        let d = diags_for("pqueue_insert s1, s2\nhalt\n", true);
        assert!(d
            .iter()
            .any(|x| x.code == DiagCode::InsertWithoutReset && x.pc == Some(0)));
    }

    #[test]
    fn reset_on_one_arm_only_is_a_warning() {
        let src = "be s1, s0, ins\npqueue_reset\nins:\npqueue_insert s2, s3\nhalt\n";
        let d = diags_for(src, true);
        assert!(
            d.iter()
                .any(|x| x.code == DiagCode::MaybeInsertWithoutReset),
            "{d:?}"
        );
        assert!(!d.iter().any(|x| x.code == DiagCode::InsertWithoutReset));
    }

    #[test]
    fn permissive_harnesses_can_waive_the_protocol() {
        assert!(diags_for("pqueue_insert s1, s2\nhalt\n", false).is_empty());
    }

    #[test]
    fn reset_inside_the_scan_loop_still_dominates() {
        let src = "pqueue_reset\nouter:\npqueue_insert s1, s2\nbne s3, s0, outer\nhalt\n";
        assert!(diags_for(src, true).is_empty());
    }
}
