//! Static verification of assembled SSAM kernels (`ssam-lint`).
//!
//! The kernels of [`crate::kernels`] are *generated* programs: a bug in a
//! generator (a clobbered register, an unbalanced stack path, a missing
//! `PQUEUE_RESET`) produces a silently wrong accelerator, and the paper's
//! methodology has no RTL lint to catch it. This module is that lint: a
//! set of sound forward dataflow analyses over the assembled
//! [`Instruction`] stream that prove the absence of whole classes of
//! runtime faults before a kernel ever reaches a processing unit.
//!
//! Passes (each a separate submodule):
//!
//! * [`cfg`] — control-flow graph, branch-target validation,
//!   reachability, missing-`HALT` paths.
//! * [`regflow`] — register def-use dataflow: reads of scalar/vector
//!   registers never written on any (or some) path, modulo the
//!   driver-initialized set declared in [`KernelLayout::driver_sregs`].
//! * [`stackflow`] — hardware-stack depth intervals along all paths,
//!   against the stack unit's capacity ([`crate::sim::stack::STACK_DEPTH`]).
//! * [`pqueue`] — priority-queue protocol: `PQUEUE_INSERT` must be
//!   dominated by a `PQUEUE_RESET`, `PQUEUE_LOAD` indices must be sane.
//! * [`memcheck`] — constant-propagation over the scalar file, bounds and
//!   alignment checks of constant-address scratchpad accesses, vector
//!   lane checks, and store-target checks.
//!
//! Severity encodes modality: a **must**-fault (every execution reaching
//! the instruction faults, e.g. a pop at provably-zero depth) is an
//! [`Severity::Error`]; a **may**-fault (some abstract path faults, e.g.
//! data-dependent stack growth in a tree traversal) is a
//! [`Severity::Warning`]. `ssam-lint --all` requires every shipped kernel
//! to be error-free; warnings document residual data-dependent risk.
//!
//! The analyses are sound over-approximations: if [`verify_program`]
//! returns no diagnostics at all, execution on the simulator cannot raise
//! an uninitialized-read, stack, lane, constant-address scratchpad, or
//! missing-`HALT` fault (property-tested in `tests/analysis_properties.rs`).
//!
//! Beyond linting, the same dataflow machinery (forward/backward solvers
//! in [`cfg`], the shared constant lattice in `constprop`, loop structure
//! and trip counts in `loops`) drives two *clients* that transform and
//! predict rather than check:
//!
//! * [`opt`] — a semantics-preserving kernel optimizer (constant folding
//!   and propagation, branch resolution, unreachable/dead-code
//!   elimination, redundant scratchpad-load elimination, loop-invariant
//!   code motion) run by `Kernel::build` on every generated kernel.
//! * [`cost`] — a static cycle/DRAM-traffic cost model with a predicted
//!   memory- vs compute-bound classification, cross-checked against the
//!   cycle simulator (`ssam-lint --cost`).

pub mod cfg;
pub(crate) mod constprop;
pub mod cost;
pub(crate) mod loops;
pub mod memcheck;
pub mod opt;
pub mod pqueue;
pub mod regflow;
pub mod stackflow;
pub mod uses;

use std::fmt;

use crate::isa::inst::Instruction;
use crate::kernels::{Kernel, KernelLayout};
use crate::sim::stack::STACK_DEPTH;

/// How certain and how severe a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// A may-fault or protocol smell: some abstract path misbehaves, but
    /// data-dependent control flow might avoid it at runtime.
    Warning,
    /// A must-fault: every execution reaching the flagged instruction
    /// faults (or the program is structurally broken).
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Machine-readable diagnostic codes, one per defect class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DiagCode {
    /// `CF001` — branch/jump target outside the program.
    BranchTargetOutOfRange,
    /// `CF002` — instructions unreachable from entry.
    UnreachableCode,
    /// `CF003` — a reachable path runs off the end without `HALT`.
    MissingHalt,
    /// `REG001` — scalar register read but never written on any path.
    UninitScalarRead,
    /// `REG002` — scalar register uninitialized on *some* path to a read.
    MaybeUninitScalarRead,
    /// `REG003` — vector register read but never written on any path.
    UninitVectorRead,
    /// `REG004` — vector register uninitialized on *some* path to a read.
    MaybeUninitVectorRead,
    /// `STK001` — `POP` with a provably empty stack.
    StackUnderflow,
    /// `STK002` — `POP` may execute with an empty stack on some path.
    MaybeStackUnderflow,
    /// `STK003` — `PUSH` with a provably full stack.
    StackOverflow,
    /// `STK004` — stack depth not provably bounded by the hardware
    /// capacity (data-dependent push loops).
    MaybeStackOverflow,
    /// `PQ001` — `PQUEUE_INSERT` with no `PQUEUE_RESET` on any path.
    InsertWithoutReset,
    /// `PQ002` — `PQUEUE_INSERT` not dominated by `PQUEUE_RESET`.
    MaybeInsertWithoutReset,
    /// `PQ003` — `PQUEUE_LOAD` with a constant index outside the base
    /// 16-entry queue (needs chaining, or is negative).
    PqueueLoadOutOfRange,
    /// `SP001` — constant-address scratchpad access out of bounds.
    SpadOutOfBounds,
    /// `SP002` — constant-address access not 4-byte aligned.
    SpadMisaligned,
    /// `SP003` — constant-address store into the staged query region.
    StoreClobbersQuery,
    /// `SP004` — store with a constant DRAM address (the dataset is
    /// read-only from the PU).
    StoreToDram,
    /// `LANE001` — immediate lane index outside the configured VL.
    LaneOutOfRange,
    /// `MF001` — `MEM_FETCH` with a non-positive prefetch length.
    FetchLenNonPositive,
}

impl DiagCode {
    /// The stable machine-readable code string (e.g. `"STK001"`).
    pub fn as_str(self) -> &'static str {
        use DiagCode::*;
        match self {
            BranchTargetOutOfRange => "CF001",
            UnreachableCode => "CF002",
            MissingHalt => "CF003",
            UninitScalarRead => "REG001",
            MaybeUninitScalarRead => "REG002",
            UninitVectorRead => "REG003",
            MaybeUninitVectorRead => "REG004",
            StackUnderflow => "STK001",
            MaybeStackUnderflow => "STK002",
            StackOverflow => "STK003",
            MaybeStackOverflow => "STK004",
            InsertWithoutReset => "PQ001",
            MaybeInsertWithoutReset => "PQ002",
            PqueueLoadOutOfRange => "PQ003",
            SpadOutOfBounds => "SP001",
            SpadMisaligned => "SP002",
            StoreClobbersQuery => "SP003",
            StoreToDram => "SP004",
            LaneOutOfRange => "LANE001",
            FetchLenNonPositive => "MF001",
        }
    }

    /// The severity implied by the code's modality (must ⇒ error,
    /// may ⇒ warning).
    pub fn severity(self) -> Severity {
        use DiagCode::*;
        match self {
            BranchTargetOutOfRange
            | MissingHalt
            | UninitScalarRead
            | UninitVectorRead
            | StackUnderflow
            | StackOverflow
            | InsertWithoutReset
            | SpadOutOfBounds
            | SpadMisaligned
            | StoreToDram
            | LaneOutOfRange => Severity::Error,
            UnreachableCode
            | MaybeUninitScalarRead
            | MaybeUninitVectorRead
            | MaybeStackUnderflow
            | MaybeStackOverflow
            | MaybeInsertWithoutReset
            | PqueueLoadOutOfRange
            | StoreClobbersQuery
            | FetchLenNonPositive => Severity::Warning,
        }
    }
}

/// One finding of the static verifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Defect class.
    pub code: DiagCode,
    /// Severity derived from the code's modality.
    pub severity: Severity,
    /// Instruction index the finding anchors to (`None` for
    /// whole-program findings such as an empty program).
    pub pc: Option<u32>,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    pub(crate) fn at(code: DiagCode, pc: u32, message: String) -> Self {
        Self {
            code,
            severity: code.severity(),
            pc: Some(pc),
            message,
        }
    }

    pub(crate) fn whole_program(code: DiagCode, message: String) -> Self {
        Self {
            code,
            severity: code.severity(),
            pc: None,
            message,
        }
    }

    /// Whether the diagnostic is an error (must-fault).
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.pc {
            Some(pc) => {
                write!(
                    f,
                    "{}[{}] at pc {}: {}",
                    self.severity,
                    self.code.as_str(),
                    pc,
                    self.message
                )
            }
            None => write!(
                f,
                "{}[{}]: {}",
                self.severity,
                self.code.as_str(),
                self.message
            ),
        }
    }
}

/// What the verifier may assume about the environment a program runs in.
///
/// [`verify`] derives this from a kernel's [`KernelLayout`]; harnesses
/// that run raw instruction streams (e.g. the differential tester, which
/// zero-initializes every register) can use [`VerifyConfig::permissive`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifyConfig {
    /// Vector length the program will run at (lane bound for
    /// `SVMOVE`/`VSMOVE` immediates).
    pub vl: usize,
    /// Scalar registers the driver initializes before launch (bitmask;
    /// bit 0 / `s0` is implicitly always initialized).
    pub driver_sregs: u32,
    /// Vector registers assumed initialized at entry (bitmask).
    pub driver_vregs: u8,
    /// Hardware stack capacity in entries.
    pub stack_depth: usize,
    /// Require every `PQUEUE_INSERT` to be dominated by `PQUEUE_RESET`.
    /// Off for harnesses that guarantee a fresh queue externally.
    pub require_pqueue_reset: bool,
    /// Scratchpad byte range holding the staged query (`[start, end)`),
    /// if the driver contract declares one; constant-address stores into
    /// it are flagged.
    pub query_region: Option<(u32, u32)>,
}

impl VerifyConfig {
    /// The configuration implied by a kernel's layout contract.
    pub fn from_layout(layout: &KernelLayout) -> Self {
        Self {
            vl: layout.vl,
            driver_sregs: layout.driver_sregs,
            driver_vregs: 0,
            stack_depth: STACK_DEPTH,
            require_pqueue_reset: true,
            query_region: Some((
                layout.query_addr,
                layout.query_addr + (layout.vec_words * 4) as u32,
            )),
        }
    }

    /// A maximally permissive configuration for raw programs: every
    /// register is assumed initialized and no queue protocol is imposed.
    /// Structural, stack, lane, and memory checks still apply.
    pub fn permissive(vl: usize) -> Self {
        Self {
            vl,
            driver_sregs: u32::MAX,
            driver_vregs: u8::MAX,
            stack_depth: STACK_DEPTH,
            require_pqueue_reset: false,
            query_region: None,
        }
    }
}

/// Statically verifies a generated kernel against its declared layout.
///
/// Returns all findings, most severe first (then by program counter).
/// An empty result is a proof that the kernel cannot raise the fault
/// classes listed in the module docs.
pub fn verify(kernel: &Kernel) -> Vec<Diagnostic> {
    verify_program(&kernel.program, &VerifyConfig::from_layout(&kernel.layout))
}

/// Statically verifies a raw instruction stream under `config`.
pub fn verify_program(program: &[Instruction], config: &VerifyConfig) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let graph = cfg::Cfg::build(program, &mut diags);
    regflow::check(program, &graph, config, &mut diags);
    stackflow::check(program, &graph, config, &mut diags);
    pqueue::check(program, &graph, config, &mut diags);
    memcheck::check(program, &graph, config, &mut diags);
    diags.sort_by(|a, b| {
        b.severity
            .cmp(&a.severity)
            .then(a.pc.cmp(&b.pc))
            .then(a.code.cmp(&b.code))
    });
    // Passes can rediscover the same defect (e.g. a bad address reached
    // along several abstract paths); one finding per (code, pc) is enough.
    diags.dedup_by(|a, b| a.code == b.code && a.pc == b.pc);
    diags
}

/// Every diagnostic code, for exhaustive reporting and tests.
pub const ALL_DIAG_CODES: [DiagCode; 20] = [
    DiagCode::BranchTargetOutOfRange,
    DiagCode::UnreachableCode,
    DiagCode::MissingHalt,
    DiagCode::UninitScalarRead,
    DiagCode::MaybeUninitScalarRead,
    DiagCode::UninitVectorRead,
    DiagCode::MaybeUninitVectorRead,
    DiagCode::StackUnderflow,
    DiagCode::MaybeStackUnderflow,
    DiagCode::StackOverflow,
    DiagCode::MaybeStackOverflow,
    DiagCode::InsertWithoutReset,
    DiagCode::MaybeInsertWithoutReset,
    DiagCode::PqueueLoadOutOfRange,
    DiagCode::SpadOutOfBounds,
    DiagCode::SpadMisaligned,
    DiagCode::StoreClobbersQuery,
    DiagCode::StoreToDram,
    DiagCode::LaneOutOfRange,
    DiagCode::FetchLenNonPositive,
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::inst::{AluOp, BranchCond};
    use crate::isa::reg::SReg;
    use crate::kernels::linear;

    /// A no-op with the same pc footprint as any single instruction.
    fn nop() -> Instruction {
        Instruction::SAlu {
            op: AluOp::Add,
            rd: SReg(0),
            rs1: SReg(0),
            rs2: SReg(0),
        }
    }

    #[test]
    fn shipped_linear_kernel_is_diagnostic_free() {
        let k = linear::euclidean(100, 8);
        assert_eq!(verify(&k), Vec::new());
    }

    #[test]
    fn mutation_dropping_pqueue_reset_is_caught() {
        let k = linear::euclidean(16, 4);
        // Replace the reset with a nop so branch targets stay valid.
        let mutated: Vec<Instruction> = k
            .program
            .iter()
            .map(|&i| {
                if i == Instruction::PqueueReset {
                    nop()
                } else {
                    i
                }
            })
            .collect();
        assert_ne!(mutated, k.program, "kernel must contain a reset to drop");
        let diags = verify_program(&mutated, &VerifyConfig::from_layout(&k.layout));
        assert!(
            diags.iter().any(|d| d.code == DiagCode::InsertWithoutReset),
            "expected PQ001, got: {diags:?}"
        );
    }

    #[test]
    fn mutation_unbalancing_the_stack_is_caught() {
        let k = linear::euclidean(16, 4);
        // Turn the first instruction into a POP: the stack is empty at
        // entry on every path, so this is a must-underflow.
        let mut mutated = k.program.clone();
        mutated[0] = Instruction::Pop { rd: SReg(9) };
        let diags = verify_program(&mutated, &VerifyConfig::from_layout(&k.layout));
        assert!(
            diags
                .iter()
                .any(|d| d.code == DiagCode::StackUnderflow && d.is_error()),
            "expected STK001, got: {diags:?}"
        );
    }

    #[test]
    fn mutation_breaking_a_branch_target_is_caught() {
        let k = linear::euclidean(16, 4);
        let mut mutated = k.program.clone();
        let len = mutated.len() as u32;
        let pos = mutated
            .iter()
            .position(|i| matches!(i, Instruction::Jump { .. }))
            .expect("kernel has a jump");
        mutated[pos] = Instruction::Jump { target: len + 7 };
        let diags = verify_program(&mutated, &VerifyConfig::from_layout(&k.layout));
        assert!(
            diags
                .iter()
                .any(|d| d.code == DiagCode::BranchTargetOutOfRange && d.is_error()),
            "expected CF001, got: {diags:?}"
        );
    }

    #[test]
    fn the_three_seeded_mutations_have_distinct_codes() {
        // Acceptance criterion: each mutation class maps to its own code.
        assert_ne!(
            DiagCode::InsertWithoutReset.as_str(),
            DiagCode::StackUnderflow.as_str()
        );
        assert_ne!(
            DiagCode::StackUnderflow.as_str(),
            DiagCode::BranchTargetOutOfRange.as_str()
        );
        assert_ne!(
            DiagCode::InsertWithoutReset.as_str(),
            DiagCode::BranchTargetOutOfRange.as_str()
        );
    }

    #[test]
    fn diagnostics_order_errors_first() {
        let program = vec![
            Instruction::Pop { rd: SReg(1) }, // STK001 error
            Instruction::PqueueLoad {
                rd: SReg(2),
                rs_idx: SReg(0),
                field: crate::isa::inst::PqField::Id,
            },
            Instruction::Branch {
                cond: BranchCond::Eq,
                rs1: SReg(0),
                rs2: SReg(0),
                target: 999, // CF001 error
            },
            Instruction::Halt,
        ];
        let diags = verify_program(&program, &VerifyConfig::permissive(4));
        assert!(!diags.is_empty());
        let mut prev = Severity::Error;
        for d in &diags {
            assert!(d.severity <= prev, "errors must sort before warnings");
            prev = d.severity;
        }
    }

    #[test]
    fn diag_codes_are_exhaustively_pinned() {
        // One row per code: (variant, stable string, severity). A new
        // variant must be added here, to ALL_DIAG_CODES, and to the CLI
        // docs in the same change.
        use DiagCode::*;
        let pins: [(DiagCode, &str, Severity); 20] = [
            (BranchTargetOutOfRange, "CF001", Severity::Error),
            (UnreachableCode, "CF002", Severity::Warning),
            (MissingHalt, "CF003", Severity::Error),
            (UninitScalarRead, "REG001", Severity::Error),
            (MaybeUninitScalarRead, "REG002", Severity::Warning),
            (UninitVectorRead, "REG003", Severity::Error),
            (MaybeUninitVectorRead, "REG004", Severity::Warning),
            (StackUnderflow, "STK001", Severity::Error),
            (MaybeStackUnderflow, "STK002", Severity::Warning),
            (StackOverflow, "STK003", Severity::Error),
            (MaybeStackOverflow, "STK004", Severity::Warning),
            (InsertWithoutReset, "PQ001", Severity::Error),
            (MaybeInsertWithoutReset, "PQ002", Severity::Warning),
            (PqueueLoadOutOfRange, "PQ003", Severity::Warning),
            (SpadOutOfBounds, "SP001", Severity::Error),
            (SpadMisaligned, "SP002", Severity::Error),
            (StoreClobbersQuery, "SP003", Severity::Warning),
            (StoreToDram, "SP004", Severity::Error),
            (LaneOutOfRange, "LANE001", Severity::Error),
            (FetchLenNonPositive, "MF001", Severity::Warning),
        ];
        assert_eq!(pins.len(), ALL_DIAG_CODES.len());
        for (i, (code, s, sev)) in pins.iter().enumerate() {
            assert_eq!(ALL_DIAG_CODES[i], *code, "ALL_DIAG_CODES order");
            assert_eq!(code.as_str(), *s);
            assert_eq!(code.severity(), *sev);
        }
        // Codes are unique.
        let mut strs: Vec<&str> = pins.iter().map(|p| p.1).collect();
        strs.sort_unstable();
        strs.dedup();
        assert_eq!(strs.len(), 20);
    }

    #[test]
    fn duplicate_diagnostics_collapse_to_one_per_code_and_pc() {
        // A branch and its fallthrough can reach the same bad access, and
        // multiple passes can flag the same pc; after verify_program there
        // must be at most one finding per (code, pc).
        let program = vec![
            Instruction::Jump { target: 999 }, // CF001 at pc 0
            Instruction::Halt,
        ];
        let diags = verify_program(&program, &VerifyConfig::permissive(4));
        let mut keys: Vec<(DiagCode, Option<u32>)> = diags.iter().map(|d| (d.code, d.pc)).collect();
        let before = keys.len();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(before, keys.len(), "verify_program returned duplicates");
    }

    #[test]
    fn display_includes_code_and_pc() {
        let d = Diagnostic::at(DiagCode::StackUnderflow, 3, "pop on empty stack".into());
        let text = d.to_string();
        assert!(text.contains("STK001"));
        assert!(text.contains("pc 3"));
        assert!(text.contains("error"));
    }
}
