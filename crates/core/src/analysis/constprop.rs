//! Shared constant-propagation lattice over the scalar register file.
//!
//! One abstract domain serves three clients: the memory/lane checker
//! ([`super::memcheck`]) resolving constant scratchpad addresses, the
//! kernel optimizer ([`super::opt`]) folding constant expressions and
//! resolving branches, and the static cost model ([`super::cost`])
//! seeding its symbolic evaluation. Keeping the lattice and transfer
//! function in one module means the three can never disagree about what
//! an instruction does to a constant.
//!
//! The lattice per register is `Const(i32)` ⊑ `Top`; `s0` is pinned to
//! `Const(0)` (hardwired zero). Anything read from memory, the stack,
//! the priority queue, or the vector file is data and maps to `Top`.

use crate::isa::inst::Instruction;
use crate::isa::reg::NUM_SCALAR_REGS;

/// Abstract value of one scalar register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Val {
    /// Known constant on every path.
    Const(i32),
    /// Unknown or path-dependent.
    Top,
}

/// Abstract scalar register file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Consts(pub(crate) [Val; NUM_SCALAR_REGS]);

impl Consts {
    /// The entry state: every register unknown except hardwired `s0`.
    pub(crate) fn entry() -> Self {
        let mut s = Consts([Val::Top; NUM_SCALAR_REGS]);
        s.0[0] = Val::Const(0);
        s
    }

    pub(crate) fn get(&self, r: u8) -> Val {
        self.0[r as usize]
    }

    pub(crate) fn set(&mut self, r: u8, v: Val) {
        if r != 0 {
            self.0[r as usize] = v; // s0 stays hardwired zero
        }
    }
}

/// Pointwise join: registers that disagree become `Top`.
pub(crate) fn join(a: &Consts, b: &Consts) -> Consts {
    let mut out = *a;
    for (o, bv) in out.0.iter_mut().zip(b.0.iter()) {
        if *o != *bv {
            *o = Val::Top;
        }
    }
    out
}

/// Transfer function: evaluates constant scalar arithmetic, kills the
/// destination of anything data-dependent.
pub(crate) fn transfer(inst: &Instruction, s: &Consts) -> Consts {
    use Instruction::*;
    let mut out = *s;
    match *inst {
        SAlu { op, rd, rs1, rs2 } => {
            let v = match (s.get(rs1.0), s.get(rs2.0)) {
                (Val::Const(a), Val::Const(b)) => Val::Const(op.eval(a, b)),
                _ => Val::Top,
            };
            out.set(rd.0, v);
        }
        SAluImm { op, rd, rs1, imm } => {
            let v = match s.get(rs1.0) {
                Val::Const(a) => Val::Const(op.eval(a, imm)),
                Val::Top => Val::Top,
            };
            out.set(rd.0, v);
        }
        SUnary { op, rd, rs1 } => {
            let v = match s.get(rs1.0) {
                Val::Const(a) => Val::Const(op.eval(a)),
                Val::Top => Val::Top,
            };
            out.set(rd.0, v);
        }
        // Anything loaded from memory, the stack, the queue, or the
        // vector file is data: Top.
        Load { rd, .. }
        | Pop { rd }
        | PqueueLoad { rd, .. }
        | VsMove { rd, .. }
        | Sfxp { rd, .. } => out.set(rd.0, Val::Top),
        _ => {}
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    #[test]
    fn entry_pins_s0_only() {
        let e = Consts::entry();
        assert_eq!(e.get(0), Val::Const(0));
        assert_eq!(e.get(1), Val::Top);
    }

    #[test]
    fn transfer_folds_constant_chains() {
        let program = assemble("addi s1, s0, 6\naddi s2, s1, 4\n").expect("assembles");
        let mut s = Consts::entry();
        for inst in &program {
            s = transfer(inst, &s);
        }
        assert_eq!(s.get(2), Val::Const(10));
    }

    #[test]
    fn s0_writes_are_ignored() {
        let program = assemble("addi s0, s0, 99\n").expect("assembles");
        let s = transfer(&program[0], &Consts::entry());
        assert_eq!(s.get(0), Val::Const(0));
    }

    #[test]
    fn data_sources_kill_to_top() {
        let program = assemble("addi s1, s0, 0\nload s1, s0, 0\n").expect("assembles");
        let mut s = Consts::entry();
        for inst in &program {
            s = transfer(inst, &s);
        }
        assert_eq!(s.get(1), Val::Top);
    }

    #[test]
    fn join_keeps_agreement_tops_disagreement() {
        let mut a = Consts::entry();
        a.set(1, Val::Const(5));
        a.set(2, Val::Const(7));
        let mut b = Consts::entry();
        b.set(1, Val::Const(5));
        b.set(2, Val::Const(8));
        let j = join(&a, &b);
        assert_eq!(j.get(1), Val::Const(5));
        assert_eq!(j.get(2), Val::Top);
    }
}
