//! Hardware-stack depth analysis.
//!
//! The stack unit has a fixed capacity ([`crate::sim::stack::STACK_DEPTH`]
//! entries); a `POP` on an empty stack or a `PUSH` on a full one is a
//! hardware fault. A forward interval analysis tracks the possible stack
//! depth `[min, max]` at every program point: a `POP` whose interval is
//! exactly `[0, 0]`-topped (max = 0) underflows on *every* path
//! ([`DiagCode::StackUnderflow`]); one with min = 0 < max underflows on
//! *some* abstract path ([`DiagCode::MaybeStackUnderflow`]). Push-side
//! checks are symmetric against the capacity. To keep the lattice finite
//! the maximum saturates at capacity + 1, so an unbounded push loop (tree
//! traversals push data-dependent numbers of children) reports
//! [`DiagCode::MaybeStackOverflow`] — the honest answer: the bound is a
//! runtime property (the traversal budget), not a static one.

use crate::isa::inst::Instruction;

use super::cfg::{forward_fixpoint, Cfg};
use super::{DiagCode, Diagnostic, VerifyConfig};

/// Possible stack depths at a program point (inclusive interval).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Depth {
    min: u32,
    max: u32,
}

/// Runs the pass, appending diagnostics.
pub fn check(
    program: &[Instruction],
    cfg: &Cfg,
    config: &VerifyConfig,
    diags: &mut Vec<Diagnostic>,
) {
    let cap = config.stack_depth as u32;
    let saturate = cap + 1; // finite lattice: depths beyond capacity are equal
    let states = forward_fixpoint(
        program,
        cfg,
        Depth { min: 0, max: 0 },
        |a, b| Depth {
            min: a.min.min(b.min),
            max: a.max.max(b.max),
        },
        |_, inst, s| match inst {
            Instruction::Push { .. } => Depth {
                min: (s.min + 1).min(saturate),
                max: (s.max + 1).min(saturate),
            },
            Instruction::Pop { .. } => Depth {
                min: s.min.saturating_sub(1),
                max: s.max.saturating_sub(1),
            },
            _ => *s,
        },
    );

    for (pc, inst) in program.iter().enumerate() {
        let Some(depth) = &states[pc] else { continue };
        match inst {
            Instruction::Pop { .. } => {
                if depth.max == 0 {
                    diags.push(Diagnostic::at(
                        DiagCode::StackUnderflow,
                        pc as u32,
                        "POP with a provably empty stack".to_string(),
                    ));
                } else if depth.min == 0 {
                    diags.push(Diagnostic::at(
                        DiagCode::MaybeStackUnderflow,
                        pc as u32,
                        format!(
                            "POP may underflow: stack depth here is {}..={}",
                            depth.min, depth.max
                        ),
                    ));
                }
            }
            Instruction::Push { .. } => {
                if depth.min >= cap {
                    diags.push(Diagnostic::at(
                        DiagCode::StackOverflow,
                        pc as u32,
                        format!("PUSH with a provably full {cap}-entry stack"),
                    ));
                } else if depth.max >= cap {
                    diags.push(Diagnostic::at(
                        DiagCode::MaybeStackOverflow,
                        pc as u32,
                        format!(
                            "stack depth not statically bounded by the {cap}-entry \
                             capacity (data-dependent push loop); bound it at runtime",
                        ),
                    ));
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn diags_for(src: &str) -> Vec<Diagnostic> {
        let program = assemble(src).expect("assembles");
        let mut d = Vec::new();
        let cfg = Cfg::build(&program, &mut d);
        check(&program, &cfg, &VerifyConfig::permissive(4), &mut d);
        d
    }

    #[test]
    fn balanced_push_pop_is_clean() {
        assert!(diags_for("push s1\npush s2\npop s3\npop s4\nhalt\n").is_empty());
    }

    #[test]
    fn pop_on_empty_stack_is_a_must_underflow() {
        let d = diags_for("pop s1\nhalt\n");
        assert!(d
            .iter()
            .any(|x| x.code == DiagCode::StackUnderflow && x.pc == Some(0)));
    }

    #[test]
    fn path_dependent_pop_is_a_warning() {
        let src = "be s1, s0, skip\npush s2\nskip:\npop s3\nhalt\n";
        let d = diags_for(src);
        assert!(
            d.iter().any(|x| x.code == DiagCode::MaybeStackUnderflow),
            "{d:?}"
        );
        assert!(!d.iter().any(|x| x.code == DiagCode::StackUnderflow));
    }

    #[test]
    fn unbounded_push_loop_warns_but_only_in_the_loop() {
        let src = "push s1\nloop:\npush s2\nbne s3, s0, loop\npop s4\npop s5\nhalt\n";
        let d = diags_for(src);
        let warns: Vec<_> = d
            .iter()
            .filter(|x| x.code == DiagCode::MaybeStackOverflow)
            .collect();
        assert_eq!(warns.len(), 1, "{d:?}");
        assert_eq!(warns[0].pc, Some(1)); // the loop push, not the entry push
    }

    #[test]
    fn popping_a_loop_balanced_stack_is_clean() {
        // Classic traversal shape: push sentinel + root, loop pops one and
        // pushes at most two — min depth at the pop stays positive until
        // the sentinel is consumed, but never goes negative.
        let src =
            "push s0\npush s1\nwalk:\npop s2\nbe s2, s0, done\nbne s3, s0, walk\ndone:\nhalt\n";
        let d = diags_for(src);
        assert!(
            !d.iter().any(|x| x.code == DiagCode::StackUnderflow),
            "{d:?}"
        );
    }
}
