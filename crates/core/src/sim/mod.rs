//! Processing-unit microarchitecture simulation (paper Fig. 5d).
//!
//! The simulator executes assembled SSAM programs instruction-by-
//! instruction over real data, producing both the architectural result
//! (what the kernel computed — validated against the `ssam-knn` reference
//! implementations) and a cycle/activity account (what the kernel cost —
//! feeding the throughput and energy models).
//!
//! Timing model: single-issue, in-order. Each instruction has a fixed
//! issue-to-complete latency ([`LatencyModel`]); vector instructions
//! occupy one issue slot regardless of vector length because the PU has
//! one ALU per lane and "forwarding paths between pipeline stages …
//! implement chaining of vector operations" (Section III-C). DRAM loads
//! hit the stream buffer (cheap) when covered by a preceding `MEM_FETCH`,
//! and pay the full DRAM round-trip otherwise — this is what makes the
//! paper's prefetch instruction matter. Sustained memory bandwidth is
//! enforced at the device level as a roofline over the simulated byte
//! traffic (see `crate::device`).

pub mod memif;
pub mod pqueue;
pub mod pu;
pub mod scratchpad;
pub mod stack;
pub mod trace;

pub use pqueue::HardwarePriorityQueue;
pub use pu::{ProcessingUnit, RunStats, SimError};

/// Fixed per-instruction latencies in cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyModel {
    /// Simple scalar/vector ALU, moves, queue and stack operations.
    pub alu: u64,
    /// Scalar Q16.16 multiply (no chaining on the scalar datapath).
    pub mult: u64,
    /// Vector Q16.16 multiply issue cost — 1 under chaining ("forwarding
    /// paths between pipeline stages … implement chaining of vector
    /// operations", Section III-C).
    pub vmult: u64,
    /// Scratchpad load/store.
    pub scratchpad: u64,
    /// DRAM load covered by an outstanding `MEM_FETCH` (stream-buffer hit).
    pub dram_hit: u64,
    /// DRAM load with no prefetch coverage (full round trip).
    pub dram_miss: u64,
    /// Taken branch (one bubble); untaken branches cost [`Self::alu`].
    pub branch_taken: u64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self {
            alu: 1,
            mult: 3,
            vmult: 1,
            scratchpad: 2,
            dram_hit: 2,
            dram_miss: 40,
            branch_taken: 2,
        }
    }
}
