//! The hardware stack unit.
//!
//! Section III-C: "we introduce a small hardware stack unit instantiated
//! on the scalar datapath to aid kNN index traversals. The stack unit is a
//! natural choice to facilitate backtracking when traversing hierarchical
//! index structures."

/// Default stack depth in 32-bit entries ("small hardware stack").
pub const STACK_DEPTH: usize = 64;

/// Error from a stack operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StackError {
    /// Push onto a full stack.
    Overflow,
    /// Pop from an empty stack.
    Underflow,
}

impl std::fmt::Display for StackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StackError::Overflow => write!(f, "hardware stack overflow"),
            StackError::Underflow => write!(f, "hardware stack underflow"),
        }
    }
}

impl std::error::Error for StackError {}

/// Fixed-depth LIFO of 32-bit words.
#[derive(Debug, Clone)]
pub struct HardwareStack {
    depth: usize,
    data: Vec<i32>,
    ops: u64,
}

impl HardwareStack {
    /// A stack of the default depth.
    pub fn new() -> Self {
        Self::with_depth(STACK_DEPTH)
    }

    /// A stack holding up to `depth` entries.
    ///
    /// # Panics
    /// Panics if `depth == 0`.
    pub fn with_depth(depth: usize) -> Self {
        assert!(depth > 0, "stack depth must be positive");
        Self {
            depth,
            data: Vec::with_capacity(depth),
            ops: 0,
        }
    }

    /// Pushes a word.
    pub fn push(&mut self, value: i32) -> Result<(), StackError> {
        self.ops += 1;
        if self.data.len() >= self.depth {
            return Err(StackError::Overflow);
        }
        self.data.push(value);
        Ok(())
    }

    /// Pops the most recent word.
    pub fn pop(&mut self) -> Result<i32, StackError> {
        self.ops += 1;
        self.data.pop().ok_or(StackError::Underflow)
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the stack is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Push+pop operation count (energy-model activity factor).
    pub fn op_count(&self) -> u64 {
        self.ops
    }
}

impl Default for HardwareStack {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut s = HardwareStack::new();
        s.push(1).expect("push");
        s.push(2).expect("push");
        s.push(3).expect("push");
        assert_eq!(s.pop().expect("pop"), 3);
        assert_eq!(s.pop().expect("pop"), 2);
        assert_eq!(s.pop().expect("pop"), 1);
    }

    #[test]
    fn underflow_detected() {
        let mut s = HardwareStack::new();
        assert_eq!(s.pop(), Err(StackError::Underflow));
    }

    #[test]
    fn overflow_detected() {
        let mut s = HardwareStack::with_depth(2);
        s.push(1).expect("push");
        s.push(2).expect("push");
        assert_eq!(s.push(3), Err(StackError::Overflow));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn op_count_tracks_all_attempts() {
        let mut s = HardwareStack::with_depth(1);
        s.push(1).expect("push");
        let _ = s.push(2);
        let _ = s.pop();
        assert_eq!(s.op_count(), 3);
    }

    #[test]
    fn is_empty_transitions() {
        let mut s = HardwareStack::new();
        assert!(s.is_empty());
        s.push(42).expect("push");
        assert!(!s.is_empty());
    }
}
