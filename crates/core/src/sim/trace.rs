//! Execution tracing — the simulator-side analogue of the paper's
//! "generate traces from real datasets to measure realistic activity
//! factors" (Section IV).
//!
//! A [`TraceBuffer`] is a bounded ring of retired-instruction records the
//! PU can be asked to fill; the pretty-printer renders the tail of a run
//! for kernel debugging, and [`TraceSummary`] aggregates per-opcode cycle
//! histograms — the data a power methodology consumes.

use std::collections::BTreeMap;

use crate::isa::inst::Instruction;

/// One retired instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceRecord {
    /// Program counter of the instruction.
    pub pc: u32,
    /// The instruction itself.
    pub inst: Instruction,
    /// Cycles charged to it.
    pub cycles: u64,
    /// Cumulative cycle count after retirement.
    pub total_cycles: u64,
}

/// Bounded ring buffer of [`TraceRecord`]s (keeps the most recent `cap`).
#[derive(Debug, Clone)]
pub struct TraceBuffer {
    cap: usize,
    records: Vec<TraceRecord>,
    /// Index of the logically-oldest record once the ring has wrapped.
    head: usize,
    /// Total records ever pushed (may exceed `cap`).
    pushed: u64,
}

impl TraceBuffer {
    /// A ring holding the most recent `cap` records.
    ///
    /// # Panics
    /// Panics if `cap == 0`.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "trace capacity must be positive");
        Self {
            cap,
            records: Vec::with_capacity(cap),
            head: 0,
            pushed: 0,
        }
    }

    /// Empties the ring (capacity unchanged), e.g. when a PU is recycled
    /// for the next query of a batch.
    pub fn clear(&mut self) {
        self.records.clear();
        self.head = 0;
        self.pushed = 0;
    }

    /// Appends a record, evicting the oldest when full.
    pub fn push(&mut self, record: TraceRecord) {
        if self.records.len() < self.cap {
            self.records.push(record);
        } else {
            self.records[self.head] = record;
            self.head = (self.head + 1) % self.cap;
        }
        self.pushed += 1;
    }

    /// Records in retirement order (oldest retained first).
    pub fn iter(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records[self.head..]
            .iter()
            .chain(self.records[..self.head].iter())
    }

    /// Retained record count.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total records ever pushed (including evicted ones).
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Renders the retained tail as readable text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.pushed > self.len() as u64 {
            out.push_str(&format!(
                "… {} earlier instruction(s) evicted …\n",
                self.pushed - self.len() as u64
            ));
        }
        for r in self.iter() {
            out.push_str(&format!(
                "[cyc {:>8}] pc {:>5}  (+{})  {}\n",
                r.total_cycles, r.pc, r.cycles, r.inst
            ));
        }
        out
    }

    /// Aggregates the retained records.
    pub fn summarize(&self) -> TraceSummary {
        let mut per_mnemonic: BTreeMap<String, (u64, u64)> = BTreeMap::new();
        for r in self.iter() {
            let mnemonic = r
                .inst
                .to_string()
                .split_whitespace()
                .next()
                .unwrap_or("?")
                .to_string();
            let e = per_mnemonic.entry(mnemonic).or_insert((0, 0));
            e.0 += 1;
            e.1 += r.cycles;
        }
        TraceSummary { per_mnemonic }
    }
}

/// Per-mnemonic `(count, cycles)` aggregation over a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSummary {
    /// Mnemonic → (instructions retired, cycles charged).
    pub per_mnemonic: BTreeMap<String, (u64, u64)>,
}

impl TraceSummary {
    /// Total cycles across mnemonics.
    pub fn total_cycles(&self) -> u64 {
        self.per_mnemonic.values().map(|&(_, c)| c).sum()
    }

    /// The mnemonic burning the most cycles, if any.
    pub fn hottest(&self) -> Option<(&str, u64)> {
        self.per_mnemonic
            .iter()
            .max_by_key(|(_, &(_, c))| c)
            .map(|(m, &(_, c))| (m.as_str(), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::inst::{AluOp, Instruction};
    use crate::isa::reg::SReg;

    fn rec(pc: u32, cycles: u64) -> TraceRecord {
        TraceRecord {
            pc,
            inst: Instruction::SAluImm {
                op: AluOp::Add,
                rd: SReg(1),
                rs1: SReg(1),
                imm: 1,
            },
            cycles,
            total_cycles: cycles,
        }
    }

    #[test]
    fn ring_keeps_most_recent() {
        let mut t = TraceBuffer::new(3);
        for pc in 0..5 {
            t.push(rec(pc, 1));
        }
        let pcs: Vec<u32> = t.iter().map(|r| r.pc).collect();
        assert_eq!(pcs, vec![2, 3, 4]);
        assert_eq!(t.total_pushed(), 5);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn render_notes_evictions() {
        let mut t = TraceBuffer::new(2);
        for pc in 0..4 {
            t.push(rec(pc, 2));
        }
        let text = t.render();
        assert!(text.contains("2 earlier instruction(s) evicted"));
        assert!(text.contains("addi s1, s1, 1"));
    }

    #[test]
    fn summary_aggregates_by_mnemonic() {
        let mut t = TraceBuffer::new(16);
        t.push(rec(0, 1));
        t.push(rec(1, 1));
        t.push(TraceRecord {
            pc: 2,
            inst: Instruction::Halt,
            cycles: 1,
            total_cycles: 3,
        });
        let s = t.summarize();
        assert_eq!(s.per_mnemonic["addi"], (2, 2));
        assert_eq!(s.per_mnemonic["halt"], (1, 1));
        assert_eq!(s.total_cycles(), 3);
        assert_eq!(s.hottest().expect("non-empty").0, "addi");
    }

    #[test]
    fn empty_buffer_behaves() {
        let t = TraceBuffer::new(4);
        assert!(t.is_empty());
        assert_eq!(t.render(), "");
        assert!(t.summarize().hottest().is_none());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = TraceBuffer::new(0);
    }
}
