//! The processing-unit core: architectural state + timing.
//!
//! Implements the microarchitecture of Fig. 5d: one instruction stream
//! feeding a scalar datapath (scalar ALU + registers, stack unit) and a
//! vector datapath (per-lane ALUs + vector registers), with the priority
//! queue, scratchpad, and DRAM stream interface attached. Execution is
//! functional *and* timed: `run()` produces the architectural result (the
//! priority-queue contents, scratchpad state) and a [`RunStats`] cycle and
//! activity account.

use std::sync::Arc;

use crate::isa::inst::{Instruction, PqField};
use crate::isa::reg::{NUM_SCALAR_REGS, NUM_VECTOR_REGS};
use crate::isa::{DRAM_BASE, PQUEUE_DEPTH, VECTOR_LENGTHS};
use crate::sim::memif::{DramError, DramInterface, DramStats};
use crate::sim::pqueue::HardwarePriorityQueue;
use crate::sim::scratchpad::{Scratchpad, SpadError};
use crate::sim::stack::{HardwareStack, StackError};
use crate::sim::trace::{TraceBuffer, TraceRecord};
use crate::sim::LatencyModel;

/// A simulation fault (kernels are trusted code, so faults are bugs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// PC ran past the end of the program without `HALT`.
    PcOutOfRange {
        /// Offending program counter.
        pc: u32,
    },
    /// Instruction budget exhausted (guards against runaway kernels).
    InstructionLimit {
        /// The limit that was hit.
        limit: u64,
    },
    /// Scratchpad fault.
    Scratchpad(SpadError),
    /// DRAM fault.
    Dram(DramError),
    /// Stack fault.
    Stack(StackError),
    /// Vector lane index out of range for the configured vector length.
    BadLane {
        /// Requested lane.
        lane: i32,
        /// Configured vector length.
        vl: usize,
    },
    /// Read of a scalar register never written (trap mode only — see
    /// [`ProcessingUnit::enable_uninit_trap`]).
    UninitSreg {
        /// The offending register.
        reg: u8,
    },
    /// Read of a vector register never written (trap mode only).
    UninitVreg {
        /// The offending register.
        reg: u8,
    },
    /// A device batch entry point was handed an empty query slice.
    ///
    /// Raised by the host-side batch APIs
    /// ([`crate::device::SsamDevice::query_batch`],
    /// [`crate::device::cluster::SsamCluster::query_batch`]), never by the
    /// PU core itself: an empty batch is a degenerate *request*, not a
    /// kernel fault, and callers (the serving runtime in particular) need
    /// a typed rejection rather than a panic.
    EmptyBatch,
    /// A device batch entry point was handed `k == 0`.
    ///
    /// Raised by the host-side batch APIs, never by the PU core (see
    /// [`SimError::EmptyBatch`]).
    ZeroK,
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::PcOutOfRange { pc } => write!(f, "pc {pc} out of range (missing halt?)"),
            SimError::InstructionLimit { limit } => write!(f, "instruction limit {limit} exceeded"),
            SimError::Scratchpad(e) => write!(f, "{e}"),
            SimError::Dram(e) => write!(f, "{e}"),
            SimError::Stack(e) => write!(f, "{e}"),
            SimError::BadLane { lane, vl } => write!(f, "lane {lane} out of range for VL={vl}"),
            SimError::UninitSreg { reg } => write!(f, "read of uninitialized register s{reg}"),
            SimError::UninitVreg { reg } => write!(f, "read of uninitialized register v{reg}"),
            SimError::EmptyBatch => write!(f, "batch must contain at least one query"),
            SimError::ZeroK => write!(f, "k must be positive"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<SpadError> for SimError {
    fn from(e: SpadError) -> Self {
        SimError::Scratchpad(e)
    }
}
impl From<DramError> for SimError {
    fn from(e: DramError) -> Self {
        SimError::Dram(e)
    }
}
impl From<StackError> for SimError {
    fn from(e: StackError) -> Self {
        SimError::Stack(e)
    }
}

/// Cycle and activity account for one kernel run. Activity factors drive
/// the Table III energy model; the class mix is also what the Table I
/// profiling methodology reports for the accelerator.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunStats {
    /// Simulated cycles.
    pub cycles: u64,
    /// Instructions retired.
    pub instructions: u64,
    /// Scalar ALU operations.
    pub scalar_alu_ops: u64,
    /// Vector instructions issued.
    pub vector_ops: u64,
    /// Vector lane-operations (vector instructions × lanes).
    pub vector_lane_ops: u64,
    /// Priority-queue operations (insert/load/reset).
    pub pqueue_ops: u64,
    /// Stack operations.
    pub stack_ops: u64,
    /// Scratchpad accesses.
    pub scratchpad_accesses: u64,
    /// Register-file accesses (reads + writes, both files).
    pub regfile_accesses: u64,
    /// Branches retired.
    pub branches: u64,
    /// Taken branches.
    pub branches_taken: u64,
    /// DRAM traffic/locality.
    pub dram: DramStats,
}

impl RunStats {
    /// Fraction of retired instructions that were vector instructions —
    /// the accelerator-side analogue of Table I's AVX/SSE column.
    pub fn vector_fraction(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.vector_ops as f64 / self.instructions as f64
        }
    }

    /// Adds another run's counters into this one — the aggregation the
    /// batched engine and the telemetry layer both use, kept in one place
    /// so a new counter cannot be summed in one account and dropped in
    /// the other.
    pub fn accumulate(&mut self, other: &RunStats) {
        self.cycles += other.cycles;
        self.instructions += other.instructions;
        self.scalar_alu_ops += other.scalar_alu_ops;
        self.vector_ops += other.vector_ops;
        self.vector_lane_ops += other.vector_lane_ops;
        self.pqueue_ops += other.pqueue_ops;
        self.stack_ops += other.stack_ops;
        self.scratchpad_accesses += other.scratchpad_accesses;
        self.regfile_accesses += other.regfile_accesses;
        self.branches += other.branches;
        self.branches_taken += other.branches_taken;
        self.dram.bytes_read += other.dram.bytes_read;
        self.dram.hits += other.dram.hits;
        self.dram.misses += other.dram.misses;
        self.dram.prefetches += other.dram.prefetches;
    }
}

/// One SSAM processing unit.
#[derive(Debug, Clone)]
pub struct ProcessingUnit {
    vl: usize,
    /// Instruction memory. Shared (`Arc`) so a batch engine can point many
    /// vault workers at one kernel image without cloning it per query.
    program: Arc<Vec<Instruction>>,
    pc: u32,
    halted: bool,
    sregs: [i32; NUM_SCALAR_REGS],
    vregs: Vec<Vec<i32>>,
    /// Hardware priority queue (None models the software-queue ablation
    /// where the unit is disabled/absent).
    pqueue: HardwarePriorityQueue,
    stack: HardwareStack,
    spad: Scratchpad,
    dram: DramInterface,
    latency: LatencyModel,
    stats: RunStats,
    trace: Option<TraceBuffer>,
    /// When set, reads of never-written registers fault (the dynamic
    /// counterpart of the static `analysis::regflow` pass).
    uninit_trap: bool,
    /// Scalar registers written so far (bit 0 / `s0` is always set).
    sreg_written: u32,
    /// Vector registers written so far.
    vreg_written: u8,
}

impl ProcessingUnit {
    /// Builds a PU with vector length `vl` over a DRAM shard.
    ///
    /// # Panics
    /// Panics if `vl` is not one of the paper's design points (2/4/8/16).
    pub fn new(vl: usize, dram_words: Arc<Vec<i32>>) -> Self {
        assert!(
            VECTOR_LENGTHS.contains(&vl),
            "vector length {vl} not in the design sweep {VECTOR_LENGTHS:?}"
        );
        Self {
            vl,
            program: Arc::new(Vec::new()),
            pc: 0,
            halted: false,
            sregs: [0; NUM_SCALAR_REGS],
            vregs: vec![vec![0; vl]; NUM_VECTOR_REGS],
            pqueue: HardwarePriorityQueue::new(),
            stack: HardwareStack::new(),
            spad: Scratchpad::new(),
            dram: DramInterface::new(dram_words),
            latency: LatencyModel::default(),
            stats: RunStats::default(),
            trace: None,
            uninit_trap: false,
            sreg_written: 1,
            vreg_written: 0,
        }
    }

    /// Enables the uninitialized-register-read trap: any read of a
    /// register that neither the driver ([`Self::set_sreg`]) nor the
    /// kernel has written raises [`SimError::UninitSreg`] /
    /// [`SimError::UninitVreg`] instead of silently returning zero.
    ///
    /// Off by default — real hardware has no such check; harnesses use it
    /// to validate the static verifier's def-use analysis.
    pub fn enable_uninit_trap(&mut self) {
        self.uninit_trap = true;
    }

    /// Configured vector length.
    pub fn vector_length(&self) -> usize {
        self.vl
    }

    /// Replaces the hardware priority queue with a chained (deeper) one to
    /// support larger `k` (Section III-C).
    pub fn chain_pqueue(&mut self, chain: usize) {
        self.pqueue = HardwarePriorityQueue::chained(chain);
    }

    /// Overrides the latency model.
    pub fn set_latency_model(&mut self, latency: LatencyModel) {
        self.latency = latency;
    }

    /// Enables execution tracing, retaining the most recent `cap`
    /// retired instructions (Section IV's activity-trace methodology).
    pub fn enable_trace(&mut self, cap: usize) {
        self.trace = Some(TraceBuffer::new(cap));
    }

    /// The trace buffer, if tracing is enabled.
    pub fn trace(&self) -> Option<&TraceBuffer> {
        self.trace.as_ref()
    }

    /// Loads a program into instruction memory and resets the PC.
    ///
    /// Accepts either an owned `Vec<Instruction>` or a shared
    /// `Arc<Vec<Instruction>>`; the batched device engine passes the same
    /// `Arc` to every vault worker so no per-query program copy is made.
    pub fn load_program(&mut self, program: impl Into<Arc<Vec<Instruction>>>) {
        self.program = program.into();
        self.pc = 0;
        self.halted = false;
    }

    /// Resets all architectural and accounting state for a fresh kernel
    /// run while keeping the expensive long-lived structures: the loaded
    /// program (`Arc`), the DRAM shard mapping, the scratchpad *contents*
    /// (the driver rewrites the regions the next kernel reads), the
    /// priority-queue chain depth, and the latency/trap/trace
    /// configuration.
    ///
    /// After `reset_state()` the PU is architecturally indistinguishable
    /// from a freshly constructed one with the same program loaded: the
    /// registers are zeroed, the queue and stack are empty, the stream
    /// buffer holds no prefetch windows, and every statistic starts from
    /// zero — which is what makes batched execution bit-identical to a
    /// serial loop of one-shot PUs.
    pub fn reset_state(&mut self) {
        self.pc = 0;
        self.halted = false;
        self.sregs = [0; NUM_SCALAR_REGS];
        for v in &mut self.vregs {
            v.fill(0);
        }
        let chain = self.pqueue.capacity() / PQUEUE_DEPTH;
        self.pqueue = HardwarePriorityQueue::chained(chain.max(1));
        self.stack = HardwareStack::new();
        self.spad.reset_activity();
        self.dram.reset();
        self.stats = RunStats::default();
        if let Some(trace) = &mut self.trace {
            trace.clear();
        }
        self.sreg_written = 1;
        self.vreg_written = 0;
    }

    /// Writes a scalar register (driver-side initialization).
    pub fn set_sreg(&mut self, r: usize, value: i32) {
        if r != 0 {
            self.sregs[r] = value;
        }
        self.sreg_written |= 1 << r;
    }

    /// Reads a scalar register.
    pub fn sreg(&self, r: usize) -> i32 {
        self.sregs[r]
    }

    /// Host access to the scratchpad (the driver writing the query vector
    /// and index structures, Section III-D).
    pub fn scratchpad_mut(&mut self) -> &mut Scratchpad {
        &mut self.spad
    }

    /// Read-side host access to the scratchpad.
    pub fn scratchpad(&self) -> &Scratchpad {
        &self.spad
    }

    /// The priority queue (read back after a kernel completes).
    pub fn pqueue(&self) -> &HardwarePriorityQueue {
        &self.pqueue
    }

    /// Run statistics so far.
    pub fn stats(&self) -> RunStats {
        let mut s = self.stats;
        s.dram = self.dram.stats();
        s
    }

    /// Whether the PU has executed `HALT`.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Runs until `HALT` or `max_instructions`, whichever first.
    pub fn run(&mut self, max_instructions: u64) -> Result<RunStats, SimError> {
        let mut executed = 0u64;
        while !self.halted {
            if executed >= max_instructions {
                return Err(SimError::InstructionLimit {
                    limit: max_instructions,
                });
            }
            self.step()?;
            executed += 1;
        }
        Ok(self.stats())
    }

    /// Executes one instruction.
    pub fn step(&mut self) -> Result<(), SimError> {
        let Some(&inst) = self.program.get(self.pc as usize) else {
            return Err(SimError::PcOutOfRange { pc: self.pc });
        };
        if self.uninit_trap {
            self.check_uninit(&inst)?;
        }
        self.note_writes(&inst);
        self.stats.instructions += 1;
        let mut next_pc = self.pc + 1;
        let lat = self.latency;
        let mut cycles = lat.alu;

        use Instruction::*;
        match inst {
            SAlu { op, rd, rs1, rs2 } => {
                let v = op.eval(self.sregs[rs1.index()], self.sregs[rs2.index()]);
                self.write_sreg(rd.index(), v);
                self.stats.scalar_alu_ops += 1;
                self.stats.regfile_accesses += 3;
                if matches!(op, crate::isa::inst::AluOp::Mult) {
                    cycles = lat.mult;
                }
            }
            SAluImm { op, rd, rs1, imm } => {
                let v = op.eval(self.sregs[rs1.index()], imm);
                self.write_sreg(rd.index(), v);
                self.stats.scalar_alu_ops += 1;
                self.stats.regfile_accesses += 2;
                if matches!(op, crate::isa::inst::AluOp::Mult) {
                    cycles = lat.mult;
                }
            }
            SUnary { op, rd, rs1 } => {
                let v = op.eval(self.sregs[rs1.index()]);
                self.write_sreg(rd.index(), v);
                self.stats.scalar_alu_ops += 1;
                self.stats.regfile_accesses += 2;
            }
            Branch {
                cond,
                rs1,
                rs2,
                target,
            } => {
                self.stats.branches += 1;
                self.stats.regfile_accesses += 2;
                if cond.eval(self.sregs[rs1.index()], self.sregs[rs2.index()]) {
                    next_pc = target;
                    self.stats.branches_taken += 1;
                    cycles = lat.branch_taken;
                }
            }
            Jump { target } => {
                next_pc = target;
                self.stats.branches += 1;
                self.stats.branches_taken += 1;
                cycles = lat.branch_taken;
            }
            Push { rs1 } => {
                self.stack.push(self.sregs[rs1.index()])?;
                self.stats.stack_ops += 1;
                self.stats.regfile_accesses += 1;
            }
            Pop { rd } => {
                let v = self.stack.pop()?;
                self.write_sreg(rd.index(), v);
                self.stats.stack_ops += 1;
                self.stats.regfile_accesses += 1;
            }
            PqueueInsert { rs_id, rs_val } => {
                self.pqueue
                    .insert(self.sregs[rs_id.index()], self.sregs[rs_val.index()]);
                self.stats.pqueue_ops += 1;
                self.stats.regfile_accesses += 2;
            }
            PqueueLoad { rd, rs_idx, field } => {
                let idx = self.sregs[rs_idx.index()].max(0) as usize;
                let v = match field {
                    PqField::Id => self.pqueue.load(idx).map_or(-1, |e| e.id),
                    PqField::Value => self.pqueue.load(idx).map_or(i32::MAX, |e| e.value),
                    PqField::Size => self.pqueue.len() as i32,
                };
                self.write_sreg(rd.index(), v);
                self.stats.pqueue_ops += 1;
                self.stats.regfile_accesses += 2;
            }
            PqueueReset => {
                self.pqueue.reset();
                self.stats.pqueue_ops += 1;
            }
            Sfxp { rd, rs1, rs2 } => {
                let x = self.sregs[rs1.index()] ^ self.sregs[rs2.index()];
                let v = self.sregs[rd.index()].wrapping_add(x.count_ones() as i32);
                self.write_sreg(rd.index(), v);
                self.stats.scalar_alu_ops += 1;
                self.stats.regfile_accesses += 4;
            }
            Load {
                rd,
                rs_base,
                offset,
            } => {
                let addr = (self.sregs[rs_base.index()].wrapping_add(offset)) as u32;
                let (v, c) = self.mem_load(addr)?;
                self.write_sreg(rd.index(), v);
                self.stats.regfile_accesses += 2;
                cycles = c;
            }
            Store {
                rs_val,
                rs_base,
                offset,
            } => {
                let addr = (self.sregs[rs_base.index()].wrapping_add(offset)) as u32;
                // Stores target the scratchpad only; the dataset is
                // read-only from the PU's perspective.
                self.spad.store(addr, self.sregs[rs_val.index()])?;
                self.stats.scratchpad_accesses += 1;
                self.stats.regfile_accesses += 2;
                cycles = lat.scratchpad;
            }
            MemFetch { rs_base, len } => {
                let addr = self.sregs[rs_base.index()] as u32;
                self.dram.prefetch(addr, len.max(0) as u32);
                self.stats.regfile_accesses += 1;
            }
            SvMove { vd, rs1, lane } => {
                let v = self.sregs[rs1.index()];
                if lane < 0 {
                    self.vregs[vd.index()].fill(v);
                } else {
                    let l = lane as usize;
                    if l >= self.vl {
                        return Err(SimError::BadLane {
                            lane: lane as i32,
                            vl: self.vl,
                        });
                    }
                    self.vregs[vd.index()][l] = v;
                }
                self.stats.vector_ops += 1;
                self.stats.vector_lane_ops += self.vl as u64;
                self.stats.regfile_accesses += 2;
            }
            VsMove { rd, vs1, lane } => {
                let l = lane as usize;
                if l >= self.vl {
                    return Err(SimError::BadLane {
                        lane: lane as i32,
                        vl: self.vl,
                    });
                }
                let v = self.vregs[vs1.index()][l];
                self.write_sreg(rd.index(), v);
                self.stats.vector_ops += 1;
                self.stats.regfile_accesses += 2;
            }
            Halt => {
                self.halted = true;
            }
            VAlu { op, vd, vs1, vs2 } => {
                for l in 0..self.vl {
                    let v = op.eval(self.vregs[vs1.index()][l], self.vregs[vs2.index()][l]);
                    self.vregs[vd.index()][l] = v;
                }
                self.stats.vector_ops += 1;
                self.stats.vector_lane_ops += self.vl as u64;
                self.stats.regfile_accesses += 3;
                if matches!(op, crate::isa::inst::AluOp::Mult) {
                    cycles = lat.vmult;
                }
            }
            VAluImm { op, vd, vs1, imm } => {
                for l in 0..self.vl {
                    let v = op.eval(self.vregs[vs1.index()][l], imm);
                    self.vregs[vd.index()][l] = v;
                }
                self.stats.vector_ops += 1;
                self.stats.vector_lane_ops += self.vl as u64;
                self.stats.regfile_accesses += 2;
                if matches!(op, crate::isa::inst::AluOp::Mult) {
                    cycles = lat.vmult;
                }
            }
            VUnary { op, vd, vs1 } => {
                for l in 0..self.vl {
                    self.vregs[vd.index()][l] = op.eval(self.vregs[vs1.index()][l]);
                }
                self.stats.vector_ops += 1;
                self.stats.vector_lane_ops += self.vl as u64;
                self.stats.regfile_accesses += 2;
            }
            Vfxp { vd, vs1, vs2 } => {
                for l in 0..self.vl {
                    let x = self.vregs[vs1.index()][l] ^ self.vregs[vs2.index()][l];
                    self.vregs[vd.index()][l] =
                        self.vregs[vd.index()][l].wrapping_add(x.count_ones() as i32);
                }
                self.stats.vector_ops += 1;
                self.stats.vector_lane_ops += self.vl as u64;
                self.stats.regfile_accesses += 4;
            }
            VLoad {
                vd,
                rs_base,
                offset,
            } => {
                let addr = (self.sregs[rs_base.index()].wrapping_add(offset)) as u32;
                cycles = self.vec_load(vd.index(), addr)?;
                self.stats.vector_ops += 1;
                self.stats.vector_lane_ops += self.vl as u64;
                self.stats.regfile_accesses += 2;
            }
            VStore {
                vs,
                rs_base,
                offset,
            } => {
                let addr = (self.sregs[rs_base.index()].wrapping_add(offset)) as u32;
                for l in 0..self.vl {
                    let v = self.vregs[vs.index()][l];
                    self.spad.store(addr + 4 * l as u32, v)?;
                }
                self.stats.scratchpad_accesses += self.vl as u64;
                self.stats.vector_ops += 1;
                self.stats.vector_lane_ops += self.vl as u64;
                self.stats.regfile_accesses += 2;
                cycles = lat.scratchpad;
            }
        }

        self.stats.cycles += cycles;
        if let Some(trace) = &mut self.trace {
            trace.push(TraceRecord {
                pc: self.pc,
                inst,
                cycles,
                total_cycles: self.stats.cycles,
            });
        }
        self.pc = next_pc;
        Ok(())
    }

    #[inline]
    fn write_sreg(&mut self, r: usize, v: i32) {
        if r != 0 {
            self.sregs[r] = v;
        }
    }

    /// Trap-mode check: every register the instruction reads must have
    /// been written (by the driver or by the kernel). Shares its operand
    /// model with the static verifier via [`crate::analysis::uses`].
    fn check_uninit(&self, inst: &Instruction) -> Result<(), SimError> {
        let mut fault = None;
        crate::analysis::uses::for_each_sreg_read(inst, |r| {
            if self.sreg_written & (1 << r.0) == 0 && fault.is_none() {
                fault = Some(SimError::UninitSreg { reg: r.0 });
            }
        });
        crate::analysis::uses::for_each_vreg_read(inst, |r| {
            if self.vreg_written & (1 << r.0) == 0 && fault.is_none() {
                fault = Some(SimError::UninitVreg { reg: r.0 });
            }
        });
        match fault {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Records the registers the instruction writes, for trap mode.
    fn note_writes(&mut self, inst: &Instruction) {
        if let Some(rd) = crate::analysis::uses::sreg_write(inst) {
            self.sreg_written |= 1 << rd.0;
        }
        if let Some(vd) = crate::analysis::uses::vreg_write(inst) {
            self.vreg_written |= 1 << vd.0;
        }
    }

    /// Scalar load dispatch by address space; returns (value, cycles).
    fn mem_load(&mut self, addr: u32) -> Result<(i32, u64), SimError> {
        if addr < DRAM_BASE {
            let v = self.spad.load(addr)?;
            self.stats.scratchpad_accesses += 1;
            Ok((v, self.latency.scratchpad))
        } else {
            let (v, hit) = self.dram.load(addr)?;
            let c = if hit {
                self.latency.dram_hit
            } else {
                self.latency.dram_miss
            };
            Ok((v, c))
        }
    }

    /// Vector load dispatch; returns cycles.
    fn vec_load(&mut self, vd: usize, addr: u32) -> Result<u64, SimError> {
        if addr < DRAM_BASE {
            for l in 0..self.vl {
                let v = self.spad.load(addr + 4 * l as u32)?;
                self.vregs[vd][l] = v;
            }
            self.stats.scratchpad_accesses += self.vl as u64;
            Ok(self.latency.scratchpad)
        } else {
            let vl = self.vl;
            let mut buf = vec![0i32; vl];
            let hit = self.dram.load_block(addr, vl, &mut buf)?;
            self.vregs[vd].copy_from_slice(&buf);
            Ok(if hit {
                self.latency.dram_hit
            } else {
                self.latency.dram_miss
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn pu_with(vl: usize, dram: Vec<i32>, src: &str) -> ProcessingUnit {
        let mut pu = ProcessingUnit::new(vl, Arc::new(dram));
        pu.load_program(assemble(src).expect("assembles"));
        pu
    }

    #[test]
    fn counting_loop_terminates_with_expected_register() {
        let mut pu = pu_with(
            4,
            vec![],
            "
            addi s1, s0, 0
            addi s2, s0, 10
        loop:
            addi s1, s1, 1
            bne  s1, s2, loop
            halt
        ",
        );
        pu.run(1000).expect("runs");
        assert_eq!(pu.sreg(1), 10);
        assert!(pu.halted());
    }

    #[test]
    fn s0_is_hardwired_zero() {
        let mut pu = pu_with(4, vec![], "addi s0, s0, 99\nhalt");
        pu.run(10).expect("runs");
        assert_eq!(pu.sreg(0), 0);
    }

    #[test]
    fn uninit_trap_catches_unwritten_scalar_read() {
        let mut pu = pu_with(4, vec![], "add s1, s2, s0\nhalt");
        pu.enable_uninit_trap();
        assert_eq!(pu.run(10), Err(SimError::UninitSreg { reg: 2 }));
    }

    #[test]
    fn uninit_trap_respects_driver_initialization() {
        let mut pu = pu_with(4, vec![], "add s1, s2, s0\nhalt");
        pu.enable_uninit_trap();
        pu.set_sreg(2, 7);
        pu.run(10).expect("driver-initialized register is readable");
        assert_eq!(pu.sreg(1), 7);
    }

    #[test]
    fn uninit_trap_catches_unwritten_vector_read() {
        let mut pu = pu_with(4, vec![], "svmove v1, s0, -1\nvadd v0, v1, v2\nhalt");
        pu.enable_uninit_trap();
        assert_eq!(pu.run(10), Err(SimError::UninitVreg { reg: 2 }));
    }

    #[test]
    fn trap_is_off_by_default_reads_return_zero() {
        let mut pu = pu_with(4, vec![], "add s1, s2, s0\nhalt");
        pu.run(10)
            .expect("untrapped uninitialized read is architecturally zero");
        assert_eq!(pu.sreg(1), 0);
    }

    #[test]
    fn vector_pipeline_computes_squared_difference() {
        // DRAM holds a candidate vector; scratchpad holds the query.
        // Compute sum((a-b)^2) in Q16.16 over 4 dims.
        let one = 1 << 16;
        let dram = vec![3 * one, one, 0, 2 * one]; // candidate
        let mut pu = pu_with(
            4,
            dram,
            &format!(
                "
            addi s1, s0, {DRAM_BASE}   ; candidate base
            vload v0, s1, 0
            vload v1, s2, 0            ; query at spad[0] (s2 = 0)
            vsub  v0, v0, v1
            vmult v0, v0, v0
            vsmove s3, v0, 0
            vsmove s4, v0, 1
            add   s3, s3, s4
            vsmove s4, v0, 2
            add   s3, s3, s4
            vsmove s4, v0, 3
            add   s3, s3, s4
            halt
        "
            ),
        );
        // query = [1, 1, 1, 1] in Q16.16
        pu.scratchpad_mut()
            .write_block(0, &[one, one, one, one])
            .expect("init");
        pu.run(100).expect("runs");
        // (3-1)^2 + (1-1)^2 + (0-1)^2 + (2-1)^2 = 4+0+1+1 = 6.0
        assert_eq!(pu.sreg(3), 6 * one);
    }

    #[test]
    fn pqueue_program_keeps_best() {
        let mut pu = pu_with(
            2,
            vec![],
            "
            addi s1, s0, 5    ; id 5, val 30
            addi s2, s0, 30
            pqueue_insert s1, s2
            addi s1, s0, 9    ; id 9, val 10
            addi s2, s0, 10
            pqueue_insert s1, s2
            addi s3, s0, 0
            pqueue_load s4, s3, id
            pqueue_load s5, s3, value
            halt
        ",
        );
        pu.run(100).expect("runs");
        assert_eq!(pu.sreg(4), 9);
        assert_eq!(pu.sreg(5), 10);
    }

    #[test]
    fn stack_round_trips_through_push_pop() {
        let mut pu = pu_with(
            2,
            vec![],
            "
            addi s1, s0, 42
            push s1
            addi s1, s0, 7
            push s1
            pop  s2
            pop  s3
            halt
        ",
        );
        pu.run(100).expect("runs");
        assert_eq!(pu.sreg(2), 7);
        assert_eq!(pu.sreg(3), 42);
    }

    #[test]
    fn sfxp_accumulates_hamming() {
        let mut pu = pu_with(
            2,
            vec![],
            "
            addi s1, s0, 0x0F
            addi s2, s0, 0x05
            addi s3, s0, 0
            sfxp s3, s1, s2
            sfxp s3, s1, s2
            halt
        ",
        );
        pu.run(100).expect("runs");
        // popcount(0x0F ^ 0x05) = popcount(0x0A) = 2; accumulated twice.
        assert_eq!(pu.sreg(3), 4);
    }

    #[test]
    fn prefetched_dram_loads_are_cheaper() {
        let dram: Vec<i32> = (0..64).collect();
        let with_fetch = "
            addi s1, s0, 0x10000000
            mem_fetch s1, 256
            vload v0, s1, 0
            vload v0, s1, 16
            halt";
        let without_fetch = "
            addi s1, s0, 0x10000000
            vload v0, s1, 0
            vload v0, s1, 16
            halt";
        let mut a = pu_with(4, dram.clone(), with_fetch);
        let mut b = pu_with(4, dram, without_fetch);
        let sa = a.run(100).expect("runs");
        let sb = b.run(100).expect("runs");
        assert!(sa.cycles < sb.cycles, "prefetch should reduce cycles");
        assert_eq!(sa.dram.hits, 2);
        assert_eq!(sb.dram.misses, 2);
    }

    #[test]
    fn missing_halt_is_detected() {
        let mut pu = pu_with(2, vec![], "addi s1, s0, 1");
        assert!(matches!(pu.run(10), Err(SimError::PcOutOfRange { .. })));
    }

    #[test]
    fn infinite_loop_hits_instruction_limit() {
        let mut pu = pu_with(2, vec![], "loop: j loop");
        assert!(matches!(
            pu.run(100),
            Err(SimError::InstructionLimit { limit: 100 })
        ));
    }

    #[test]
    fn bad_lane_faults() {
        let mut pu = pu_with(2, vec![], "vsmove s1, v0, 5\nhalt");
        assert!(matches!(
            pu.run(10),
            Err(SimError::BadLane { lane: 5, vl: 2 })
        ));
    }

    #[test]
    fn broadcast_svmove_fills_all_lanes() {
        let mut pu = pu_with(
            4,
            vec![],
            "
            addi s1, s0, 7
            svmove v0, s1, -1
            vsmove s2, v0, 0
            vsmove s3, v0, 3
            halt
        ",
        );
        pu.run(100).expect("runs");
        assert_eq!(pu.sreg(2), 7);
        assert_eq!(pu.sreg(3), 7);
    }

    #[test]
    fn stats_classify_instruction_mix() {
        let mut pu = pu_with(
            4,
            (0..16).collect(),
            "
            addi s1, s0, 0x10000000
            vload v0, s1, 0
            vadd v1, v1, v0
            addi s2, s0, 1
            halt
        ",
        );
        let stats = pu.run(100).expect("runs");
        assert_eq!(stats.instructions, 5);
        assert_eq!(stats.vector_ops, 2);
        assert_eq!(stats.vector_lane_ops, 8);
        assert_eq!(stats.scalar_alu_ops, 2);
        assert!(stats.vector_fraction() > 0.0);
        assert_eq!(stats.dram.bytes_read, 16);
    }

    #[test]
    fn trace_records_retired_instructions() {
        let mut pu = pu_with(2, vec![], "addi s1, s0, 1\naddi s1, s1, 2\nhalt");
        pu.enable_trace(8);
        pu.run(10).expect("runs");
        let trace = pu.trace().expect("enabled");
        assert_eq!(trace.len(), 3);
        let text = trace.render();
        assert!(text.contains("addi s1, s0, 1"));
        assert!(text.contains("halt"));
        let summary = trace.summarize();
        assert_eq!(summary.per_mnemonic["addi"].0, 2);
    }

    #[test]
    fn mult_costs_more_cycles_than_add() {
        let mut a = pu_with(2, vec![], "mult s1, s2, s3\nhalt");
        let mut b = pu_with(2, vec![], "add s1, s2, s3\nhalt");
        let sa = a.run(10).expect("runs");
        let sb = b.run(10).expect("runs");
        assert!(sa.cycles > sb.cycles);
    }
}
