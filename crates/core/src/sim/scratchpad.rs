//! The 32 KB scratchpad memory.
//!
//! Section III-C: "we integrate a 32 KB scratchpad to hold frequently
//! accessed data structures, such as the query vector and indexing
//! structures. … the only heavily reused data are the query vectors and
//! indices (data vectors are scanned and immediately discarded)."
//!
//! Word-addressed (4-byte aligned) 32-bit accesses, matching the PU's
//! native width.

use crate::isa::SCRATCHPAD_BYTES;

/// Error from a scratchpad access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpadError {
    /// Address beyond the scratchpad.
    OutOfBounds {
        /// Offending byte address.
        addr: u32,
    },
    /// Address not 4-byte aligned.
    Unaligned {
        /// Offending byte address.
        addr: u32,
    },
}

impl std::fmt::Display for SpadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpadError::OutOfBounds { addr } => {
                write!(f, "scratchpad address {addr:#x} out of bounds")
            }
            SpadError::Unaligned { addr } => write!(f, "scratchpad address {addr:#x} unaligned"),
        }
    }
}

impl std::error::Error for SpadError {}

/// The scratchpad array with access accounting.
#[derive(Debug, Clone)]
pub struct Scratchpad {
    words: Vec<i32>,
    reads: u64,
    writes: u64,
}

impl Scratchpad {
    /// A zeroed 32 KB scratchpad.
    pub fn new() -> Self {
        Self {
            words: vec![0; SCRATCHPAD_BYTES / 4],
            reads: 0,
            writes: 0,
        }
    }

    /// Capacity in bytes.
    pub fn bytes(&self) -> usize {
        self.words.len() * 4
    }

    fn index(&self, addr: u32) -> Result<usize, SpadError> {
        if !addr.is_multiple_of(4) {
            return Err(SpadError::Unaligned { addr });
        }
        let i = (addr / 4) as usize;
        if i >= self.words.len() {
            return Err(SpadError::OutOfBounds { addr });
        }
        Ok(i)
    }

    /// Reads the word at byte address `addr`.
    pub fn load(&mut self, addr: u32) -> Result<i32, SpadError> {
        let i = self.index(addr)?;
        self.reads += 1;
        Ok(self.words[i])
    }

    /// Writes the word at byte address `addr`.
    pub fn store(&mut self, addr: u32, value: i32) -> Result<(), SpadError> {
        let i = self.index(addr)?;
        self.writes += 1;
        self.words[i] = value;
        Ok(())
    }

    /// Bulk host-side write (driver filling the query region / index;
    /// not charged to kernel activity counters).
    pub fn write_block(&mut self, addr: u32, data: &[i32]) -> Result<(), SpadError> {
        let start = self.index(addr)?;
        if start + data.len() > self.words.len() {
            return Err(SpadError::OutOfBounds {
                addr: addr + 4 * data.len() as u32,
            });
        }
        self.words[start..start + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Bulk host-side read (driver reading back results).
    pub fn read_block(&self, addr: u32, len: usize) -> Result<&[i32], SpadError> {
        if !addr.is_multiple_of(4) {
            return Err(SpadError::Unaligned { addr });
        }
        let start = (addr / 4) as usize;
        if start + len > self.words.len() {
            return Err(SpadError::OutOfBounds {
                addr: addr + 4 * len as u32,
            });
        }
        Ok(&self.words[start..start + len])
    }

    /// Kernel read count (energy activity factor).
    pub fn read_count(&self) -> u64 {
        self.reads
    }

    /// Kernel write count.
    pub fn write_count(&self) -> u64 {
        self.writes
    }

    /// Zeroes the activity counters without touching the contents
    /// (between batched queries the driver overwrites the regions the
    /// next kernel reads, so the words themselves need no clearing).
    pub fn reset_activity(&mut self) {
        self.reads = 0;
        self.writes = 0;
    }
}

impl Default for Scratchpad {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_load_round_trip() {
        let mut s = Scratchpad::new();
        s.store(0, 42).expect("store");
        s.store(32 * 1024 - 4, -7).expect("store at top");
        assert_eq!(s.load(0).expect("load"), 42);
        assert_eq!(s.load(32 * 1024 - 4).expect("load"), -7);
    }

    #[test]
    fn capacity_is_32_kib() {
        assert_eq!(Scratchpad::new().bytes(), 32 * 1024);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut s = Scratchpad::new();
        assert_eq!(
            s.load(32 * 1024),
            Err(SpadError::OutOfBounds { addr: 32 * 1024 })
        );
    }

    #[test]
    fn unaligned_rejected() {
        let mut s = Scratchpad::new();
        assert_eq!(s.load(2), Err(SpadError::Unaligned { addr: 2 }));
    }

    #[test]
    fn block_ops_round_trip_without_charging_activity() {
        let mut s = Scratchpad::new();
        s.write_block(16, &[1, 2, 3]).expect("write");
        assert_eq!(s.read_block(16, 3).expect("read"), &[1, 2, 3]);
        assert_eq!(s.read_count(), 0);
        assert_eq!(s.write_count(), 0);
    }

    #[test]
    fn block_overflow_rejected() {
        let mut s = Scratchpad::new();
        let too_long = vec![0i32; 32 * 1024 / 4 + 1];
        assert!(s.write_block(0, &too_long).is_err());
        assert!(s.read_block(32 * 1024 - 4, 2).is_err());
    }

    #[test]
    fn activity_counters_track_kernel_ops() {
        let mut s = Scratchpad::new();
        s.store(0, 1).expect("store");
        let _ = s.load(0);
        let _ = s.load(0);
        assert_eq!(s.write_count(), 1);
        assert_eq!(s.read_count(), 2);
    }
}
