//! The PU's DRAM-side memory interface.
//!
//! Each processing unit streams its vault's shard of the dataset through
//! a stream buffer. `MEM_FETCH` (Table II) opens a prefetch window —
//! "linear scans through buckets of vectors exhibit predictable contiguous
//! memory access patterns" — and loads falling inside an open window hit
//! the buffer at near-register latency; loads outside any window pay the
//! full DRAM round trip. Byte traffic is counted so the device model can
//! apply the vault-bandwidth roofline.

use std::sync::Arc;

use crate::isa::DRAM_BASE;

/// Error from a DRAM access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DramError {
    /// Address below `DRAM_BASE` or beyond the shard.
    OutOfBounds {
        /// Offending byte address.
        addr: u32,
    },
    /// Address not 4-byte aligned.
    Unaligned {
        /// Offending byte address.
        addr: u32,
    },
}

impl std::fmt::Display for DramError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DramError::OutOfBounds { addr } => write!(f, "DRAM address {addr:#x} out of bounds"),
            DramError::Unaligned { addr } => write!(f, "DRAM address {addr:#x} unaligned"),
        }
    }
}

impl std::error::Error for DramError {}

/// Traffic/locality counters for one kernel run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Bytes read from DRAM.
    pub bytes_read: u64,
    /// Loads that hit an open prefetch window.
    pub hits: u64,
    /// Loads with no prefetch coverage.
    pub misses: u64,
    /// `MEM_FETCH` instructions executed.
    pub prefetches: u64,
}

/// Read-only shard of the dataset plus the stream-buffer state.
#[derive(Debug, Clone)]
pub struct DramInterface {
    /// Shard contents, word-addressed from `DRAM_BASE`. Shared so many PUs
    /// can view one vault image without copying.
    words: Arc<Vec<i32>>,
    /// Open prefetch windows as half-open byte ranges (absolute addresses),
    /// merged and sorted.
    windows: Vec<(u32, u32)>,
    stats: DramStats,
}

impl DramInterface {
    /// Wraps a shard (word array starting at `DRAM_BASE`).
    pub fn new(words: Arc<Vec<i32>>) -> Self {
        Self {
            words,
            windows: Vec::new(),
            stats: DramStats::default(),
        }
    }

    /// Shard length in bytes.
    pub fn bytes(&self) -> u64 {
        self.words.len() as u64 * 4
    }

    fn index(&self, addr: u32) -> Result<usize, DramError> {
        if !addr.is_multiple_of(4) {
            return Err(DramError::Unaligned { addr });
        }
        if addr < DRAM_BASE {
            return Err(DramError::OutOfBounds { addr });
        }
        let i = ((addr - DRAM_BASE) / 4) as usize;
        if i >= self.words.len() {
            return Err(DramError::OutOfBounds { addr });
        }
        Ok(i)
    }

    /// Opens a prefetch window of `len` bytes at `addr` (`MEM_FETCH`).
    pub fn prefetch(&mut self, addr: u32, len: u32) {
        self.stats.prefetches += 1;
        if len == 0 {
            return;
        }
        let end = addr.saturating_add(len);
        self.windows.push((addr, end));
        // Keep windows merged so hit tests stay cheap and bounded; a real
        // stream buffer holds a handful of windows.
        self.windows.sort_unstable();
        let mut merged: Vec<(u32, u32)> = Vec::with_capacity(self.windows.len());
        for &(s, e) in &self.windows {
            match merged.last_mut() {
                Some((_, le)) if s <= *le => *le = (*le).max(e),
                _ => merged.push((s, e)),
            }
        }
        // Bound the buffer: keep the most recent 8 windows.
        if merged.len() > 8 {
            let cut = merged.len() - 8;
            merged.drain(..cut);
        }
        self.windows = merged;
    }

    fn covered(&self, addr: u32, len: u32) -> bool {
        let end = addr + len;
        self.windows.iter().any(|&(s, e)| s <= addr && end <= e)
    }

    /// Reads one word; returns `(value, hit)` where `hit` reports prefetch
    /// coverage.
    pub fn load(&mut self, addr: u32) -> Result<(i32, bool), DramError> {
        let i = self.index(addr)?;
        let hit = self.covered(addr, 4);
        self.stats.bytes_read += 4;
        if hit {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        Ok((self.words[i], hit))
    }

    /// Reads `n` consecutive words (a vector load); returns the values and
    /// whether the whole transfer was covered.
    pub fn load_block(&mut self, addr: u32, n: usize, out: &mut [i32]) -> Result<bool, DramError> {
        debug_assert_eq!(out.len(), n);
        let i = self.index(addr)?;
        if i + n > self.words.len() {
            return Err(DramError::OutOfBounds {
                addr: addr + 4 * n as u32,
            });
        }
        let hit = self.covered(addr, 4 * n as u32);
        self.stats.bytes_read += 4 * n as u64;
        if hit {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        out.copy_from_slice(&self.words[i..i + n]);
        Ok(hit)
    }

    /// Traffic counters.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    /// Closes every prefetch window and zeroes the traffic counters,
    /// returning the interface to its just-constructed state over the
    /// same shard (used when a processing unit is recycled between
    /// queries of a batch).
    pub fn reset(&mut self) {
        self.windows.clear();
        self.stats = DramStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iface(n: usize) -> DramInterface {
        DramInterface::new(Arc::new((0..n as i32).collect()))
    }

    #[test]
    fn load_reads_shard_words() {
        let mut d = iface(16);
        assert_eq!(d.load(DRAM_BASE).expect("load").0, 0);
        assert_eq!(d.load(DRAM_BASE + 4 * 7).expect("load").0, 7);
    }

    #[test]
    fn unprefetched_load_misses() {
        let mut d = iface(4);
        let (_, hit) = d.load(DRAM_BASE).expect("load");
        assert!(!hit);
        assert_eq!(d.stats().misses, 1);
    }

    #[test]
    fn prefetched_load_hits() {
        let mut d = iface(64);
        d.prefetch(DRAM_BASE, 256);
        let (_, hit) = d.load(DRAM_BASE + 100).expect("load");
        assert!(hit);
        assert_eq!(d.stats().hits, 1);
        assert_eq!(d.stats().prefetches, 1);
    }

    #[test]
    fn partial_coverage_is_a_miss() {
        let mut d = iface(64);
        d.prefetch(DRAM_BASE, 8);
        let mut out = [0i32; 4];
        let hit = d.load_block(DRAM_BASE, 4, &mut out).expect("load");
        assert!(!hit, "16-byte block only half covered");
    }

    #[test]
    fn windows_merge() {
        let mut d = iface(1024);
        d.prefetch(DRAM_BASE, 64);
        d.prefetch(DRAM_BASE + 64, 64);
        let (_, hit) = d.load(DRAM_BASE + 96).expect("load");
        assert!(hit);
    }

    #[test]
    fn window_buffer_is_bounded() {
        let mut d = iface(100_000);
        for i in 0..20 {
            d.prefetch(DRAM_BASE + i * 10_000, 4); // disjoint windows
        }
        // Earliest windows have been evicted.
        let (_, hit) = d.load(DRAM_BASE).expect("load");
        assert!(!hit);
        // Latest window still open.
        let (_, hit) = d.load(DRAM_BASE + 19 * 10_000).expect("load");
        assert!(hit);
    }

    #[test]
    fn block_load_returns_values() {
        let mut d = iface(16);
        let mut out = [0i32; 4];
        d.load_block(DRAM_BASE + 8, 4, &mut out).expect("load");
        assert_eq!(out, [2, 3, 4, 5]);
        assert_eq!(d.stats().bytes_read, 16);
    }

    #[test]
    fn bounds_checks() {
        let mut d = iface(4);
        assert!(d.load(DRAM_BASE - 4).is_err());
        assert!(d.load(DRAM_BASE + 16).is_err());
        assert!(d.load(DRAM_BASE + 2).is_err());
        let mut out = [0i32; 2];
        assert!(d.load_block(DRAM_BASE + 12, 2, &mut out).is_err());
    }

    #[test]
    fn zero_length_prefetch_is_noop() {
        let mut d = iface(4);
        d.prefetch(DRAM_BASE, 0);
        let (_, hit) = d.load(DRAM_BASE).expect("load");
        assert!(!hit);
    }
}
