//! The hardware priority-queue unit.
//!
//! Section III-C: "we introduce a priority queue unit, implemented using
//! the shift register architecture proposed in [Moon/Shin/Rexford], and
//! use it to perform the sort and global top-k calculations. For our SSAM
//! design, priority queues are 16 entries deep. … Because of its modular
//! design, the priority queues can be chained to support larger k values."
//!
//! The shift-register queue keeps entries sorted at all times: an insert
//! compares against every stage in parallel and shifts the tail in a
//! single cycle; the worst entry falls off the end when full. Values are
//! the PU's native signed 32-bit (Q16.16 distances or integer Hamming
//! counts) and ordering is ascending (smallest distance = best).

use crate::isa::PQUEUE_DEPTH;

/// One `(id, value)` entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PqEntry {
    /// Candidate identifier.
    pub id: i32,
    /// Candidate distance/score (ascending order).
    pub value: i32,
}

/// A chainable shift-register priority queue.
#[derive(Debug, Clone)]
pub struct HardwarePriorityQueue {
    capacity: usize,
    /// Sorted ascending by (value, id).
    entries: Vec<PqEntry>,
    inserts: u64,
}

impl HardwarePriorityQueue {
    /// A single 16-entry queue.
    pub fn new() -> Self {
        Self::chained(1)
    }

    /// `chain` queues chained back-to-back (capacity `16 · chain`).
    ///
    /// # Panics
    /// Panics if `chain == 0`.
    pub fn chained(chain: usize) -> Self {
        assert!(chain > 0, "need at least one queue in the chain");
        Self {
            capacity: PQUEUE_DEPTH * chain,
            entries: Vec::new(),
            inserts: 0,
        }
    }

    /// Queue capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total inserts performed since the last reset (activity factor for
    /// the energy model).
    pub fn insert_count(&self) -> u64 {
        self.inserts
    }

    /// Inserts an entry, keeping the queue sorted; when full, the worst
    /// entry is discarded (which may be the new entry itself).
    pub fn insert(&mut self, id: i32, value: i32) {
        self.inserts += 1;
        let e = PqEntry { id, value };
        let pos = self
            .entries
            .partition_point(|x| (x.value, x.id) <= (e.value, e.id));
        if pos >= self.capacity {
            return; // worse than everything retained
        }
        self.entries.insert(pos, e);
        if self.entries.len() > self.capacity {
            self.entries.pop();
        }
    }

    /// Reads the entry at `position` (0 = best), if occupied.
    pub fn load(&self, position: usize) -> Option<PqEntry> {
        self.entries.get(position).copied()
    }

    /// Clears the queue (`PQUEUE_RESET`). Activity counters survive so the
    /// energy model sees whole-kernel totals.
    pub fn reset(&mut self) {
        self.entries.clear();
    }

    /// Borrow the sorted contents (best first).
    pub fn entries(&self) -> &[PqEntry] {
        &self.entries
    }
}

impl Default for HardwarePriorityQueue {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_entries_sorted() {
        let mut q = HardwarePriorityQueue::new();
        for (id, v) in [(1, 50), (2, 10), (3, 30), (4, 20)] {
            q.insert(id, v);
        }
        let vals: Vec<i32> = q.entries().iter().map(|e| e.value).collect();
        assert_eq!(vals, vec![10, 20, 30, 50]);
    }

    #[test]
    fn drops_worst_when_full() {
        let mut q = HardwarePriorityQueue::new();
        for i in 0..20 {
            q.insert(i, i);
        }
        assert_eq!(q.len(), 16);
        assert_eq!(q.load(15).expect("full").value, 15);
        // A better late arrival displaces the current worst.
        q.insert(99, -1);
        assert_eq!(q.load(0).expect("head").id, 99);
        assert_eq!(q.load(15).expect("tail").value, 14);
    }

    #[test]
    fn worse_than_tail_is_discarded_when_full() {
        let mut q = HardwarePriorityQueue::new();
        for i in 0..16 {
            q.insert(i, i);
        }
        q.insert(100, 100);
        assert_eq!(q.len(), 16);
        assert!(q.entries().iter().all(|e| e.id != 100));
    }

    #[test]
    fn chaining_grows_capacity() {
        let q = HardwarePriorityQueue::chained(3);
        assert_eq!(q.capacity(), 48);
    }

    #[test]
    fn ties_break_by_id() {
        let mut q = HardwarePriorityQueue::new();
        q.insert(7, 5);
        q.insert(3, 5);
        assert_eq!(q.load(0).expect("entry").id, 3);
        assert_eq!(q.load(1).expect("entry").id, 7);
    }

    #[test]
    fn reset_clears_but_keeps_activity() {
        let mut q = HardwarePriorityQueue::new();
        q.insert(1, 1);
        q.insert(2, 2);
        q.reset();
        assert!(q.is_empty());
        assert_eq!(q.insert_count(), 2);
        assert!(q.load(0).is_none());
    }

    #[test]
    fn negative_values_sort_correctly() {
        let mut q = HardwarePriorityQueue::new();
        q.insert(1, 5);
        q.insert(2, -5);
        assert_eq!(q.load(0).expect("entry").id, 2);
    }

    #[test]
    fn matches_sorted_truncation_reference() {
        // Property sanity on a fixed pseudo-random sequence.
        let mut q = HardwarePriorityQueue::new();
        let mut all: Vec<(i32, i32)> = Vec::new();
        let mut x = 123456789u64;
        for id in 0..200 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = (x >> 33) as i32 % 1000;
            q.insert(id, v);
            all.push((v, id));
        }
        all.sort_unstable();
        all.truncate(16);
        let expect: Vec<i32> = all.iter().map(|&(_, id)| id).collect();
        let got: Vec<i32> = q.entries().iter().map(|e| e.id).collect();
        assert_eq!(got, expect);
    }
}
