//! Offline stand-in for `criterion`.
//!
//! The build environment has no access to crates.io, so this crate
//! implements the bench-harness API the workspace's `benches/` use —
//! `Criterion`, groups, `BenchmarkId`, `Throughput`, `black_box`, and
//! the `criterion_group!`/`criterion_main!` macros — with a lightweight
//! measurement loop instead of criterion's statistical machinery: each
//! benchmark is warmed up briefly, then timed over three fixed batches
//! and the best batch reported as ns/iter on stdout. Numbers are
//! indicative, not
//! rigorous; the point is that `cargo bench` runs and regressions of
//! 10x are visible.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier — defers to `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifies one parameterized benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Work-per-iteration declaration; used to report a rate next to the
/// per-iteration time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Passed to each benchmark closure; `iter` times the routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this bencher's iteration budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Picks an iteration count that makes one measurement batch take
/// roughly `target`, based on a quick calibration run of `routine`.
fn run_one<F: FnMut(&mut Bencher)>(label: &str, throughput: Option<Throughput>, mut routine: F) {
    // Calibration: one iteration, to scale the batch.
    let mut cal = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    routine(&mut cal);
    let per_iter = cal.elapsed.max(Duration::from_nanos(1));
    let target = Duration::from_millis(20);
    let iters = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 100_000) as u64;

    // Best of three measurement batches: the minimum is robust to
    // scheduler/allocator noise on loaded single-core hosts, where a
    // single batch can swing by ±10%.
    let mut best = Duration::MAX;
    for _ in 0..3 {
        let mut bench = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        routine(&mut bench);
        best = best.min(bench.elapsed);
    }
    let ns_per_iter = best.as_nanos() as f64 / iters as f64;

    let rate = throughput.map(|t| match t {
        Throughput::Bytes(b) => format!(" ({:.1} MiB/s)", b as f64 / ns_per_iter * 953.674_316),
        Throughput::Elements(e) => {
            format!(" ({:.1} Melem/s)", e as f64 / ns_per_iter * 1_000.0)
        }
    });
    println!(
        "{label:<40} {ns_per_iter:>12.1} ns/iter{}",
        rate.unwrap_or_default()
    );
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declares work-per-iteration for subsequent benches in the group.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Ignored: the lightweight loop sizes batches by time, not count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.throughput, f);
        self
    }

    /// Runs a parameterized benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), self.throughput, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (no-op here; kept for API parity).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id, None, f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            throughput: None,
            _criterion: self,
        }
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_times_the_routine() {
        let mut c = Criterion::default();
        let mut ran = 0u64;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(4));
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("f", 4), &4usize, |b, &n| {
            b.iter(|| (0..n).sum::<usize>())
        });
        group.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(
            BenchmarkId::new("euclidean", 128).to_string(),
            "euclidean/128"
        );
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
    }
}
