//! Offline stand-in for `proptest`.
//!
//! The build environment has no access to crates.io, so this crate
//! implements the property-testing surface the workspace uses:
//! [`strategy::Strategy`] with `prop_map`, [`strategy::Just`], ranges and
//! tuples as strategies, `prop_oneof!`, `prop::collection::vec`,
//! `any::<T>()`, `ProptestConfig::with_cases`, and the `proptest!` /
//! `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Differences from the real crate, deliberate for size:
//! - **Generation only, no shrinking.** A failing case reports its case
//!   number and the (fixed) per-test seed instead of a minimal input.
//! - **Deterministic.** Each `proptest!` test derives its RNG seed from
//!   the test name (FNV-1a), so failures reproduce exactly across runs
//!   and machines.
//! - `prop_assert*` panic (like `assert*`) instead of returning `Err`.

/// Strategy trait and combinators.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::{RngExt, SampleRange};

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Object-safe: only [`Strategy::generate`] is dispatchable, so
    /// heterogeneous strategies can be unified via [`Strategy::boxed`].
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `map`.
        fn prop_map<U, F>(self, map: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map {
                strategy: self,
                map,
            }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        strategy: S,
        map: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut StdRng) -> U {
            (self.map)(self.strategy.generate(rng))
        }
    }

    /// Uniform choice among type-erased strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics on an empty arm list.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            let idx = rng.random_range(0..self.arms.len());
            self.arms[idx].generate(rng)
        }
    }

    /// Ranges are strategies: uniform over the range.
    impl<T: Clone> Strategy for std::ops::Range<T>
    where
        std::ops::Range<T>: SampleRange<T>,
    {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            rng.random_range(self.clone())
        }
    }

    impl<T: Clone> Strategy for std::ops::RangeInclusive<T>
    where
        std::ops::RangeInclusive<T>: SampleRange<T>,
    {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            rng.random_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

/// `any::<T>()` — uniform over the whole domain of `T`.
pub mod arbitrary {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::{RngExt, Standard};
    use std::marker::PhantomData;

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Standard> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            rng.random()
        }
    }

    /// Uniform values over `T`'s whole domain (`[0,1)` for floats).
    pub fn any<T: Standard>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::RngExt;

    /// Length specifications accepted by [`vec`]: a fixed `usize` or a
    /// half-open / inclusive range.
    pub trait IntoSizeRange {
        /// Returns `(lo, hi)` as a half-open interval of lengths.
        fn bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self + 1)
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn bounds(self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn bounds(self) -> (usize, usize) {
            (*self.start(), *self.end() + 1)
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.hi <= self.lo + 1 {
                self.lo
            } else {
                rng.random_range(self.lo..self.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vectors of `element`-generated values with length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (lo, hi) = size.bounds();
        assert!(lo < hi, "empty length range in prop::collection::vec");
        VecStrategy { element, lo, hi }
    }
}

/// Test-runner configuration.
pub mod test_runner {
    /// Per-test configuration; only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }
}

/// Everything a property test needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

#[doc(hidden)]
pub mod __rt {
    pub use rand;

    /// FNV-1a over the test name: the deterministic per-test RNG seed.
    pub fn seed_for(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

/// Declares property tests. Supports the standard form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))] // optional
///     #[test]
///     fn my_property(x in 0u32..10, v in prop::collection::vec(any::<i32>(), 3)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    (@munch ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let __seed = $crate::__rt::seed_for(stringify!($name));
            let mut __rng = <$crate::__rt::rand::rngs::StdRng
                as $crate::__rt::rand::SeedableRng>::seed_from_u64(__seed);
            for __case in 0..__config.cases {
                let __result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }));
                if let Err(__panic) = __result {
                    eprintln!(
                        "proptest `{}`: failing case {}/{} (seed {:#x}; cases replay \
                         deterministically in order)",
                        stringify!($name),
                        __case + 1,
                        __config.cases,
                        __seed,
                    );
                    ::std::panic::resume_unwind(__panic);
                }
            }
        }
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    (@munch ($cfg:expr)) => {};
    ($($rest:tt)*) => {
        $crate::proptest!(@munch ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Like `assert!` (panics; no shrinking to report).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Like `assert_eq!` (panics; no shrinking to report).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_even() -> impl Strategy<Value = u32> {
        (0u32..100).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_maps_compose(x in arb_even(), y in 1i32..10) {
            prop_assert!(x % 2 == 0);
            prop_assert!((1..10).contains(&y));
        }

        #[test]
        fn tuples_and_collections(
            pair in (0u8..4, any::<u64>()),
            v in prop::collection::vec(0i32..7, 0..20),
            fixed in prop::collection::vec(any::<u32>(), 3),
        ) {
            prop_assert!(pair.0 < 4);
            prop_assert!(v.len() < 20);
            prop_assert_eq!(fixed.len(), 3);
            prop_assert!(v.iter().all(|&x| (0..7).contains(&x)));
        }

        #[test]
        fn oneof_hits_every_arm(picks in prop::collection::vec(
            prop_oneof![Just(0u8), Just(1u8), Just(2u8)], 200))
        {
            for k in 0..3u8 {
                prop_assert!(picks.contains(&k), "arm {} never chosen", k);
            }
        }
    }

    proptest! {
        #[test]
        fn default_config_form_works(x in 0u64..10) {
            prop_assert!(x < 10);
        }
    }

    #[test]
    fn seeds_differ_per_test_name() {
        assert_ne!(crate::__rt::seed_for("a"), crate::__rt::seed_for("b"));
    }
}
