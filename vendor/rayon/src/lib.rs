//! Offline stand-in for `rayon`.
//!
//! The build environment has no access to crates.io, so this crate maps
//! the small `par_iter` surface the workspace uses onto *sequential* std
//! iterators. Call sites keep rayon's names and shapes (so swapping the
//! real crate back in is a one-line Cargo change), but execution is
//! single-threaded: every downstream combinator (`map`, `collect`,
//! `sum`, …) is the std implementation.
//!
//! Functional behavior is identical — the workspace only uses data
//! parallelism for independent per-shard simulation, which is
//! order-insensitive.

/// Drop-in for `rayon::prelude`.
pub mod prelude {
    /// `par_iter()` over shared slices (and anything derefing to one).
    pub trait IntoParallelRefIterator<T> {
        /// Sequential stand-in for rayon's parallel shared iterator.
        fn par_iter(&self) -> std::slice::Iter<'_, T>;
    }

    /// `par_iter_mut()` over mutable slices.
    pub trait IntoParallelRefMutIterator<T> {
        /// Sequential stand-in for rayon's parallel mutable iterator.
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
    }

    impl<T> IntoParallelRefIterator<T> for [T] {
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }
    }

    impl<T> IntoParallelRefMutIterator<T> for [T] {
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.iter_mut()
        }
    }

    /// `into_par_iter()` for owned collections and ranges.
    pub trait IntoParallelIterator {
        /// The sequential iterator standing in for the parallel one.
        type Iter: Iterator;
        /// Sequential stand-in for rayon's owning parallel iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Iter = I::IntoIter;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_behaves_like_iter() {
        let v = [1, 2, 3];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
    }

    #[test]
    fn par_iter_mut_mutates_in_place() {
        let mut v = vec![1, 2, 3];
        v.par_iter_mut().for_each(|x| *x += 10);
        assert_eq!(v, vec![11, 12, 13]);
    }

    #[test]
    fn collect_into_result_short_circuits() {
        let v = [1, 2, 3];
        let r: Result<Vec<i32>, &str> = v
            .par_iter()
            .map(|&x| if x == 2 { Err("two") } else { Ok(x) })
            .collect();
        assert_eq!(r, Err("two"));
    }
}
