//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the small `Bytes`/`BytesMut`/`Buf`/`BufMut` surface the
//! workspace uses, backed by a plain `Vec<u8>` instead of refcounted
//! shared buffers. Semantics match the real crate for this surface:
//! multi-byte put/get are big-endian, `Buf` reads consume from the
//! front, and `len()`/comparisons always refer to the *remaining*
//! bytes.

use std::ops::Deref;

/// An immutable byte buffer with a read cursor.
///
/// Unlike the real crate this owns its storage (no refcounted sharing),
/// so `clone()` copies — fine at the packet sizes modeled here.
#[derive(Debug, Clone, Default)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies `slice` into a new buffer.
    pub fn copy_from_slice(slice: &[u8]) -> Self {
        Bytes {
            data: slice.to_vec(),
            pos: 0,
        }
    }

    /// Remaining (unconsumed) length.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether no unconsumed bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies the remaining bytes into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(slice: &[u8]) -> Self {
        Bytes::copy_from_slice(slice)
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

/// Compares *remaining* bytes, ignoring how each buffer got there.
impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

/// A growable byte buffer for building frames.
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with room for `cap` bytes.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Reading side: consume values from the front of a buffer.
///
/// Multi-byte reads are big-endian, matching the real crate's default
/// `get_*` methods. Reads past the end panic, as upstream does.
pub trait Buf {
    /// Remaining unconsumed bytes.
    fn remaining(&self) -> usize;
    /// Borrows the remaining bytes.
    fn chunk(&self) -> &[u8];
    /// Consumes `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Consumes one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Consumes four bytes as a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let v = u32::from_be_bytes(self.chunk()[..4].try_into().expect("4 bytes"));
        self.advance(4);
        v
    }

    /// Consumes eight bytes as a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let v = u64::from_be_bytes(self.chunk()[..8].try_into().expect("8 bytes"));
        self.advance(8);
        v
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of Bytes");
        self.pos += cnt;
    }
}

/// Writing side: append values to the end of a buffer.
///
/// Multi-byte writes are big-endian, matching the real crate's default
/// `put_*` methods.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, slice: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, slice: &[u8]) {
        self.data.extend_from_slice(slice);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, slice: &[u8]) {
        self.extend_from_slice(slice);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_round_trip() {
        let mut buf = BytesMut::with_capacity(13);
        buf.put_u8(7);
        buf.put_u64(0xDEAD_BEEF_0123_4567);
        buf.put_u32(42);
        let mut b = buf.freeze();
        assert_eq!(b.len(), 13);
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u64(), 0xDEAD_BEEF_0123_4567);
        assert_eq!(b.get_u32(), 42);
        assert!(b.is_empty());
    }

    #[test]
    fn equality_ignores_consumed_prefix() {
        let mut a = Bytes::from(vec![1, 2, 3, 4]);
        a.get_u8();
        let b = Bytes::from(vec![2, 3, 4]);
        assert_eq!(a, b);
        assert_eq!(a.to_vec(), vec![2, 3, 4]);
    }

    #[test]
    fn deref_sees_remaining_bytes() {
        let mut b = Bytes::copy_from_slice(&[9, 8, 7]);
        b.advance(1);
        assert_eq!(&b[..], &[8, 7]);
        assert_eq!(b.as_ref(), &[8, 7]);
    }

    #[test]
    #[should_panic(expected = "advance past end")]
    fn advance_past_end_panics() {
        let mut b = Bytes::from(vec![1]);
        b.advance(2);
    }
}
