//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the minimal surface it actually uses: a seedable, deterministic
//! generator ([`rngs::StdRng`], xoshiro256++ seeded via splitmix64), the
//! [`SeedableRng`] constructor trait, and the [`RngExt`] extension trait
//! providing `random()` / `random_range()` in the rand 0.9+ naming.
//!
//! Determinism contract: `StdRng::seed_from_u64(s)` produces the same
//! stream on every platform and every run. Experiments and tests rely on
//! this for reproducible datasets.

/// Low-level generator interface: a source of uniform random bits.
pub trait RngCore {
    /// Next 32 uniform bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
}

/// Constructor trait for seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Not cryptographic — a fast, well-distributed PRNG for synthetic
    /// datasets and property tests.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
    }
}

/// Types producible uniformly over their whole domain by [`RngExt::random`].
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for i32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}
impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}
impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}
impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}
impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl<T: Standard, const N: usize> Standard for [T; N] {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        std::array::from_fn(|_| T::sample(rng))
    }
}

/// Range types accepted by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                // Multiply-shift rejection-free mapping; bias is ≤ 2^-64
                // per draw, far below what tests or datasets can observe.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                ((self.start as $wide).wrapping_add(hi as $wide)) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as $wide).wrapping_sub(start as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let hi = ((rng.next_u64() as u128 * (span as u128 + 1)) >> 64) as u64;
                ((start as $wide).wrapping_add(hi as $wide)) as $t
            }
        }
    )*};
}
impl_int_range!(u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
                i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let u = <$t as Standard>::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let u = <$t as Standard>::sample(rng);
                start + u * (end - start)
            }
        }
    )*};
}
impl_float_range!(f32, f64);

/// Convenience methods over any [`RngCore`] (the rand 0.9+ `random*`
/// naming).
pub trait RngExt: RngCore {
    /// A uniform value over `T`'s whole domain (`[0,1)` for floats).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform value from `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// A biased coin flip.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.random::<u64>() == b.random::<u64>())
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.random_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&x));
            let n = rng.random_range(0usize..10);
            assert!(n < 10);
            let i = rng.random_range(-1000i32..1000);
            assert!((-1000..1000).contains(&i));
        }
    }

    #[test]
    fn unit_floats_cover_zero_one() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let x = rng.random::<f64>();
            assert!((0.0..1.0).contains(&x));
            lo = lo.min(x);
            hi = hi.max(x);
        }
        assert!(lo < 0.01 && hi > 0.99);
    }

    #[test]
    fn inclusive_range_hits_endpoints() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[rng.random_range(0usize..=2)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
